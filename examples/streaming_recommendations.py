#!/usr/bin/env python
"""Streaming recommendations: incremental ALS over live ratings.

The motivating MLDM scenario from the paper's introduction: a
recommender whose user-item rating graph changes continuously.  New
ratings and retracted ratings arrive in batches; GraphBolt's
generalized incremental programming model keeps the latent factors
consistent with exact BSP retraining after every batch -- the complex
pair-aggregation <sum c c^T, sum c w> is decomposed and refined
incrementally (paper section 3.3).

Run:  python examples/streaming_recommendations.py
"""

import time

import numpy as np

from repro import CollaborativeFiltering, GraphBoltEngine, MutationBatch
from repro.graph.generators import bipartite_graph
from repro.ligra.engine import LigraEngine

NUM_USERS = 400
NUM_ITEMS = 150
ITERATIONS = 10


def predict(values, user, item):
    return float(values[user] @ values[NUM_USERS + item])


def top_items(values, user, k=3):
    scores = values[NUM_USERS:] @ values[user]
    return np.argsort(scores)[::-1][:k]


def main():
    print("=== Streaming recommendations with incremental ALS ===\n")
    graph = bipartite_graph(NUM_USERS, NUM_ITEMS, edges_per_user=8, seed=3)
    print(f"{NUM_USERS} users x {NUM_ITEMS} items, "
          f"{graph.num_edges // 2} ratings")

    algorithm = CollaborativeFiltering(num_factors=6, regulariser=0.4,
                                       tolerance=1e-6)
    engine = GraphBoltEngine(algorithm, num_iterations=ITERATIONS)
    start = time.perf_counter()
    values = engine.run(graph)
    print(f"initial training: {time.perf_counter() - start:.2f}s")

    user = 7
    print(f"user {user} initial top items: "
          f"{top_items(values, user).tolist()}\n")

    rng = np.random.default_rng(11)
    for day in range(1, 4):
        # Each "day": some users rate new items, some retract ratings.
        new_ratings = []
        weights = []
        for _ in range(25):
            u = int(rng.integers(0, NUM_USERS))
            i = int(rng.integers(0, NUM_ITEMS))
            rating = float(rng.integers(1, 6))
            # Ratings are symmetric edges (user<->item), as in training.
            new_ratings.extend([(u, NUM_USERS + i), (NUM_USERS + i, u)])
            weights.extend([rating, rating])
        retracted = []
        src, dst, _ = engine.graph.all_edges()
        for index in rng.choice(src.size, size=10, replace=False):
            retracted.append((int(src[index]), int(dst[index])))
            retracted.append((int(dst[index]), int(src[index])))

        batch = MutationBatch.from_edges(additions=new_ratings,
                                         deletions=retracted,
                                         add_weights=weights)
        before = engine.metrics.snapshot()
        start = time.perf_counter()
        values = engine.apply_mutations(batch)
        elapsed = time.perf_counter() - start
        edges = engine.metrics.delta_since(before).edge_computations

        truth = LigraEngine(
            CollaborativeFiltering(num_factors=6, regulariser=0.4,
                                   tolerance=1e-6)
        ).run(engine.graph, ITERATIONS)
        drift = float(np.abs(values - truth).max())
        print(f"day {day}: {len(batch)} rating events -> retrain in "
              f"{elapsed:.2f}s ({edges} edge computations), "
              f"BSP-exact to {drift:.1e}")
        print(f"  user {user} top items now: "
              f"{top_items(values, user).tolist()}")

    print("\nOK: incremental retraining stayed exact across all days")


if __name__ == "__main__":
    main()
