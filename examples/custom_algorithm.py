#!/usr/bin/env python
"""Custom algorithm walkthrough: live exposure scoring.

The runnable companion to docs/tutorial.md: define a brand-new analysis
in ~30 lines (weighted-average "exposure" anchored at reviewed
accounts), verify its decomposition against exact execution, then run
it over a windowed transaction stream with incremental refinement.

Run:  python examples/custom_algorithm.py
"""

import numpy as np

from repro import (
    GraphBoltEngine,
    IncrementalAlgorithm,
    LigraEngine,
    SlidingWindowStream,
    SumAggregation,
    rmat,
)


class Exposure(IncrementalAlgorithm):
    """score(v) = sum_in score(u) * w / sum_in w, reviewed clamped."""

    name = "exposure"
    value_shape = ()

    def __init__(self, reviewed, tolerance=1e-9):
        super().__init__(SumAggregation(), tolerance)
        self.reviewed = dict(reviewed)

    def _clamp(self, vertices, scores):
        out = scores.copy()
        for i, v in enumerate(vertices.tolist()):
            if v in self.reviewed:
                out[i] = self.reviewed[v]
        return out

    def initial_values(self, graph):
        ids = np.arange(graph.num_vertices)
        return self._clamp(ids, np.full(graph.num_vertices, 0.5))

    def contributions(self, graph, src_values, src, dst, weight):
        return src_values * weight

    def apply(self, graph, aggregate_values, vertices,
              previous_values=None):
        denom = graph.in_weight_sums()[vertices]
        safe = denom > 1e-9
        scores = np.where(
            safe, aggregate_values / np.where(safe, denom, 1.0), 0.5
        )
        return self._clamp(vertices, scores)

    def apply_params_changed(self, mutation):
        # The normaliser reads v's in-weights: any in-edge change must
        # re-apply v even when the aggregated sum is untouched.
        return mutation.in_changed_vertices()


def main():
    print("=== Custom algorithm: live exposure scoring ===\n")
    network = rmat(scale=11, edge_factor=8, seed=7, weighted=True)
    reviewed = {3: 1.0, 17: 0.0, 101: 1.0}
    factory = lambda: Exposure(reviewed)

    engine = GraphBoltEngine(factory(), num_iterations=10)
    scores = engine.run(network)
    print(f"network: {network.num_vertices} accounts, "
          f"{network.num_edges} payment edges, "
          f"{len(reviewed)} reviewed anchors")
    print(f"initial mean exposure: {scores.mean():.4f}\n")

    window = SlidingWindowStream(window=5)
    rng = np.random.default_rng(3)
    print(f"{'tick':>5} {'events':>7} {'expired':>8} "
          f"{'mean exposure':>14} {'exact?':>7}")
    for tick in range(1, 7):
        events = [
            (int(rng.integers(0, 2048)), int(rng.integers(0, 2048)))
            for _ in range(150)
        ]
        events = [(u, v) for u, v in events if u != v]
        amounts = (rng.random(len(events)) * 4 + 1).tolist()
        batch = window.advance(events, weights=amounts)
        scores = engine.apply_mutations(batch)
        truth = LigraEngine(factory()).run(engine.graph, 10)
        exact = bool(np.allclose(scores, truth, atol=1e-8))
        print(f"{tick:>5} {batch.num_additions:>7} "
              f"{batch.num_deletions:>8} {scores.mean():>14.4f} "
              f"{str(exact):>7}")
        if not exact:
            raise SystemExit("decomposition bug!")

    anchored = sorted(reviewed)
    print(f"\nreviewed anchors held: "
          f"{[round(float(scores[v]), 2) for v in anchored]}")
    print("every windowed tick matched a from-scratch rerun exactly")


if __name__ == "__main__":
    main()
