#!/usr/bin/env python
"""Network monitoring: shortest paths and triangles on a live topology.

A network operator watches a router topology where links flap (go down
and come back) continuously.  Two live analyses run side by side:

- **reachability/latency** -- shortest paths from the operations centre,
  maintained by a KickStarter-style engine (the right tool: SSSP is
  monotonic, so O(V) dependency trees beat full BSP tracking, paper
  Figure 9) and cross-checked against GraphBolt's min-aggregation;
- **redundancy** -- directed triangle counts (a proxy for alternate
  2-hop routes), maintained incrementally.

Run:  python examples/network_monitoring.py
"""

import time

import numpy as np

from repro import MutationBatch, SSSP
from repro.algorithms import IncrementalTriangleCounting
from repro.core.engine import GraphBoltEngine
from repro.graph.generators import watts_strogatz
from repro.kickstarter.engine import KickStarterEngine

OPS_CENTRE = 0


def main():
    print("=== Live network monitoring ===\n")
    topology = watts_strogatz(2000, neighbors_each_side=3,
                              rewire_probability=0.1, seed=9,
                              weighted=True)
    print(f"topology: {topology.num_vertices} routers, "
          f"{topology.num_edges} links")

    kick = KickStarterEngine(topology, source=OPS_CENTRE)
    bolt = GraphBoltEngine(SSSP(source=OPS_CENTRE),
                           until_convergence=True)
    bolt.run(topology)
    triangles = IncrementalTriangleCounting(topology)

    reachable = int(np.isfinite(kick.values).sum())
    print(f"initially reachable: {reachable} routers, "
          f"median latency {np.median(kick.values[np.isfinite(kick.values)]):.2f}, "
          f"{triangles.total} redundancy triangles\n")

    rng = np.random.default_rng(17)
    for minute in range(1, 6):
        # Link flaps: a few links fail, a few new links come up.
        src, dst, _ = kick.graph.all_edges()
        down = rng.choice(src.size, size=15, replace=False)
        failures = [(int(src[i]), int(dst[i])) for i in down]
        recoveries = [
            (int(rng.integers(0, 2000)), int(rng.integers(0, 2000)))
            for _ in range(15)
        ]
        batch = MutationBatch.from_edges(
            additions=recoveries, deletions=failures,
            add_weights=(rng.random(len(recoveries)) + 0.5).tolist(),
        )

        start = time.perf_counter()
        kick_values = kick.apply_mutations(batch)
        kick_seconds = time.perf_counter() - start

        start = time.perf_counter()
        bolt_values = bolt.apply_mutations(batch)
        bolt_seconds = time.perf_counter() - start

        triangles.apply_mutations(batch)

        both_inf = np.isinf(kick_values) & np.isinf(bolt_values)
        agreement = np.allclose(kick_values[~both_inf],
                                bolt_values[~both_inf])
        reachable = int(np.isfinite(kick_values).sum())
        finite = kick_values[np.isfinite(kick_values)]
        print(f"minute {minute}: {len(batch)} link events | "
              f"reachable {reachable:4d} | "
              f"median latency {np.median(finite):5.2f} | "
              f"triangles {triangles.total:5d} | "
              f"kickstarter {kick_seconds * 1000:5.1f}ms vs "
              f"graphbolt {bolt_seconds * 1000:6.1f}ms | "
              f"engines agree: {agreement}")
        if not agreement:
            raise SystemExit("engines diverged!")

    print("\nOK: both engines agreed after every link flap; "
          "KickStarter's dependency trees made updates cheapest")


if __name__ == "__main__":
    main()
