#!/usr/bin/env python
"""Trust & safety: streaming label propagation with BSP guarantees.

A moderation team scores accounts by propagating labels from a small
set of reviewed accounts (seeds) across the follow graph.  This is the
paper's flagship example of why BSP semantics matter: naively reusing
scores across graph changes drifts further from the truth with every
batch (Table 1), silently corrupting downstream decisions, while
GraphBolt's refinement keeps every score exactly what a full re-run
would produce.

Run:  python examples/label_propagation_moderation.py
"""

import numpy as np

from repro import GraphBoltEngine, LabelPropagation, LigraEngine, rmat
from repro.bench.workloads import uniform_batch
from repro.runtime.validation import count_exceeding

NUM_LABELS = 3  # e.g. {benign, spam, bot}
ITERATIONS = 10


def main():
    print("=== Account scoring with streaming label propagation ===\n")
    follow_graph = rmat(scale=11, edge_factor=10, seed=5, weighted=True)
    print(f"follow graph: {follow_graph.num_vertices} accounts, "
          f"{follow_graph.num_edges} follows")

    def fresh_algorithm():
        return LabelPropagation(num_labels=NUM_LABELS, seed_every=10)

    seeds = fresh_algorithm().seed_mask(
        np.arange(follow_graph.num_vertices)
    )
    print(f"reviewed seed accounts: {int(seeds.sum())}\n")

    refined = GraphBoltEngine(fresh_algorithm(), num_iterations=ITERATIONS)
    refined.run(follow_graph)
    naive = GraphBoltEngine(fresh_algorithm(), num_iterations=ITERATIONS,
                            strategy="naive")
    naive.run(follow_graph)

    print(f"{'batch':>6} {'naive >1% wrong':>16} "
          f"{'graphbolt >1% wrong':>20}")
    for index in range(5):
        batch = uniform_batch(refined.graph, 200, seed=100 + index)
        refined_scores = refined.apply_mutations(batch)
        naive_scores = naive.apply_mutations(batch)
        truth = LigraEngine(fresh_algorithm()).run(refined.graph,
                                                   ITERATIONS)
        naive_wrong = count_exceeding(naive_scores, truth, 0.01)
        refined_wrong = count_exceeding(refined_scores, truth, 0.01)
        print(f"{index:>6} {naive_wrong:>16} {refined_wrong:>20}")

    labels = np.argmax(refined.values, axis=1)
    counts = np.bincount(labels, minlength=NUM_LABELS)
    print("\nfinal label census (argmax):",
          {f"label{i}": int(c) for i, c in enumerate(counts)})
    print("\nThe naive engine's error keeps compounding (paper Table 1); "
          "GraphBolt stays exact.")


if __name__ == "__main__":
    main()
