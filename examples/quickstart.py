#!/usr/bin/env python
"""Quickstart: incremental PageRank over a streaming graph.

Builds a synthetic social graph, runs PageRank once with dependency
tracking, then streams mutation batches through GraphBolt -- comparing
every incremental result against a from-scratch run, and showing the
work saved relative to restarting (the paper's GB-Reset baseline).

Run:  python examples/quickstart.py
"""

import time

import numpy as np

from repro import (
    DeltaEngine,
    GraphBoltEngine,
    LigraEngine,
    MutationBatch,
    PageRank,
    rmat,
)
from repro.bench.workloads import uniform_batch

ITERATIONS = 10


def main():
    print("=== GraphBolt quickstart: streaming PageRank ===\n")
    graph = rmat(scale=12, edge_factor=12, seed=42, weighted=True)
    print(f"initial snapshot: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges")

    # 1. Initial run with dependency tracking.
    engine = GraphBoltEngine(PageRank(tolerance=1e-9),
                             num_iterations=ITERATIONS)
    start = time.perf_counter()
    ranks = engine.run(graph)
    print(f"initial run: {time.perf_counter() - start:.3f}s, "
          f"top vertex = {int(np.argmax(ranks))} "
          f"(rank {ranks.max():.3f})")
    report = engine.memory_report(first_iteration_only=True)
    print(f"dependency tracking overhead: "
          f"{report.overhead_percent:.1f}% of engine memory\n")

    # 2. Stream mutation batches.
    print(f"{'batch':>6} {'mutations':>10} {'incremental':>12} "
          f"{'restart':>9} {'saved':>7} {'max err':>9}")
    for index, batch_size in enumerate((1, 10, 100, 1000)):
        batch = uniform_batch(engine.graph, batch_size, seed=index)

        before = engine.metrics.snapshot()
        start = time.perf_counter()
        ranks = engine.apply_mutations(batch)
        incremental_seconds = time.perf_counter() - start
        edges = engine.metrics.delta_since(before).edge_computations

        # The GB-Reset baseline: recompute from scratch on the snapshot.
        restart = DeltaEngine(PageRank(tolerance=1e-9))
        start = time.perf_counter()
        restart_values = restart.run(engine.graph, ITERATIONS)
        restart_seconds = time.perf_counter() - start

        # Validate against exact synchronous execution (paper s5.1).
        truth = LigraEngine(PageRank(tolerance=1e-9)).run(engine.graph,
                                                          ITERATIONS)
        error = float(np.abs(ranks - truth).max())
        saved = 1.0 - edges / max(restart.metrics.edge_computations, 1)
        print(f"{index:>6} {len(batch):>10} "
              f"{incremental_seconds:>11.3f}s {restart_seconds:>8.3f}s "
              f"{saved:>6.0%} {error:>9.1e}")
        del restart_values

    # 3. Single targeted update: watch a rank react.
    hub = int(np.argmax(engine.graph.out_degrees()))
    spoke = int(np.argmin(engine.graph.in_degrees()))
    before_rank = engine.values[spoke]
    engine.apply_mutations(
        MutationBatch.from_edges(additions=[(hub, spoke)])
    )
    print(f"\nadded edge hub {hub} -> vertex {spoke}: rank "
          f"{before_rank:.4f} -> {engine.values[spoke]:.4f}")
    print("\nOK: every incremental result matched from-scratch execution")


if __name__ == "__main__":
    main()
