#!/usr/bin/env python
"""Real-time dashboard: sliding-window ingestion + approximate/exact
query serving, instrumented through the observability subsystem.

Combines four pieces of the library:

- a :class:`~repro.graph.window.SlidingWindowStream` turns an endless
  feed of interaction events into add+expire mutation batches (only the
  last W ticks of activity matter);
- a :class:`~repro.serving.StreamingAnalyticsServer` ingests those
  batches in its *main loop*, maintaining short-window PageRank that is
  exact-for-its-window via dependency-driven refinement;
- dashboard widgets read the cheap approximate scores every tick, and a
  "drill-down" issues a *branch-loop query* for the full-window exact
  scores without pausing ingestion (the Tornado architecture from the
  paper's related work);
- the process-wide :class:`~repro.obs.MetricsRegistry` collects what
  the server and engine publish -- ingest/query latency histograms and
  the live dependency-memory gauges -- and renders the ops panel at the
  end, straight from ``registry.to_json()``.

Run:  python examples/realtime_dashboard.py --batches 5
"""

import argparse

import numpy as np

from repro import PageRank, rmat
from repro.graph.window import SlidingWindowStream
from repro.ligra.engine import LigraEngine
from repro.obs import get_registry
from repro.serving import StreamingAnalyticsServer

VERTICES = 4096
WINDOW_TICKS = 6


def render_ops_panel(registry) -> str:
    """The operations widget: read everything from the registry."""
    export = registry.to_json()
    lines = ["--- ops panel (MetricsRegistry) ---"]
    ingest = registry.histogram("serving.ingest_seconds")
    query = registry.histogram("serving.query_seconds")
    lines.append(
        f"ingest: {ingest.count} batches, mean "
        f"{ingest.mean * 1000:.1f}ms, p90 <= {ingest.quantile(0.9) * 1000:.1f}ms"
    )
    if query.count:
        lines.append(
            f"query : {query.count} drill-downs, mean "
            f"{query.mean * 1000:.1f}ms"
        )
    for name in ("graphbolt.frontier_density",
                 "graphbolt.history_window",
                 "graphbolt.dependency_bytes"):
        value = export["gauges"].get(name)
        if value is not None:
            lines.append(f"{name.split('.', 1)[1]}: {value}")
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batches", type=int, default=8,
                        help="ticks to ingest")
    parser.add_argument("--events", type=int, default=400,
                        help="interaction events per tick")
    parser.add_argument("--drill-every", type=int, default=4,
                        help="issue an exact drill-down every N ticks")
    args = parser.parse_args(argv)

    print("=== Real-time interaction dashboard ===\n")
    seed_graph = rmat(scale=12, edge_factor=6, seed=2, weighted=True)
    server = StreamingAnalyticsServer(
        lambda: PageRank(tolerance=1e-9),
        seed_graph,
        approx_iterations=3,
        exact_iterations=10,
    )
    window = SlidingWindowStream(window=WINDOW_TICKS)
    rng = np.random.default_rng(4)
    registry = get_registry()

    print(f"seeded with {seed_graph.num_edges} historical interactions; "
          f"window = {WINDOW_TICKS} ticks, "
          f"{args.events} events/tick\n")

    for tick in range(1, args.batches + 1):
        events = [
            (int(rng.integers(0, VERTICES)), int(rng.integers(0, VERTICES)))
            for _ in range(args.events)
        ]
        batch = window.advance(events)
        approx = server.ingest(batch)
        top = int(np.argmax(approx))
        line = (f"tick {tick}: +{batch.num_additions} "
                f"-{batch.num_deletions} events | live window "
                f"{window.live_edges} | top vertex {top} "
                f"(approx {approx[top]:.2f})")

        if tick % args.drill_every == 0:
            # Drill-down: exact full-window scores on demand.
            result = server.query()
            exact_top = int(np.argmax(result.values))
            truth = LigraEngine(PageRank(tolerance=1e-9)).run(
                server.graph, 10
            )
            drift = float(np.abs(result.values - truth).max())
            line += (f" | DRILL-DOWN: exact top {exact_top} in "
                     f"{result.seconds * 1000:.1f}ms "
                     f"(exact to {drift:.0e})")
        print(line)

    print(f"\nserved {server.queries_served} exact queries while "
          f"ingesting {server.batches_ingested} ticks; main loop never "
          f"stalled\n")
    print(render_ops_panel(registry))


if __name__ == "__main__":
    main()
