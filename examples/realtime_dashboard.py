#!/usr/bin/env python
"""Real-time dashboard: sliding-window ingestion + approximate/exact
query serving.

Combines three pieces of the library:

- a :class:`~repro.graph.window.SlidingWindowStream` turns an endless
  feed of interaction events into add+expire mutation batches (only the
  last W ticks of activity matter);
- a :class:`~repro.serving.StreamingAnalyticsServer` ingests those
  batches in its *main loop*, maintaining short-window PageRank that is
  exact-for-its-window via dependency-driven refinement;
- dashboard widgets read the cheap approximate scores every tick, and a
  "drill-down" issues a *branch-loop query* for the full-window exact
  scores without pausing ingestion (the Tornado architecture from the
  paper's related work).

Run:  python examples/realtime_dashboard.py
"""

import numpy as np

from repro import PageRank, rmat
from repro.graph.window import SlidingWindowStream
from repro.ligra.engine import LigraEngine
from repro.serving import StreamingAnalyticsServer

VERTICES = 4096
WINDOW_TICKS = 6
EVENTS_PER_TICK = 400


def main():
    print("=== Real-time interaction dashboard ===\n")
    seed_graph = rmat(scale=12, edge_factor=6, seed=2, weighted=True)
    server = StreamingAnalyticsServer(
        lambda: PageRank(tolerance=1e-9),
        seed_graph,
        approx_iterations=3,
        exact_iterations=10,
    )
    window = SlidingWindowStream(window=WINDOW_TICKS)
    rng = np.random.default_rng(4)

    print(f"seeded with {seed_graph.num_edges} historical interactions; "
          f"window = {WINDOW_TICKS} ticks, "
          f"{EVENTS_PER_TICK} events/tick\n")

    for tick in range(1, 9):
        events = [
            (int(rng.integers(0, VERTICES)), int(rng.integers(0, VERTICES)))
            for _ in range(EVENTS_PER_TICK)
        ]
        batch = window.advance(events)
        approx = server.ingest(batch)
        top = int(np.argmax(approx))
        line = (f"tick {tick}: +{batch.num_additions} "
                f"-{batch.num_deletions} events | live window "
                f"{window.live_edges} | top vertex {top} "
                f"(approx {approx[top]:.2f})")

        if tick % 4 == 0:
            # Drill-down: exact full-window scores on demand.
            result = server.query()
            exact_top = int(np.argmax(result.values))
            truth = LigraEngine(PageRank(tolerance=1e-9)).run(
                server.graph, 10
            )
            drift = float(np.abs(result.values - truth).max())
            line += (f" | DRILL-DOWN: exact top {exact_top} in "
                     f"{result.seconds * 1000:.1f}ms "
                     f"(exact to {drift:.0e})")
        print(line)

    print(f"\nserved {server.queries_served} exact queries while "
          f"ingesting {server.batches_ingested} ticks; main loop never "
          f"stalled")


if __name__ == "__main__":
    main()
