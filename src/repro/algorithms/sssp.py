"""Path algorithms over selection aggregations: SSSP, BFS, components,
and widest paths.

These use the **non-decomposable** :class:`MinAggregation` /
:class:`MaxAggregation` (paper section 3.3): a selection operator cannot
incrementally forget a retracted contribution, so the engines fall back
to the pull-based re-evaluation strategy for them.  SSSP is the
algorithm of the paper's KickStarter comparison (Figure 9).

All are *self-refining*: the apply step takes the vertex's own previous
value (``min``/``max`` with it), the synchronous Bellman-Ford
formulation.  ``uses_previous_value`` tells the engines to re-apply a
vertex whenever its own value moved in the previous iteration.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.aggregation import MaxAggregation, MinAggregation
from repro.core.model import IncrementalAlgorithm
from repro.graph.csr import CSRGraph

__all__ = ["SSSP", "BFS", "ConnectedComponents", "SSWP"]


class _MinimisingAlgorithm(IncrementalAlgorithm):
    """Shared base: min aggregation, self-min apply, inf-aware change."""

    value_shape = ()
    uses_previous_value = True
    tolerance = 1e-12
    # Path algorithms converge rather than run a fixed window.
    default_iterations = 100

    def __init__(self, tolerance: Optional[float] = None) -> None:
        super().__init__(MinAggregation(), tolerance)

    def apply(self, graph, aggregate_values, vertices,
              previous_values: Optional[np.ndarray] = None) -> np.ndarray:
        if previous_values is None:
            raise ValueError(f"{self.name} requires previous values")
        return np.minimum(previous_values, aggregate_values)

    def values_changed(self, old_values, new_values) -> np.ndarray:
        # inf - inf is nan; treat two infinities as unchanged explicitly.
        both_inf = np.isinf(old_values) & np.isinf(new_values)
        with np.errstate(invalid="ignore"):
            moved = np.abs(new_values - old_values) > self.tolerance
        return np.where(both_inf, False, moved | (np.isinf(old_values)
                                                  != np.isinf(new_values)))


class SSSP(_MinimisingAlgorithm):
    """Single-source shortest paths (synchronous Bellman-Ford)."""

    name = "sssp"

    def __init__(self, source: int = 0,
                 tolerance: Optional[float] = None) -> None:
        super().__init__(tolerance)
        if source < 0:
            raise ValueError("source must be a valid vertex id")
        self.source = source

    def initial_values(self, graph: CSRGraph) -> np.ndarray:
        values = np.full(graph.num_vertices, np.inf, dtype=np.float64)
        if self.source < graph.num_vertices:
            values[self.source] = 0.0
        return values

    def contributions(self, graph, src_values, src, dst, weight) -> np.ndarray:
        return src_values + weight

    def apply(self, graph, aggregate_values, vertices,
              previous_values: Optional[np.ndarray] = None) -> np.ndarray:
        result = super().apply(graph, aggregate_values, vertices,
                               previous_values)
        # The source is an anchored seed: its distance is 0 by definition.
        result = result.copy()
        result[vertices == self.source] = 0.0
        return result


class BFS(_MinimisingAlgorithm):
    """Breadth-first hop distance: SSSP with unit edge lengths."""

    name = "bfs"

    def __init__(self, source: int = 0,
                 tolerance: Optional[float] = None) -> None:
        super().__init__(tolerance)
        self.source = source

    def initial_values(self, graph: CSRGraph) -> np.ndarray:
        values = np.full(graph.num_vertices, np.inf, dtype=np.float64)
        if self.source < graph.num_vertices:
            values[self.source] = 0.0
        return values

    def contributions(self, graph, src_values, src, dst, weight) -> np.ndarray:
        return src_values + 1.0

    def apply(self, graph, aggregate_values, vertices,
              previous_values: Optional[np.ndarray] = None) -> np.ndarray:
        result = super().apply(graph, aggregate_values, vertices,
                               previous_values)
        result = result.copy()
        result[vertices == self.source] = 0.0
        return result


class SSWP(IncrementalAlgorithm):
    """Single-source widest path (maximum bottleneck bandwidth).

    ``width(v) = max over in-edges (u, v) of min(width(u), w(u, v))``,
    with the source anchored at +inf.  Exercises the non-decomposable
    :class:`MaxAggregation` end to end: deleting the bottleneck edge of
    a best path forces pull-based re-evaluation, exactly like min does
    for SSSP.
    """

    name = "sswp"
    value_shape = ()
    uses_previous_value = True
    tolerance = 1e-12
    default_iterations = 100

    def __init__(self, source: int = 0,
                 tolerance: Optional[float] = None) -> None:
        super().__init__(MaxAggregation(), tolerance)
        if source < 0:
            raise ValueError("source must be a valid vertex id")
        self.source = source

    def initial_values(self, graph: CSRGraph) -> np.ndarray:
        values = np.full(graph.num_vertices, -np.inf, dtype=np.float64)
        if self.source < graph.num_vertices:
            values[self.source] = np.inf
        return values

    def contributions(self, graph, src_values, src, dst, weight) -> np.ndarray:
        return np.minimum(src_values, weight)

    def apply(self, graph, aggregate_values, vertices,
              previous_values: Optional[np.ndarray] = None) -> np.ndarray:
        if previous_values is None:
            raise ValueError("sswp requires previous values")
        result = np.maximum(previous_values, aggregate_values)
        result = result.copy()
        result[vertices == self.source] = np.inf
        return result

    def values_changed(self, old_values, new_values) -> np.ndarray:
        both_inf = np.isinf(old_values) & np.isinf(new_values) & (
            np.sign(old_values) == np.sign(new_values)
        )
        with np.errstate(invalid="ignore"):
            moved = np.abs(new_values - old_values) > self.tolerance
        return np.where(
            both_inf, False,
            moved | (np.isinf(old_values) != np.isinf(new_values)),
        )


class ConnectedComponents(_MinimisingAlgorithm):
    """Min-label propagation: components get their smallest member id.

    On a digraph this computes the standard label-propagation
    approximation of weakly connected components (exact when edges are
    symmetric).
    """

    name = "connected_components"

    def initial_values(self, graph: CSRGraph) -> np.ndarray:
        return np.arange(graph.num_vertices, dtype=np.float64)

    def contributions(self, graph, src_values, src, dst, weight) -> np.ndarray:
        return src_values.copy()
