"""Collaborative Filtering by Alternating Least Squares.

The paper's canonical *complex aggregation* (section 3.3)::

    c_i(v) = ( sum_{(u,v)} c(u) c(u)^T + lambda I )^{-1}
             *  sum_{(u,v)} c(u) * weight(u, v)

Step 1 of the paper's decomposition workflow splits this into the pair of
sub-aggregations  < sum c c^T , sum c w > , both plain sums; step 2
reproduces old contributions on the fly (c(u) c(u)^T from the old value)
so that differences can be aggregated.  We realise the pair as one
flattened sum-aggregated vector of length ``K*K + K`` per vertex -- the
static decomposition is literally a choice of value layout -- and the
matrix inverse plus the lambda*I shift live in the apply step, exactly as
the paper leaves them outside the decomposition.

The graph is expected bipartite user<->item with symmetric rating edges
(see :func:`repro.graph.generators.bipartite_graph`), but the algorithm
is well-defined on any weighted digraph.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.algorithms._hashing import uniform_from_ids
from repro.core.aggregation import SumAggregation
from repro.core.model import IncrementalAlgorithm
from repro.graph.csr import CSRGraph

__all__ = ["CollaborativeFiltering"]


class CollaborativeFiltering(IncrementalAlgorithm):
    """ALS with K latent factors and ridge regularisation."""

    name = "collaborative_filtering"
    tolerance = 1e-12

    def __init__(self, num_factors: int = 4, regulariser: float = 0.5,
                 salt: int = 31, tolerance: Optional[float] = None) -> None:
        super().__init__(SumAggregation(), tolerance)
        if num_factors < 1:
            raise ValueError("need at least one latent factor")
        if regulariser <= 0:
            raise ValueError(
                "regulariser must be positive (it keeps the normal matrix "
                "invertible for vertices with few ratings)"
            )
        self.num_factors = num_factors
        self.regulariser = regulariser
        self.salt = salt
        self.value_shape = (num_factors,)

    @property
    def aggregation_shape(self) -> Tuple[int, ...]:
        # < flattened K x K normal matrix | K-vector right-hand side >
        return (self.num_factors * (self.num_factors + 1),)

    # ------------------------------------------------------------------
    def initial_values(self, graph: CSRGraph) -> np.ndarray:
        ids = np.arange(graph.num_vertices, dtype=np.int64)
        columns = [
            0.1 + 0.8 * uniform_from_ids(ids, self.salt + k)
            for k in range(self.num_factors)
        ]
        return np.stack(columns, axis=1)

    def contributions(self, graph, src_values, src, dst, weight) -> np.ndarray:
        outer = src_values[:, :, None] * src_values[:, None, :]
        rhs = src_values * weight[:, None]
        return np.concatenate(
            [outer.reshape(src_values.shape[0], -1), rhs], axis=1
        )

    def apply(self, graph, aggregate_values, vertices,
              previous_values: Optional[np.ndarray] = None) -> np.ndarray:
        k = self.num_factors
        n = aggregate_values.shape[0]
        normal = aggregate_values[:, : k * k].reshape(n, k, k).copy()
        rhs = aggregate_values[:, k * k :]
        normal += self.regulariser * np.eye(k)
        # Sum of outer products is PSD; + lambda*I makes it PD, so the
        # batched solve cannot be singular.  The trailing singleton axis
        # forces NumPy's batched-matrix (not single-matrix) semantics.
        return np.linalg.solve(normal, rhs[:, :, None])[:, :, 0]
