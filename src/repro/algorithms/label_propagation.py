"""Label Propagation (Zhu & Ghahramani), the paper's LP benchmark.

Each vertex carries a probability distribution over ``num_labels``
labels.  Per iteration (paper Table 4)::

    g_i(v)[f] = sum_{(u,v) in E} c_{i-1}(u)[f] * weight(u, v)
    c_i(v)    = normalise(g_i(v)),   seeds clamped to their one-hot label

Seed vertices (a deterministic hash-selected fraction) keep their label
distribution fixed; everyone else starts uniform.  LP requires BSP
semantics -- it is the algorithm the paper uses to demonstrate that naive
reuse of intermediate values yields incorrect results (Figure 2, Table 1).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms._hashing import hash_ids
from repro.core.aggregation import SumAggregation
from repro.core.model import IncrementalAlgorithm
from repro.graph.csr import CSRGraph

__all__ = ["LabelPropagation"]


class LabelPropagation(IncrementalAlgorithm):
    """Semi-supervised label propagation over weighted edges."""

    name = "label_propagation"
    tolerance = 1e-12

    def __init__(self, num_labels: int = 5, seed_every: int = 10,
                 salt: int = 7, tolerance: Optional[float] = None) -> None:
        super().__init__(SumAggregation(), tolerance)
        if num_labels < 2:
            raise ValueError("need at least two labels")
        if seed_every < 1:
            raise ValueError("seed_every must be >= 1")
        self.num_labels = num_labels
        self.seed_every = seed_every
        self.salt = salt
        self.value_shape = (num_labels,)

    # ------------------------------------------------------------------
    def seed_mask(self, ids: np.ndarray) -> np.ndarray:
        """True for vertices whose label is observed (clamped)."""
        return hash_ids(ids, self.salt) % np.uint64(self.seed_every) == 0

    def seed_labels(self, ids: np.ndarray) -> np.ndarray:
        """The observed label of each (seed) vertex id."""
        return (hash_ids(ids, self.salt + 1)
                % np.uint64(self.num_labels)).astype(np.int64)

    def _seed_distributions(self, ids: np.ndarray) -> np.ndarray:
        one_hot = np.zeros((ids.size, self.num_labels), dtype=np.float64)
        one_hot[np.arange(ids.size), self.seed_labels(ids)] = 1.0
        return one_hot

    # ------------------------------------------------------------------
    def initial_values(self, graph: CSRGraph) -> np.ndarray:
        ids = np.arange(graph.num_vertices, dtype=np.int64)
        values = np.full(
            (graph.num_vertices, self.num_labels),
            1.0 / self.num_labels,
            dtype=np.float64,
        )
        seeds = self.seed_mask(ids)
        values[seeds] = self._seed_distributions(ids[seeds])
        return values

    def contributions(self, graph, src_values, src, dst, weight) -> np.ndarray:
        return src_values * weight[:, None]

    def apply(self, graph, aggregate_values, vertices,
              previous_values: Optional[np.ndarray] = None) -> np.ndarray:
        totals = aggregate_values.sum(axis=1, keepdims=True)
        # Vanishing mass carries no label information: normalising it
        # would amplify float residue left behind by incremental
        # retraction (e.g. a vertex whose in-edges were all deleted), so
        # anything below the threshold falls back to the uniform prior.
        safe = totals > 1e-9
        normalised = np.where(
            safe, aggregate_values / np.where(safe, totals, 1.0),
            1.0 / self.num_labels,
        )
        seeds = self.seed_mask(vertices)
        if seeds.any():
            normalised = normalised.copy()
            normalised[seeds] = self._seed_distributions(vertices[seeds])
        return normalised
