"""Deterministic per-vertex pseudo-randomness.

Seed selection, priors and initial latent vectors must be deterministic
functions of the vertex *id*, never of the vertex count or insertion
order: when the streaming graph grows, existing vertices must keep their
parameters bit-for-bit, otherwise a vertex addition would perturb the
whole computation and break refinement-versus-from-scratch equivalence.

We use a Knuth/Wang-style integer mix vectorised over id arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = ["hash_ids", "uniform_from_ids"]

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def hash_ids(ids: np.ndarray, salt: int = 0) -> np.ndarray:
    """64-bit mix of vertex ids; uniform-ish, deterministic, vectorised."""
    salt_mix = np.uint64((salt * 0x9E3779B97F4A7C15 + 1) & 0xFFFFFFFFFFFFFFFF)
    with np.errstate(over="ignore"):
        x = np.asarray(ids, dtype=np.uint64) + salt_mix
    with np.errstate(over="ignore"):
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9) & _MASK64
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB) & _MASK64
        x = x ^ (x >> np.uint64(31))
    return x


def uniform_from_ids(ids: np.ndarray, salt: int = 0) -> np.ndarray:
    """Deterministic floats in [0, 1) per vertex id."""
    return hash_ids(ids, salt).astype(np.float64) / 2.0**64
