"""Adsorption label propagation (Baluja et al., WWW'08).

The general form of graph-based semi-supervised learning that the
paper's LP benchmark is a special case of: each vertex mixes three
sources of label mass per iteration --

    c_i(v) = p_inj(v)  * injected(v)
           + p_cont(v) * normalise( sum_u c_{i-1}(u) * w(u, v) )
           + p_abnd(v) * uniform

with per-vertex probabilities (injection for labelled vertices,
continuation for propagating, abandonment as regularisation) summing
to one.  A genuinely different *apply* step over the same weighted-sum
aggregation, so it slots straight into the incremental model; seeds
here are soft (injected each iteration) rather than clamped.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms._hashing import hash_ids
from repro.core.aggregation import SumAggregation
from repro.core.model import IncrementalAlgorithm
from repro.graph.csr import CSRGraph

__all__ = ["Adsorption"]


class Adsorption(IncrementalAlgorithm):
    """Adsorption with hash-selected injected labels."""

    name = "adsorption"
    tolerance = 1e-12

    def __init__(self, num_labels: int = 4, seed_every: int = 8,
                 injection: float = 0.6, abandonment: float = 0.1,
                 salt: int = 53, tolerance: Optional[float] = None) -> None:
        super().__init__(SumAggregation(), tolerance)
        if num_labels < 2:
            raise ValueError("need at least two labels")
        if not 0.0 < injection < 1.0 or not 0.0 <= abandonment < 1.0:
            raise ValueError("probabilities must lie in (0, 1)")
        if injection + abandonment >= 1.0:
            raise ValueError(
                "injection + abandonment must leave continuation mass"
            )
        self.num_labels = num_labels
        self.seed_every = seed_every
        self.injection = injection
        self.abandonment = abandonment
        self.salt = salt
        self.value_shape = (num_labels,)

    # ------------------------------------------------------------------
    def seed_mask(self, ids: np.ndarray) -> np.ndarray:
        return hash_ids(ids, self.salt) % np.uint64(self.seed_every) == 0

    def injected_labels(self, ids: np.ndarray) -> np.ndarray:
        one_hot = np.zeros((ids.size, self.num_labels))
        labels = (hash_ids(ids, self.salt + 1)
                  % np.uint64(self.num_labels)).astype(np.int64)
        one_hot[np.arange(ids.size), labels] = 1.0
        return one_hot

    def _probabilities(self, ids: np.ndarray):
        """(p_inj, p_cont, p_abnd) per vertex; only seeds inject."""
        seeds = self.seed_mask(ids)
        p_inj = np.where(seeds, self.injection, 0.0)
        p_abnd = np.full(ids.size, self.abandonment)
        p_cont = 1.0 - p_inj - p_abnd
        return p_inj, p_cont, p_abnd

    # ------------------------------------------------------------------
    def initial_values(self, graph: CSRGraph) -> np.ndarray:
        return np.full(
            (graph.num_vertices, self.num_labels), 1.0 / self.num_labels
        )

    def contributions(self, graph, src_values, src, dst, weight) -> np.ndarray:
        return src_values * weight[:, None]

    def apply(self, graph, aggregate_values, vertices,
              previous_values: Optional[np.ndarray] = None) -> np.ndarray:
        totals = aggregate_values.sum(axis=1, keepdims=True)
        safe = totals > 1e-9
        propagated = np.where(
            safe,
            aggregate_values / np.where(safe, totals, 1.0),
            1.0 / self.num_labels,
        )
        p_inj, p_cont, p_abnd = self._probabilities(vertices)
        uniform = 1.0 / self.num_labels
        return (
            p_inj[:, None] * self.injected_labels(vertices)
            + p_cont[:, None] * propagated
            + p_abnd[:, None] * uniform
        )
