"""Co-Training Expectation Maximization (CoEM).

A semi-supervised learning algorithm for named-entity recognition (Nigam
& Ghani); the paper's CoEM row in Table 4::

    c_i(v) = ( sum_{(u,v) in E} c_{i-1}(u) * weight(u,v) )
             / ( sum_{(w,v) in E} weight(w,v) )

The numerator is a plain weighted-sum aggregation; the denominator is the
vertex's *in-weight sum*, which lives in the apply step.  That makes the
normaliser an **apply parameter**: a mutation touching v's in-edges
changes c_i(v) even when the aggregate is untouched, which is why
:meth:`apply_params_changed` reports the mutation's in-changed vertices
-- the engine then re-applies them in every refined iteration.

Seed vertices (hash-selected) are clamped to scores 1.0 (positive
entities) or 0.0 (negative), mirroring CoEM's labelled seeds.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms._hashing import hash_ids
from repro.core.aggregation import SumAggregation
from repro.core.model import IncrementalAlgorithm
from repro.graph.csr import CSRGraph
from repro.graph.mutable import MutationResult

__all__ = ["CoEM"]


class CoEM(IncrementalAlgorithm):
    """CoEM label scores with in-weight normalisation."""

    name = "coem"
    value_shape = ()
    tolerance = 1e-12

    def __init__(self, seed_every: int = 10, salt: int = 11,
                 default_score: float = 0.2,
                 tolerance: Optional[float] = None) -> None:
        super().__init__(SumAggregation(), tolerance)
        self.seed_every = seed_every
        self.salt = salt
        self.default_score = default_score

    # ------------------------------------------------------------------
    def seed_mask(self, ids: np.ndarray) -> np.ndarray:
        return hash_ids(ids, self.salt) % np.uint64(self.seed_every) == 0

    def seed_scores(self, ids: np.ndarray) -> np.ndarray:
        """1.0 for positive seeds, 0.0 for negative seeds."""
        return (hash_ids(ids, self.salt + 1) % np.uint64(2)).astype(np.float64)

    # ------------------------------------------------------------------
    def initial_values(self, graph: CSRGraph) -> np.ndarray:
        ids = np.arange(graph.num_vertices, dtype=np.int64)
        values = np.full(graph.num_vertices, self.default_score,
                         dtype=np.float64)
        seeds = self.seed_mask(ids)
        values[seeds] = self.seed_scores(ids[seeds])
        return values

    def contributions(self, graph, src_values, src, dst, weight) -> np.ndarray:
        return src_values * weight

    def apply(self, graph, aggregate_values, vertices,
              previous_values: Optional[np.ndarray] = None) -> np.ndarray:
        normalisers = graph.in_weight_sums()[vertices]
        safe = normalisers > 0
        scores = np.where(
            safe,
            aggregate_values / np.where(safe, normalisers, 1.0),
            self.default_score,
        )
        seeds = self.seed_mask(vertices)
        if seeds.any():
            scores = scores.copy()
            scores[seeds] = self.seed_scores(vertices[seeds])
        return scores

    def apply_params_changed(self, mutation: MutationResult) -> np.ndarray:
        return mutation.in_changed_vertices()
