"""Additional centrality algorithms (extensions beyond the paper's six).

These exercise corners of the incremental programming model the paper's
benchmarks do not:

- :class:`KatzCentrality` -- an unnormalised sum recurrence (no apply
  normalisation at all), the simplest possible decomposable algorithm;
- :class:`WeightedPageRank` -- contributions normalised by the source's
  *out-weight sum* rather than its out-degree, so weight replacement on
  any out-edge (not just degree change) is a contribution-parameter
  change;
- :class:`PersonalizedPageRank` -- teleportation mass concentrated on a
  hash-selected seed set, the random-walk-with-restart variant used for
  recommendation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms._hashing import hash_ids
from repro.core.aggregation import SumAggregation
from repro.core.model import IncrementalAlgorithm
from repro.graph.csr import CSRGraph
from repro.graph.mutable import MutationResult

__all__ = ["KatzCentrality", "WeightedPageRank", "PersonalizedPageRank"]


class KatzCentrality(IncrementalAlgorithm):
    """Katz centrality: ``c_i(v) = beta + alpha * sum c_{i-1}(u)``.

    ``alpha`` must stay below the reciprocal spectral radius for the
    recurrence to converge; the fixed-iteration BSP window is
    well-defined regardless.
    """

    name = "katz"
    value_shape = ()
    tolerance = 1e-12

    def __init__(self, alpha: float = 0.05, beta: float = 1.0,
                 tolerance: Optional[float] = None) -> None:
        super().__init__(SumAggregation(), tolerance)
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha
        self.beta = beta

    def initial_values(self, graph: CSRGraph) -> np.ndarray:
        return np.full(graph.num_vertices, self.beta, dtype=np.float64)

    def contributions(self, graph, src_values, src, dst, weight) -> np.ndarray:
        return src_values.copy()

    def apply(self, graph, aggregate_values, vertices,
              previous_values: Optional[np.ndarray] = None) -> np.ndarray:
        return self.beta + self.alpha * aggregate_values


class WeightedPageRank(IncrementalAlgorithm):
    """PageRank whose contributions split rank by *edge weight share*.

    ``contribution(u -> v) = c(u) * w(u, v) / out_weight_sum(u)``.
    The normaliser depends on the weights of all of u's out-edges, so
    any out-edge addition, deletion *or weight replacement* changes u's
    contribution function -- a strictly larger contribution-parameter
    set than plain PageRank's out-degree.
    """

    name = "weighted_pagerank"
    value_shape = ()
    tolerance = 1e-12

    def __init__(self, damping: float = 0.85,
                 tolerance: Optional[float] = None) -> None:
        super().__init__(SumAggregation(), tolerance)
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        self.damping = damping

    def initial_values(self, graph: CSRGraph) -> np.ndarray:
        return np.ones(graph.num_vertices, dtype=np.float64)

    def contributions(self, graph, src_values, src, dst, weight) -> np.ndarray:
        # Sources of real edges always have a positive out-weight sum.
        # Each graph class caches this appropriately for its mutability
        # (immutable snapshots memoise; dynamic structures invalidate).
        return src_values * weight / graph.out_weight_sums()[src]

    def apply(self, graph, aggregate_values, vertices,
              previous_values: Optional[np.ndarray] = None) -> np.ndarray:
        return (1.0 - self.damping) + self.damping * aggregate_values

    def contribution_params_changed(self, mutation: MutationResult) -> np.ndarray:
        return mutation.out_changed_vertices()


class PersonalizedPageRank(IncrementalAlgorithm):
    """Random walk with restart toward a hash-selected seed set."""

    name = "personalized_pagerank"
    value_shape = ()
    tolerance = 1e-12

    def __init__(self, damping: float = 0.85, seed_every: int = 20,
                 salt: int = 41, tolerance: Optional[float] = None) -> None:
        super().__init__(SumAggregation(), tolerance)
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        self.damping = damping
        self.seed_every = seed_every
        self.salt = salt

    def seed_mask(self, ids: np.ndarray) -> np.ndarray:
        return hash_ids(ids, self.salt) % np.uint64(self.seed_every) == 0

    def initial_values(self, graph: CSRGraph) -> np.ndarray:
        ids = np.arange(graph.num_vertices, dtype=np.int64)
        return self.seed_mask(ids).astype(np.float64)

    def contributions(self, graph, src_values, src, dst, weight) -> np.ndarray:
        return src_values / graph.out_degrees()[src]

    def apply(self, graph, aggregate_values, vertices,
              previous_values: Optional[np.ndarray] = None) -> np.ndarray:
        restart = self.seed_mask(vertices).astype(np.float64)
        return (1.0 - self.damping) * restart + (
            self.damping * aggregate_values
        )

    def contribution_params_changed(self, mutation: MutationResult) -> np.ndarray:
        return mutation.out_changed_vertices()
