"""Loopy Belief Propagation (simplified, per the paper's Algorithm 2).

Each vertex holds a normalised product-of-messages vector over ``S``
states.  Per edge (u, v) the contribution is (paper Table 4)::

    contribution[s] = sum_{s'} phi(u, s') * psi(s', s) * c(u)[s']

and the aggregation multiplies contributions over incoming edges.  Like
the paper's simplified Algorithm 2 we omit the exclusion of inbound
contributions.

The product is a *complex aggregation*: undoing a contribution requires
reproducing the old contribution from the old vertex value and dividing
it out (the paper's ``retract`` with ``atomicDivide``).  We run the
product in log space (:class:`LogProductAggregation`) so that deep
products over high-degree vertices neither under- nor overflow; the
incremental operator structure is identical (multiply ≡ add-log,
divide ≡ subtract-log).  Each edge contribution is normalised to unit
geometric mean, a deterministic function of the source value, keeping
log magnitudes bounded.

``phi`` (vertex priors) are deterministic per-vertex-id values near
uniform; ``psi`` is a symmetric mixing matrix with mild diagonal
preference.  Beliefs are read out with :meth:`beliefs`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms._hashing import uniform_from_ids
from repro.core.aggregation import LogProductAggregation
from repro.core.model import IncrementalAlgorithm
from repro.graph.csr import CSRGraph

__all__ = ["BeliefPropagation"]


class BeliefPropagation(IncrementalAlgorithm):
    """Simplified loopy BP with log-space product aggregation."""

    name = "belief_propagation"
    tolerance = 1e-12

    def __init__(self, num_states: int = 2, coupling: float = 0.2,
                 salt: int = 23, tolerance: Optional[float] = None) -> None:
        super().__init__(LogProductAggregation(), tolerance)
        if num_states < 2:
            raise ValueError("need at least two states")
        if not 0.0 <= coupling < 1.0:
            raise ValueError("coupling must be in [0, 1)")
        self.num_states = num_states
        self.salt = salt
        self.value_shape = (num_states,)
        # psi[s', s]: uniform mixing plus a diagonal preference.
        base = np.full((num_states, num_states),
                       (1.0 - coupling) / num_states)
        self.psi = base + coupling * np.eye(num_states)

    # ------------------------------------------------------------------
    def priors(self, ids: np.ndarray) -> np.ndarray:
        """phi(u, s): near-uniform deterministic priors in [0.45, 0.55]."""
        columns = [
            0.45 + 0.1 * uniform_from_ids(ids, self.salt + s)
            for s in range(self.num_states)
        ]
        return np.stack(columns, axis=1)

    # ------------------------------------------------------------------
    def initial_values(self, graph: CSRGraph) -> np.ndarray:
        return np.full(
            (graph.num_vertices, self.num_states),
            1.0 / self.num_states,
            dtype=np.float64,
        )

    def contributions(self, graph, src_values, src, dst, weight) -> np.ndarray:
        messages = (self.priors(src) * src_values) @ self.psi
        logs = np.log(messages)
        # Unit geometric mean keeps the log-sum of each contribution at
        # zero, so products over any in-degree stay representable.
        return logs - logs.mean(axis=1, keepdims=True)

    def apply(self, graph, aggregate_values, vertices,
              previous_values: Optional[np.ndarray] = None) -> np.ndarray:
        shifted = aggregate_values - aggregate_values.max(axis=1, keepdims=True)
        products = np.exp(shifted)
        return products / products.sum(axis=1, keepdims=True)

    # ------------------------------------------------------------------
    def beliefs(self, values: np.ndarray) -> np.ndarray:
        """Final belief readout: normalise(phi(v) * product(v))."""
        ids = np.arange(values.shape[0], dtype=np.int64)
        raw = self.priors(ids) * values
        return raw / raw.sum(axis=1, keepdims=True)
