"""PageRank in GraphBolt's decomposed form.

Matches Algorithm 1 of the paper::

    g_i(v) = sum_{(u,v) in E} c_{i-1}(u) / out_degree(u)
    c_i(v) = 0.15 + 0.85 * g_i(v)

The contribution depends on the source's out-degree, a *contribution
parameter*: a mutation that changes u's out-degree changes u's
contribution along every retained out-edge even when u's rank is
unchanged -- exactly why the paper's ``propagateDelta`` (Algorithm 3)
distinguishes ``oldpr/old_degree`` from ``newpr/new_degree``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.aggregation import SumAggregation
from repro.core.model import IncrementalAlgorithm
from repro.graph.csr import CSRGraph
from repro.graph.mutable import MutationResult

__all__ = ["PageRank"]


class PageRank(IncrementalAlgorithm):
    """Damped PageRank with out-degree-normalised contributions."""

    name = "pagerank"
    value_shape = ()
    tolerance = 1e-12

    def __init__(self, damping: float = 0.85,
                 tolerance: Optional[float] = None) -> None:
        super().__init__(SumAggregation(), tolerance)
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        self.damping = damping

    def initial_values(self, graph: CSRGraph) -> np.ndarray:
        return np.ones(graph.num_vertices, dtype=np.float64)

    def contributions(self, graph, src_values, src, dst, weight) -> np.ndarray:
        # Every edge source has out-degree >= 1 in the snapshot the edge
        # belongs to, so the division is always defined.
        return src_values / graph.out_degrees()[src]

    def apply(self, graph, aggregate_values, vertices,
              previous_values: Optional[np.ndarray] = None) -> np.ndarray:
        return (1.0 - self.damping) + self.damping * aggregate_values

    def contribution_params_changed(self, mutation: MutationResult) -> np.ndarray:
        return mutation.out_changed_vertices()
