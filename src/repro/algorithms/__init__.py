"""The paper's evaluation algorithms (Table 4) plus SSSP/BFS/CC.

========================  ==============================  ==================
Algorithm                 Aggregation                     Character
========================  ==============================  ==================
PageRank                  sum of c(u)/out_degree(u)       contribution param
BeliefPropagation         per-state product               complex, product
LabelPropagation          per-label weighted sum          vector sum
CoEM                      weighted sum / in-weight        apply param
CollaborativeFiltering    pair <sum c c^T, sum c w>       complex, decomposed
TriangleCounting          sum |in(u) ∩ out(v)|            local, single-pass
SSSP / BFS / CC           min                             non-decomposable
========================  ==============================  ==================
"""

from repro.algorithms.adsorption import Adsorption
from repro.algorithms.belief_propagation import BeliefPropagation
from repro.algorithms.centrality import (
    KatzCentrality,
    PersonalizedPageRank,
    WeightedPageRank,
)
from repro.algorithms.coem import CoEM
from repro.algorithms.collaborative_filtering import CollaborativeFiltering
from repro.algorithms.label_propagation import LabelPropagation
from repro.algorithms.pagerank import PageRank
from repro.algorithms.sssp import BFS, ConnectedComponents, SSSP, SSWP
from repro.algorithms.triangle_counting import (
    IncrementalTriangleCounting,
    triangle_counts,
)

__all__ = [
    "Adsorption",
    "BFS",
    "BeliefPropagation",
    "KatzCentrality",
    "PersonalizedPageRank",
    "WeightedPageRank",
    "CoEM",
    "CollaborativeFiltering",
    "ConnectedComponents",
    "IncrementalTriangleCounting",
    "LabelPropagation",
    "PageRank",
    "SSSP",
    "SSWP",
    "triangle_counts",
]
