"""Triangle counting: full recomputation and incremental maintenance.

The paper's TC (Table 4) aggregates ``|in(u) ∩ out(v)|`` over edges,
which counts each *directed triangle* (3-cycle u→v→w→u) three times --
once per base edge.  We report per-vertex triangle participation and the
de-duplicated global triangle count.

TC computes in a single iteration, and the impact of an edge mutation is
purely local (the mutated edge's endpoints and their common neighbours;
paper section 5.2).  Incremental maintenance therefore enumerates exactly
the triangles containing a mutated edge -- new triangles in the new
snapshot, destroyed triangles in the old snapshot -- and adjusts counts,
instead of resetting and recomputing two-hop neighbourhoods.  A triangle
cannot contain both an added and a deleted edge (added edges are absent
from the old snapshot, deleted ones from the new), so the two
enumerations are disjoint; triangles containing several added (or
several deleted) edges are de-duplicated via canonical rotation.

The incremental counter retains the pre-mutation structure to enumerate
destroyed triangles, which is the source of TC's ~2x memory overhead in
the paper's Table 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set, Tuple

import numpy as np
from scipy import sparse

from repro.graph.csr import CSRGraph
from repro.graph.mutable import MutationResult, StreamingGraph
from repro.graph.mutation import MutationBatch
from repro.runtime.metrics import EngineMetrics

__all__ = ["TriangleCounts", "triangle_counts", "IncrementalTriangleCounting"]


@dataclass
class TriangleCounts:
    """Per-vertex directed-triangle participation and the global count."""

    per_vertex: np.ndarray
    total: int

    def copy(self) -> "TriangleCounts":
        return TriangleCounts(self.per_vertex.copy(), self.total)


def triangle_counts(graph: CSRGraph,
                    metrics: Optional[EngineMetrics] = None) -> TriangleCounts:
    """Count directed triangles from scratch (the restart baseline).

    Uses the sparse-matrix identity: with adjacency A,
    ``B = (A @ A) ⊙ A^T`` holds at (u, w) the number of triangles
    u→v→w→u closed by edge (w, u); row sums give per-vertex counts and
    ``B.sum() / 3`` the global count.
    """
    num_vertices = graph.num_vertices
    src, dst, _ = graph.all_edges()
    proper = src != dst
    src, dst = src[proper], dst[proper]  # self-loops form no triangle
    if metrics is not None:
        # The per-edge intersection |in(u) ∩ out(v)| over sorted lists
        # costs in_deg(u) + out_deg(v); charging that for every edge is
        # the honest work measure of the recompute baseline (the sparse
        # matrix product performs the equivalent wedge visits).
        in_deg = graph.in_degrees()
        out_deg = graph.out_degrees()
        metrics.count_edges(int((in_deg[src] + out_deg[dst]).sum()))
    adjacency = sparse.csr_matrix(
        (np.ones(src.size), (src, dst)), shape=(num_vertices, num_vertices)
    )
    closed = (adjacency @ adjacency).multiply(adjacency.T)
    per_vertex = np.asarray(closed.sum(axis=1)).reshape(-1).astype(np.int64)
    total_base_counts = int(per_vertex.sum())
    if total_base_counts % 3 != 0:
        raise AssertionError("directed triangle count must divide by 3")
    return TriangleCounts(per_vertex, total_base_counts // 3)


def _canonical(u: int, v: int, w: int) -> Tuple[int, int, int]:
    """Rotation-canonical form of the directed triangle u→v→w→u."""
    if u <= v and u <= w:
        return (u, v, w)
    if v <= u and v <= w:
        return (v, w, u)
    return (w, u, v)


def _triangles_through_edges(
    graph: CSRGraph,
    edge_src: np.ndarray,
    edge_dst: np.ndarray,
    metrics: Optional[EngineMetrics],
) -> Set[Tuple[int, int, int]]:
    """All directed triangles of ``graph`` containing any given edge."""
    found: Set[Tuple[int, int, int]] = set()
    for u, v in zip(edge_src.tolist(), edge_dst.tolist()):
        if u >= graph.num_vertices or v >= graph.num_vertices:
            continue
        into_u = graph.in_neighbors(u)
        from_v = graph.out_neighbors(v)
        if metrics is not None:
            metrics.count_edges(into_u.size + from_v.size)
        for w in np.intersect1d(into_u, from_v, assume_unique=False).tolist():
            found.add(_canonical(u, v, int(w)))
    return found


class IncrementalTriangleCounting:
    """Maintains triangle counts across a mutation stream."""

    name = "triangle_counting"

    def __init__(self, graph: CSRGraph,
                 metrics: Optional[EngineMetrics] = None) -> None:
        self.metrics = metrics if metrics is not None else EngineMetrics()
        self._streaming = StreamingGraph(graph)
        self.counts = triangle_counts(graph, self.metrics)

    @property
    def graph(self) -> CSRGraph:
        return self._streaming.graph

    @property
    def total(self) -> int:
        return self.counts.total

    @property
    def per_vertex(self) -> np.ndarray:
        return self.counts.per_vertex

    # ------------------------------------------------------------------
    def apply_mutations(self, batch: MutationBatch) -> TriangleCounts:
        """Apply a batch and incrementally adjust triangle counts."""
        mutation = self._streaming.apply_batch(batch)
        self._adjust(mutation)
        return self.counts

    def _adjust(self, mutation: MutationResult) -> None:
        new_graph, old_graph = mutation.new_graph, mutation.old_graph
        if new_graph.num_vertices > self.counts.per_vertex.size:
            grown = np.zeros(new_graph.num_vertices, dtype=np.int64)
            grown[: self.counts.per_vertex.size] = self.counts.per_vertex
            self.counts.per_vertex = grown

        created = _triangles_through_edges(
            new_graph, mutation.add_src, mutation.add_dst, self.metrics
        )
        destroyed = _triangles_through_edges(
            old_graph, mutation.del_src, mutation.del_dst, self.metrics
        )
        for triangle in created:
            for vertex in triangle:
                self.counts.per_vertex[vertex] += 1
        for triangle in destroyed:
            for vertex in triangle:
                self.counts.per_vertex[vertex] -= 1
        self.counts.total += len(created) - len(destroyed)

    # ------------------------------------------------------------------
    def dependency_bytes(self) -> int:
        """Extra state retained beyond the baseline (Table 9 accounting):
        the pre-mutation structure kept for destroyed-triangle
        enumeration plus the maintained counts."""
        previous = self._streaming.previous
        retained = 0
        if previous is not None:
            retained += (
                previous.out_offsets.nbytes
                + previous.out_targets.nbytes
                + previous.out_weights.nbytes
                + previous.in_offsets.nbytes
                + previous.in_sources.nbytes
                + previous.in_weights.nbytes
            )
        return retained + self.counts.per_vertex.nbytes
