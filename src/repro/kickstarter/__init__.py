"""KickStarter-style streaming engine for monotonic path algorithms.

The paper compares GraphBolt against KickStarter (Vora et al.,
ASPLOS'17) on SSSP (Figure 9).  KickStarter trades generality for
specialisation: it tracks a single O(V) *value dependency tree* (which
in-neighbour determined each vertex's value) instead of GraphBolt's
per-iteration aggregation history, and exploits the monotonicity of
path-based algorithms to trim and re-propagate approximations without
any BSP iteration structure.  That is why it wins on SSSP -- and why it
cannot express the BSP-semantics algorithms GraphBolt targets.
"""

from repro.kickstarter.engine import KickStarterEngine
from repro.kickstarter.trees import DependencyTree

__all__ = ["DependencyTree", "KickStarterEngine"]
