"""The KickStarter trim-and-propagate engine.

Processes monotonically-converging path algorithms (SSSP, BFS,
min-label components) over a streaming graph:

- **Initial run / additions**: frontier-based relaxation.  An improved
  vertex records which in-neighbour improved it (its dependency parent)
  and pushes candidates to its out-neighbours.
- **Deletions**: a deleted edge (u, v) only endangers v if (u, v) is
  v's dependency edge.  The engine *tags* the dependency subtree below
  every endangered target, *trims* each tagged vertex to a safe
  approximation -- the best candidate offered by untagged in-neighbours,
  whose values rest on still-existing paths and are therefore valid
  upper bounds -- and then re-propagates to the exact fixpoint.

Tags touch only true dependents (not every downstream vertex), which is
the KickStarter insight that naive tag-propagation forfeits: tagging
all reachable vertices would reset most of the graph (paper section 1).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.mutable import MutationResult, StreamingGraph
from repro.graph.mutation import MutationBatch
from repro.kickstarter.trees import NO_PARENT, DependencyTree, segmented_argmin
from repro.obs import trace
from repro.obs.registry import get_registry
from repro.runtime.exec import ExecutionBackend, resolve_backend
from repro.runtime.metrics import EngineMetrics, Timer

__all__ = ["KickStarterEngine"]


class KickStarterEngine:
    """Incremental monotonic path computation with dependency trees."""

    name = "KickStarter"

    def __init__(self, graph: CSRGraph, source: int = 0,
                 unit_weights: bool = False,
                 metrics: Optional[EngineMetrics] = None,
                 backend: Optional[ExecutionBackend] = None) -> None:
        """``unit_weights`` computes BFS hop counts instead of weighted
        shortest paths."""
        if not 0 <= source < graph.num_vertices:
            raise ValueError("source must be a vertex of the graph")
        self.source = source
        self.unit_weights = unit_weights
        self.metrics = metrics if metrics is not None else EngineMetrics()
        self.backend = resolve_backend(backend)
        self._streaming = StreamingGraph(graph)
        self.tree = DependencyTree(graph.num_vertices)
        self.batches_applied = 0
        with trace.span("initial_run", engine=self.name,
                        vertices=graph.num_vertices), \
                Timer(self.metrics, "initial_run"):
            self.tree.values[source] = 0.0
            self._propagate(graph, np.array([source], dtype=np.int64))

    # ------------------------------------------------------------------
    @property
    def graph(self) -> CSRGraph:
        return self._streaming.graph

    @property
    def values(self) -> np.ndarray:
        """Current shortest distances (inf for unreachable)."""
        return self.tree.values

    def _edge_lengths(self, weight: np.ndarray) -> np.ndarray:
        return np.ones_like(weight) if self.unit_weights else weight

    # ------------------------------------------------------------------
    # Relaxation
    # ------------------------------------------------------------------
    def _propagate(self, graph: CSRGraph, frontier: np.ndarray) -> None:
        """Push-relax from ``frontier`` until fixpoint, updating the
        dependency tree for every improved vertex."""
        values, parents = self.tree.values, self.tree.parents
        while frontier.size:
            src, dst, weight = self.backend.gather_out(graph, frontier,
                                                       self.metrics)
            if not src.size:
                break
            candidates = values[src] + self._edge_lengths(weight)
            better = candidates < values[dst]
            src, dst, candidates = src[better], dst[better], candidates[better]
            if not src.size:
                break
            # Several improvements may target one vertex: keep the best
            # (segmented argmin over destination-sorted candidates).
            order = np.argsort(dst, kind="stable")
            segments, winners = segmented_argmin(candidates[order], dst[order])
            win_src = src[order][winners]
            win_val = candidates[order][winners]
            improved = win_val < values[segments]
            segments = segments[improved]
            values[segments] = win_val[improved]
            parents[segments] = win_src[improved]
            frontier = segments

    # ------------------------------------------------------------------
    # Streaming updates
    # ------------------------------------------------------------------
    def apply_mutations(self, batch: MutationBatch) -> np.ndarray:
        """Apply one batch and restore exact values incrementally."""
        with trace.span("batch", engine=self.name,
                        index=self.batches_applied,
                        mutations=len(batch)):
            self.batches_applied += 1
            with trace.span("adjust_structure"), \
                    Timer(self.metrics, "adjust_structure"):
                mutation = self._streaming.apply_batch(batch)
            graph = mutation.new_graph
            self.tree.grow_to(graph.num_vertices)
            with trace.span("trim") as span, Timer(self.metrics, "trim"):
                trimmed = self._trim_deletions(graph, mutation)
                span.tag(trimmed=int(trimmed.size))
            get_registry().gauge("kickstarter.trimmed_vertices").set(
                int(trimmed.size)
            )
            with trace.span("propagate"), Timer(self.metrics, "propagate"):
                seeds = self._relax_additions(graph, mutation)
                frontier = np.union1d(trimmed, seeds)
                self._propagate(graph, frontier)
        return self.values

    def _trim_deletions(self, graph: CSRGraph,
                        mutation: MutationResult) -> np.ndarray:
        """Tag dependents of deleted dependency edges and trim them to
        safe approximations; returns the tagged set (re-propagation
        frontier)."""
        if not mutation.del_src.size:
            return np.empty(0, dtype=np.int64)
        values, parents = self.tree.values, self.tree.parents
        endangered = mutation.del_dst[
            parents[mutation.del_dst] == mutation.del_src
        ]
        if not endangered.size:
            return np.empty(0, dtype=np.int64)
        tagged = self.tree.subtree_of(graph, endangered)
        tagged_mask = np.zeros(graph.num_vertices, dtype=bool)
        tagged_mask[tagged] = True

        # Trimmed approximation: best offer from untagged in-neighbours
        # over the *mutated* structure.  Untagged values sit on intact
        # dependency paths, so the result is a valid upper bound.
        values[tagged] = np.inf
        parents[tagged] = NO_PARENT
        in_src, in_dst, in_weight = self.backend.gather_in(graph, tagged,
                                                           self.metrics)
        safe = ~tagged_mask[in_src]
        in_src, in_dst = in_src[safe], in_dst[safe]
        candidates = values[in_src] + self._edge_lengths(in_weight[safe])
        finite = np.isfinite(candidates)
        in_src, in_dst, candidates = (
            in_src[finite], in_dst[finite], candidates[finite],
        )
        if in_src.size:
            segments, winners = segmented_argmin(candidates, in_dst)
            values[segments] = candidates[winners]
            parents[segments] = in_src[winners]
        if self.source < graph.num_vertices:
            # The source is axiomatically safe even if tagged via a cycle.
            values[self.source] = 0.0
            parents[self.source] = NO_PARENT
        return tagged

    def _relax_additions(self, graph: CSRGraph,
                         mutation: MutationResult) -> np.ndarray:
        """Directly relax added edges; returns improved targets."""
        if not mutation.add_src.size:
            return np.empty(0, dtype=np.int64)
        values, parents = self.tree.values, self.tree.parents
        self.metrics.count_edges(mutation.add_src.size)
        candidates = values[mutation.add_src] + self._edge_lengths(
            mutation.add_weight
        )
        better = candidates < values[mutation.add_dst]
        src = mutation.add_src[better]
        dst = mutation.add_dst[better]
        candidates = candidates[better]
        if not src.size:
            return np.empty(0, dtype=np.int64)
        order = np.argsort(dst, kind="stable")
        segments, winners = segmented_argmin(candidates[order], dst[order])
        values[segments] = candidates[order][winners]
        parents[segments] = src[order][winners]
        return segments
