"""Value dependency trees.

KickStarter records, for every vertex, the in-neighbour whose
contribution currently determines its value -- the *dependency parent*.
The parents form a forest rooted at seed vertices (the SSSP source).
When an edge is deleted, only vertices whose value transitively depends
on it (the parent-subtree below the deletion target) can be unsafe;
everything else keeps its value, which is the source of KickStarter's
O(V) tracking advantage over per-iteration histories.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["DependencyTree", "segmented_argmin"]

NO_PARENT = -1


def segmented_argmin(values: np.ndarray,
                     segment_ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-segment argmin for segment-sorted data.

    ``segment_ids`` must be non-decreasing.  Returns ``(segments, idx)``
    where ``idx[i]`` is the global index of the minimum element of
    segment ``segments[i]`` (ties broken by position).
    """
    if values.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    order = np.lexsort((np.arange(values.size), values, segment_ids))
    seg_sorted = segment_ids[order]
    first = np.ones(order.size, dtype=bool)
    first[1:] = seg_sorted[1:] != seg_sorted[:-1]
    return seg_sorted[first], order[first]


class DependencyTree:
    """Parent pointers + values of a monotonic computation."""

    def __init__(self, num_vertices: int) -> None:
        self.values = np.full(num_vertices, np.inf, dtype=np.float64)
        self.parents = np.full(num_vertices, NO_PARENT, dtype=np.int64)

    @property
    def num_vertices(self) -> int:
        return int(self.values.size)

    def grow_to(self, num_vertices: int) -> None:
        if num_vertices <= self.num_vertices:
            return
        values = np.full(num_vertices, np.inf, dtype=np.float64)
        parents = np.full(num_vertices, NO_PARENT, dtype=np.int64)
        values[: self.num_vertices] = self.values
        parents[: self.num_vertices] = self.parents
        self.values, self.parents = values, parents

    # ------------------------------------------------------------------
    def children_of(self, graph: CSRGraph, vertices: np.ndarray) -> np.ndarray:
        """Dependency children of ``vertices``: out-neighbours whose
        parent pointer names the corresponding source."""
        if vertices.size == 0:
            return vertices
        src, dst, _ = graph.out_edges_of(vertices)
        return np.unique(dst[self.parents[dst] == src])

    def subtree_of(self, graph: CSRGraph, roots: np.ndarray) -> np.ndarray:
        """All vertices in the dependency subtrees rooted at ``roots``
        (inclusive), found by level-order traversal."""
        tagged = np.zeros(self.num_vertices, dtype=bool)
        frontier = np.unique(np.asarray(roots, dtype=np.int64))
        frontier = frontier[~tagged[frontier]]
        tagged[frontier] = True
        while frontier.size:
            children = self.children_of(graph, frontier)
            children = children[~tagged[children]]
            tagged[children] = True
            frontier = children
        return np.flatnonzero(tagged)

    def depths(self) -> np.ndarray:
        """Depth of each vertex in the dependency forest (testing aid);
        unreachable vertices get -1.  Raises on parent cycles."""
        depths = np.full(self.num_vertices, -1, dtype=np.int64)
        for vertex in range(self.num_vertices):
            if depths[vertex] >= 0 or np.isinf(self.values[vertex]):
                continue
            chain = []
            cursor = vertex
            while cursor != NO_PARENT and depths[cursor] < 0:
                chain.append(cursor)
                cursor = int(self.parents[cursor])
                if len(chain) > self.num_vertices:
                    raise RuntimeError("dependency parents form a cycle")
            base = 0 if cursor == NO_PARENT else depths[cursor] + 1
            for offset, node in enumerate(reversed(chain)):
                depths[node] = base + offset
        return depths
