"""GraphBolt reproduction: dependency-driven synchronous processing of
streaming graphs (Mariappan & Vora, EuroSys 2019).

Quickstart::

    from repro import GraphBoltEngine, MutationBatch, PageRank, rmat

    graph = rmat(scale=10, edge_factor=8, seed=1)
    engine = GraphBoltEngine(PageRank(), num_iterations=10)
    ranks = engine.run(graph)

    batch = MutationBatch.from_edges(additions=[(0, 5), (7, 3)])
    ranks = engine.apply_mutations(batch)   # incremental, BSP-exact

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced table and figure.
"""

from repro.algorithms import (
    Adsorption,
    BFS,
    BeliefPropagation,
    CoEM,
    CollaborativeFiltering,
    ConnectedComponents,
    IncrementalTriangleCounting,
    KatzCentrality,
    LabelPropagation,
    PageRank,
    PersonalizedPageRank,
    SSSP,
    SSWP,
    WeightedPageRank,
    triangle_counts,
)
from repro.core import (
    DependencyHistory,
    GraphBoltEngine,
    IncrementalAlgorithm,
    PruningPolicy,
)
from repro.core.aggregation import (
    Aggregation,
    LogProductAggregation,
    MaxAggregation,
    MinAggregation,
    ProductAggregation,
    SumAggregation,
)
from repro.graph import (
    CSRGraph,
    DynamicGraph,
    DynamicStreamingGraph,
    MutationBatch,
    MutationStream,
    SlidingWindowStream,
    StreamingGraph,
)
from repro.graph.generators import (
    bipartite_graph,
    erdos_renyi,
    paper_graph,
    preferential_attachment,
    rmat,
)
from repro.ligra import DeltaEngine, LigraEngine
from repro.obs import MetricsRegistry, Tracer, get_registry
from repro.runtime.metrics import EngineMetrics

__version__ = "1.0.0"

__all__ = [
    "Adsorption",
    "Aggregation",
    "BFS",
    "BeliefPropagation",
    "CSRGraph",
    "CoEM",
    "CollaborativeFiltering",
    "ConnectedComponents",
    "DeltaEngine",
    "DependencyHistory",
    "DynamicGraph",
    "DynamicStreamingGraph",
    "EngineMetrics",
    "GraphBoltEngine",
    "IncrementalAlgorithm",
    "IncrementalTriangleCounting",
    "KatzCentrality",
    "LabelPropagation",
    "LigraEngine",
    "LogProductAggregation",
    "MaxAggregation",
    "MetricsRegistry",
    "MinAggregation",
    "MutationBatch",
    "MutationStream",
    "PageRank",
    "PersonalizedPageRank",
    "ProductAggregation",
    "PruningPolicy",
    "SSSP",
    "SSWP",
    "SlidingWindowStream",
    "StreamingGraph",
    "SumAggregation",
    "Tracer",
    "WeightedPageRank",
    "bipartite_graph",
    "erdos_renyi",
    "get_registry",
    "paper_graph",
    "preferential_attachment",
    "rmat",
    "triangle_counts",
]
