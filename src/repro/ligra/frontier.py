"""Vertex subsets with sparse/dense duality.

Ligra represents the active frontier either as a sparse id array or as a
dense boolean mask, switching representation by frontier size so that
both tiny frontiers (sparse gathers) and huge ones (dense sweeps) are
cheap.  :class:`VertexSubset` reproduces that duality; the engines ask
:meth:`is_dense_preferred` with the current graph to pick push (sparse)
versus recompute-all (dense) execution, mirroring Ligra's push/pull
threshold of |out-edges(frontier)| > |E| / 20.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["VertexSubset"]

#: Ligra's classic threshold numerator/denominator for dense mode.
DENSE_THRESHOLD_FRACTION = 1.0 / 20.0


class VertexSubset:
    """A set of vertex ids over a fixed universe ``0..num_vertices-1``."""

    def __init__(self, num_vertices: int,
                 ids: Optional[np.ndarray] = None,
                 mask: Optional[np.ndarray] = None) -> None:
        if (ids is None) == (mask is None):
            raise ValueError("provide exactly one of ids or mask")
        self.num_vertices = int(num_vertices)
        self._ids = None if ids is None else np.unique(
            np.asarray(ids, dtype=np.int64)
        )
        self._mask = None if mask is None else np.asarray(mask, dtype=bool)
        if self._mask is not None and self._mask.size != num_vertices:
            raise ValueError("mask size must equal the vertex count")
        if self._ids is not None and self._ids.size:
            if self._ids[0] < 0 or self._ids[-1] >= num_vertices:
                raise ValueError("vertex ids out of range")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, num_vertices: int) -> "VertexSubset":
        return cls(num_vertices, ids=np.empty(0, dtype=np.int64))

    @classmethod
    def full(cls, num_vertices: int) -> "VertexSubset":
        return cls(num_vertices, mask=np.ones(num_vertices, dtype=bool))

    @classmethod
    def from_ids(cls, num_vertices: int, ids) -> "VertexSubset":
        return cls(num_vertices, ids=np.asarray(ids, dtype=np.int64))

    @classmethod
    def from_sorted_ids(cls, num_vertices: int, ids) -> "VertexSubset":
        """Trusted constructor: ``ids`` must already be sorted unique.

        Skips the O(n log n) normalisation -- the engines' frontiers are
        derived from sorted-unique touched sets, so re-sorting them every
        iteration is pure overhead.
        """
        subset = cls.__new__(cls)
        subset.num_vertices = int(num_vertices)
        subset._ids = np.asarray(ids, dtype=np.int64)
        subset._mask = None
        return subset

    @classmethod
    def from_mask(cls, mask) -> "VertexSubset":
        mask = np.asarray(mask, dtype=bool)
        return cls(mask.size, mask=mask)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def ids(self) -> np.ndarray:
        """Sorted unique member ids (materialises from a mask if needed)."""
        if self._ids is None:
            self._ids = np.flatnonzero(self._mask)
        return self._ids

    @property
    def mask(self) -> np.ndarray:
        if self._mask is None:
            self._mask = np.zeros(self.num_vertices, dtype=bool)
            self._mask[self._ids] = True
        return self._mask

    def __len__(self) -> int:
        if self._ids is not None:
            return int(self._ids.size)
        return int(self._mask.sum())

    def __bool__(self) -> bool:
        return len(self) > 0

    def __contains__(self, vertex: int) -> bool:
        return bool(self.mask[vertex])

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------
    def union(self, other: "VertexSubset") -> "VertexSubset":
        if self.num_vertices != other.num_vertices:
            raise ValueError("universe mismatch")
        return VertexSubset(
            self.num_vertices,
            ids=np.union1d(self.ids, other.ids),
        )

    def intersect(self, other: "VertexSubset") -> "VertexSubset":
        if self.num_vertices != other.num_vertices:
            raise ValueError("universe mismatch")
        return VertexSubset(
            self.num_vertices,
            ids=np.intersect1d(self.ids, other.ids),
        )

    def difference(self, other: "VertexSubset") -> "VertexSubset":
        if self.num_vertices != other.num_vertices:
            raise ValueError("universe mismatch")
        return VertexSubset(
            self.num_vertices,
            ids=np.setdiff1d(self.ids, other.ids),
        )

    # ------------------------------------------------------------------
    # Representation choice
    # ------------------------------------------------------------------
    def out_edge_count(self, graph: CSRGraph) -> int:
        ids = self.ids
        if not ids.size:
            return 0
        # Degree-based (not offset-difference) so slack-bearing dynamic
        # structures report true edge counts, not capacities.
        return int(graph.out_degrees()[ids].sum())

    def is_dense_preferred(self, graph: CSRGraph) -> bool:
        """Ligra's density heuristic: go dense when the frontier's
        out-edges exceed a fixed fraction of all edges."""
        if graph.num_edges == 0:
            return False
        return (
            self.out_edge_count(graph)
            > graph.num_edges * DENSE_THRESHOLD_FRACTION
        )

    def __repr__(self) -> str:
        return f"VertexSubset({len(self)}/{self.num_vertices})"
