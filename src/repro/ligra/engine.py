"""The Ligra baseline: full synchronous recomputation.

Every iteration aggregates contributions over *all* edges and re-applies
*all* vertices -- Algorithm 1 of the paper.  On graph mutation the engine
simply restarts from initial values on the new snapshot.  This is the
"Ligra" row of Table 5.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.model import IncrementalAlgorithm
from repro.graph.csr import CSRGraph
from repro.ligra.interface import edge_map_all
from repro.obs import trace
from repro.runtime.exec import ExecutionBackend, resolve_backend
from repro.runtime.metrics import EngineMetrics, Timer

__all__ = ["LigraEngine"]


class LigraEngine:
    """Full synchronous execution of an :class:`IncrementalAlgorithm`."""

    name = "Ligra"

    def __init__(self, algorithm: IncrementalAlgorithm,
                 metrics: Optional[EngineMetrics] = None,
                 backend: Optional[ExecutionBackend] = None) -> None:
        self.algorithm = algorithm
        self.metrics = metrics if metrics is not None else EngineMetrics()
        self.backend = resolve_backend(backend)

    def run(
        self,
        graph: CSRGraph,
        num_iterations: Optional[int] = None,
        until_convergence: bool = False,
        max_iterations: int = 1000,
    ) -> np.ndarray:
        """Run the algorithm from scratch and return final vertex values.

        ``until_convergence`` stops once no value moves beyond the
        algorithm's scheduling tolerance (capped at ``max_iterations``);
        otherwise exactly ``num_iterations`` synchronous iterations run.
        """
        algorithm = self.algorithm
        if num_iterations is None:
            num_iterations = algorithm.default_iterations
        limit = max_iterations if until_convergence else num_iterations
        all_vertices = np.arange(graph.num_vertices, dtype=np.int64)

        values = algorithm.initial_values(graph)
        with trace.span("compute", engine=self.name,
                        algorithm=algorithm.name), \
                Timer(self.metrics, "compute"):
            for index in range(limit):
                with trace.span("iteration", index=index + 1):
                    new_values = self._iterate(graph, values, all_vertices)
                self.metrics.iterations += 1
                converged = not algorithm.values_changed(values, new_values).any()
                values = new_values
                if until_convergence and converged:
                    break
        return values

    def _iterate(self, graph: CSRGraph, values: np.ndarray,
                 all_vertices: np.ndarray) -> np.ndarray:
        algorithm = self.algorithm
        aggregate = algorithm.identity_aggregate(graph.num_vertices)
        src, dst, weight = edge_map_all(graph, metrics=self.metrics,
                                        backend=self.backend)
        if src.size:
            contributions = algorithm.contributions(
                graph, values[src], src, dst, weight
            )
            self.backend.scatter(graph, algorithm.aggregation, aggregate,
                                 dst, contributions, self.metrics)
        self.backend.count_vertices(graph, graph.num_vertices,
                                    self.metrics)
        previous = values if algorithm.uses_previous_value else None
        return algorithm.apply(graph, aggregate, all_vertices, previous)
