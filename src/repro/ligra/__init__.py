"""Ligra-style synchronous graph processing substrate.

GraphBolt is built over Ligra's processing architecture (paper section 4):
a frontier abstraction (:class:`VertexSubset`) with sparse/dense duality,
``edge_map`` / ``vertex_map`` primitives, and two baseline engines:

- :class:`LigraEngine` -- full synchronous recomputation each iteration,
  restarted from scratch on every mutation (the paper's "Ligra" baseline);
- :class:`DeltaEngine` -- selective scheduling via delta propagation
  (PageRankDelta-style), restarted on mutation (the paper's "GB-Reset"
  baseline) and also the execution core GraphBolt itself uses for its
  initial run and hybrid forward phase.
"""

from repro.ligra.delta import DeltaEngine
from repro.ligra.engine import LigraEngine
from repro.ligra.frontier import VertexSubset

__all__ = ["DeltaEngine", "LigraEngine", "VertexSubset"]
