"""The GB-Reset engine: selective scheduling via delta propagation.

This is the paper's "GB-Reset" baseline (section 5.1): during processing
it propagates only *changes* in vertex values across aggregations
(PageRankDelta-style), but upon graph mutation it restarts computation
from scratch.  The same stepping core serves three masters:

- the GB-Reset baseline itself (``run`` + restart on mutation);
- GraphBolt's initial tracked run (the engine records each step's changed
  sets into a :class:`~repro.core.history.DependencyHistory`);
- GraphBolt's computation-aware hybrid phase, which continues delta
  execution past the pruning horizon from refined state.

Decomposable aggregations advance the rolling aggregate with fused
change-in-contribution updates (the paper's ``propagateDelta``) or, in
``retract_propagate`` mode, with an explicit retract pass followed by a
propagate pass (the paper's GraphBolt-RP variant used for complex
aggregations, Figure 8).  Non-decomposable aggregations (min/max) use the
pull-based re-evaluation strategy over incoming edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.model import IncrementalAlgorithm
from repro.graph.csr import CSRGraph
from repro.ligra.frontier import VertexSubset
from repro.ligra.interface import edge_map, edge_map_all, pull_edges
from repro.obs import trace
from repro.runtime.exec import ExecutionBackend, resolve_backend
from repro.runtime.metrics import EngineMetrics, Timer

__all__ = ["DeltaEngine", "DeltaState", "StepRecord"]


@dataclass
class DeltaState:
    """Rolling state of a delta execution after ``iteration`` iterations."""

    values: np.ndarray        # c_i, dense
    prev_values: np.ndarray   # c_{i-1}, dense
    aggregate: np.ndarray     # g_i, dense
    frontier: np.ndarray      # ids with |c_i - c_{i-1}| > tolerance
    iteration: int

    def copy(self) -> "DeltaState":
        return DeltaState(
            values=self.values.copy(),
            prev_values=self.prev_values.copy(),
            aggregate=self.aggregate.copy(),
            frontier=self.frontier.copy(),
            iteration=self.iteration,
        )

    def residual_l1(self) -> float:
        """L1 distance moved by the last iteration.

        For contractive fixpoint computations (PageRank and friends)
        this bounds how far the state is from the converged answer up to
        the contraction factor, so a deadline-truncated query can report
        it as a quality signal: residual 0 means the state was already
        at its fixpoint when the deadline fired.

        Non-finite movement is excluded: path-style algorithms hold
        unreached vertices at ``inf``, where ``inf - inf`` is not a
        distance moved, and a vertex transitioning from unreached to
        reached has no finite residual to report.
        """
        a, b = self.values, self.prev_values
        if a.shape != b.shape:
            # A mutation resized the graph mid-state; compare the
            # overlapping prefix (new vertices start at their initial
            # value and contribute no residual yet).
            n = min(a.shape[0], b.shape[0])
            a, b = a[:n], b[:n]
        with np.errstate(invalid="ignore"):
            diff = np.abs(a - b)
        return float(diff[np.isfinite(diff)].sum())


@dataclass
class StepRecord:
    """Exact change sets of one step (consumed by dependency tracking)."""

    g_idx: np.ndarray
    g_values: np.ndarray
    c_idx: np.ndarray
    c_values: np.ndarray


class DeltaEngine:
    """Selective-scheduling synchronous execution (GB-Reset)."""

    name = "GB-Reset"

    def __init__(
        self,
        algorithm: IncrementalAlgorithm,
        metrics: Optional[EngineMetrics] = None,
        mode: str = "delta",
        backend: Optional[ExecutionBackend] = None,
    ) -> None:
        if mode not in ("delta", "retract_propagate"):
            raise ValueError("mode must be 'delta' or 'retract_propagate'")
        self.algorithm = algorithm
        self.metrics = metrics if metrics is not None else EngineMetrics()
        self.mode = mode
        self.backend = resolve_backend(backend)

    # ------------------------------------------------------------------
    # State construction
    # ------------------------------------------------------------------
    def initial_state(self, graph: CSRGraph) -> DeltaState:
        values = self.algorithm.initial_values(graph)
        return DeltaState(
            values=values,
            prev_values=values.copy(),
            aggregate=self.algorithm.identity_aggregate(graph.num_vertices),
            frontier=np.empty(0, dtype=np.int64),
            iteration=0,
        )

    # ------------------------------------------------------------------
    # One synchronous iteration
    # ------------------------------------------------------------------
    def step(self, graph: CSRGraph, state: DeltaState,
             record_changes: bool = False) -> Optional[StepRecord]:
        """Advance ``state`` by one iteration in place.

        Iteration 0 -> 1 aggregates over all edges; later iterations
        propagate only from the frontier (or fall back to a dense sweep
        when the frontier is large, Ligra's density heuristic).  When
        ``record_changes`` is set, returns the exact per-iteration change
        sets for dependency tracking.
        """
        algorithm = self.algorithm
        if state.iteration == 0:
            touched, g_old_at_touched = self._first_aggregate(graph, state)
        elif algorithm.aggregation.decomposable:
            touched, g_old_at_touched = self._delta_aggregate(graph, state)
        else:
            touched, g_old_at_touched = self._pull_aggregate(graph, state)

        record = self._apply_and_advance(
            graph, state, touched, g_old_at_touched, record_changes
        )
        state.iteration += 1
        self.metrics.iterations += 1
        return record

    def _first_aggregate(self, graph, state):
        """Full aggregation for the first iteration."""
        algorithm = self.algorithm
        new_aggregate = algorithm.identity_aggregate(graph.num_vertices)
        src, dst, weight = edge_map_all(graph, metrics=self.metrics,
                                        backend=self.backend)
        if src.size:
            contributions = algorithm.contributions(
                graph, state.values[src], src, dst, weight
            )
            expected = (src.size, *algorithm.aggregation_shape)
            if contributions.shape != expected:
                # Catch malformed user algorithms at the first iteration
                # with a readable message instead of a scatter error.
                raise ValueError(
                    f"{algorithm.name}.contributions returned shape "
                    f"{contributions.shape}, expected {expected} "
                    f"(edges selected x aggregation_shape)"
                )
            self.backend.scatter(graph, algorithm.aggregation,
                                 new_aggregate, dst, contributions,
                                 self.metrics)
        touched = np.arange(graph.num_vertices, dtype=np.int64)
        g_old_at_touched = state.aggregate
        state.aggregate = new_aggregate
        return touched, g_old_at_touched[touched]

    def _delta_aggregate(self, graph, state):
        """Sparse or dense advance for decomposable aggregations."""
        algorithm = self.algorithm
        frontier = VertexSubset.from_sorted_ids(graph.num_vertices,
                                                state.frontier)
        if frontier.is_dense_preferred(graph):
            old_aggregate = state.aggregate
            new_aggregate = algorithm.identity_aggregate(graph.num_vertices)
            src, dst, weight = edge_map_all(graph, metrics=self.metrics,
                                            backend=self.backend)
            if src.size:
                contributions = algorithm.contributions(
                    graph, state.values[src], src, dst, weight
                )
                self.backend.scatter(graph, algorithm.aggregation,
                                     new_aggregate, dst, contributions,
                                     self.metrics)
            touched = np.arange(graph.num_vertices, dtype=np.int64)
            state.aggregate = new_aggregate
            return touched, old_aggregate[touched]

        src, dst, weight = edge_map(graph, frontier, metrics=self.metrics,
                                    backend=self.backend)
        touched = np.unique(dst)
        g_old_at_touched = state.aggregate[touched].copy()
        if src.size:
            old_contribs = algorithm.contributions(
                graph, state.prev_values[src], src, dst, weight
            )
            new_contribs = algorithm.contributions(
                graph, state.values[src], src, dst, weight
            )
            if self.mode == "delta":
                self.backend.scatter_delta(
                    graph, algorithm.aggregation, state.aggregate, dst,
                    new_contribs, old_contribs, self.metrics,
                )
            else:
                self.backend.scatter_retract(
                    graph, algorithm.aggregation, state.aggregate, dst,
                    old_contribs, self.metrics,
                )
                self.metrics.count_edges(src.size)
                self.backend.scatter(graph, algorithm.aggregation,
                                     state.aggregate, dst, new_contribs,
                                     self.metrics)
        return touched, g_old_at_touched

    def _pull_aggregate(self, graph, state):
        """Re-evaluation for non-decomposable aggregations (min/max)."""
        algorithm = self.algorithm
        frontier = VertexSubset.from_sorted_ids(graph.num_vertices,
                                                state.frontier)
        if frontier.is_dense_preferred(graph):
            targets = np.arange(graph.num_vertices, dtype=np.int64)
        else:
            _, dst, _ = edge_map(graph, frontier, metrics=self.metrics,
                                 backend=self.backend)
            targets = np.unique(dst)
        g_old_at_targets = state.aggregate[targets].copy()
        self._reevaluate(graph, state.values, state.aggregate, targets)
        return targets, g_old_at_targets

    def _reevaluate(self, graph, source_values, aggregate, targets) -> None:
        """Recompute ``aggregate[targets]`` by pulling all in-edges."""
        algorithm = self.algorithm
        aggregate[targets] = algorithm.aggregation.identity_value()
        in_src, in_dst, in_weight = pull_edges(graph, targets,
                                               metrics=self.metrics,
                                               backend=self.backend)
        if in_src.size:
            contributions = algorithm.contributions(
                graph, source_values[in_src], in_src, in_dst, in_weight
            )
            self.backend.scatter(graph, algorithm.aggregation, aggregate,
                                 in_dst, contributions, self.metrics)

    def _apply_and_advance(self, graph, state, touched, g_old_at_touched,
                           record_changes):
        algorithm = self.algorithm
        if algorithm.uses_previous_value and state.frontier.size:
            extended = np.union1d(touched, state.frontier)
            if extended.size != touched.size:
                # Recompute the old-g slice for the extended touched set.
                mask = np.isin(extended, touched)
                g_old = np.empty(
                    (extended.size, *g_old_at_touched.shape[1:]),
                    dtype=np.float64,
                )
                g_old[mask] = g_old_at_touched
                g_old[~mask] = state.aggregate[extended[~mask]]
                touched, g_old_at_touched = extended, g_old

        self.backend.count_vertices(graph, touched, self.metrics)
        previous = (
            state.values[touched] if algorithm.uses_previous_value else None
        )
        applied = algorithm.apply(
            graph, state.aggregate[touched], touched, previous
        )

        old_values_at_touched = state.values[touched]
        changed_mask = algorithm.values_changed(old_values_at_touched, applied)

        record = None
        if record_changes:
            g_changed = _exact_changed(g_old_at_touched,
                                       state.aggregate[touched])
            c_changed = _exact_changed(old_values_at_touched, applied)
            record = StepRecord(
                g_idx=touched[g_changed],
                g_values=state.aggregate[touched][g_changed],
                c_idx=touched[c_changed],
                c_values=applied[c_changed],
            )

        new_values = state.values.copy()
        new_values[touched] = applied
        state.prev_values = state.values
        state.values = new_values
        state.frontier = touched[changed_mask]
        return record

    # ------------------------------------------------------------------
    # Whole runs
    # ------------------------------------------------------------------
    def run(
        self,
        graph: CSRGraph,
        num_iterations: Optional[int] = None,
        until_convergence: bool = False,
        max_iterations: int = 1000,
    ) -> np.ndarray:
        """Run from scratch; returns final vertex values.

        In fixed-iteration mode the loop still exits early at a fixpoint
        (an empty frontier), because further synchronous iterations are
        provably identity -- this is exactly the redundant computation
        selective scheduling exists to skip.
        """
        if num_iterations is None:
            num_iterations = self.algorithm.default_iterations
        limit = max_iterations if until_convergence else num_iterations
        state = self.initial_state(graph)
        with trace.span("compute", engine=self.name,
                        algorithm=self.algorithm.name), \
                Timer(self.metrics, "compute"):
            for _ in range(limit):
                with trace.span("iteration", index=state.iteration + 1,
                                frontier=int(state.frontier.size)):
                    self.step(graph, state)
                if state.iteration > 1 and state.frontier.size == 0:
                    break
        return state.values


def _exact_changed(old: np.ndarray, new: np.ndarray) -> np.ndarray:
    """Exact per-row inequality (tracking must be drift-free)."""
    diff = old != new
    while diff.ndim > 1:
        diff = diff.any(axis=-1)
    return diff
