"""The graph-parallel primitives: ``edge_map`` and ``vertex_map``.

These are the vectorised counterparts of Ligra's interface (paper
section 4.2: "GraphBolt builds over the graph parallel interface to
provide edgeMap and vertexMap functions").  ``edge_map`` gathers the
out-edges of a frontier and feeds them to a kernel; ``vertex_map``
applies a kernel over a vertex subset and returns the ids the kernel
flagged.

Every primitive dispatches through an execution backend
(:mod:`repro.runtime.exec`): the default :class:`SerialBackend` gathers
monolithically exactly as before, while :class:`ShardedBackend` runs the
gather shard by shard over a degree-balanced vertex partition and
records measured per-shard loads -- with bit-for-bit identical results.
Edge-computation metrics are counted inside the backend, the single
gather path all engines share.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.ligra.frontier import VertexSubset
from repro.runtime.exec import ExecutionBackend, resolve_backend
from repro.runtime.metrics import EngineMetrics

__all__ = ["edge_map", "edge_map_all", "vertex_map", "pull_edges"]

EdgeKernel = Callable[[np.ndarray, np.ndarray, np.ndarray], None]


def edge_map(
    graph: CSRGraph,
    frontier: VertexSubset,
    kernel: Optional[EdgeKernel] = None,
    metrics: Optional[EngineMetrics] = None,
    backend: Optional[ExecutionBackend] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gather the frontier's out-edges and optionally run a kernel.

    Returns the gathered ``(src, dst, weight)`` arrays so callers that
    need the raw edges (all our engines) avoid a second gather.
    """
    backend = resolve_backend(backend)
    src, dst, weight = backend.gather_out(graph, frontier.ids, metrics)
    if kernel is not None:
        kernel(src, dst, weight)
    return src, dst, weight


def edge_map_all(
    graph: CSRGraph,
    kernel: Optional[EdgeKernel] = None,
    metrics: Optional[EngineMetrics] = None,
    backend: Optional[ExecutionBackend] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dense-mode edge map: process every edge in the graph."""
    backend = resolve_backend(backend)
    src, dst, weight = backend.gather_all(graph, metrics)
    if kernel is not None:
        kernel(src, dst, weight)
    return src, dst, weight


def pull_edges(
    graph: CSRGraph,
    targets: np.ndarray,
    metrics: Optional[EngineMetrics] = None,
    backend: Optional[ExecutionBackend] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gather the in-edges of ``targets`` (pull direction).

    Used by the re-evaluation strategy for non-decomposable aggregations,
    which reconstructs each target's full input set from its incoming
    neighbours (paper sections 3.3 and 4.2).
    """
    backend = resolve_backend(backend)
    return backend.gather_in(
        graph, np.asarray(targets, dtype=np.int64), metrics
    )


def vertex_map(
    frontier: VertexSubset,
    kernel: Callable[[np.ndarray], np.ndarray],
    metrics: Optional[EngineMetrics] = None,
    graph: Optional[CSRGraph] = None,
    backend: Optional[ExecutionBackend] = None,
) -> VertexSubset:
    """Apply ``kernel`` to the frontier's ids; kernel returns a keep-mask.

    Mirrors Ligra's vertexMap returning the subset of vertices for which
    the kernel returned true.  Pass ``graph`` to attribute the vertex
    work to owning shards; without it the count stays aggregate-only.
    """
    ids = frontier.ids
    if metrics is not None:
        if graph is not None:
            resolve_backend(backend).count_vertices(graph, ids, metrics)
        else:
            metrics.count_vertices(ids.size)
    keep = kernel(ids)
    keep = np.asarray(keep, dtype=bool)
    if keep.shape != ids.shape:
        raise ValueError("vertex kernel must return one flag per vertex")
    return VertexSubset.from_ids(frontier.num_vertices, ids[keep])
