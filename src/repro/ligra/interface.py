"""The graph-parallel primitives: ``edge_map`` and ``vertex_map``.

These are the vectorised counterparts of Ligra's interface (paper
section 4.2: "GraphBolt builds over the graph parallel interface to
provide edgeMap and vertexMap functions").  ``edge_map`` gathers the
out-edges of a frontier and feeds them to a kernel; ``vertex_map``
applies a kernel over a vertex subset and returns the ids the kernel
flagged.  Edge-computation metrics are counted here, at the single
gather site all engines share.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.ligra.frontier import VertexSubset
from repro.runtime.metrics import EngineMetrics

__all__ = ["edge_map", "edge_map_all", "vertex_map", "pull_edges"]

EdgeKernel = Callable[[np.ndarray, np.ndarray, np.ndarray], None]


def edge_map(
    graph: CSRGraph,
    frontier: VertexSubset,
    kernel: Optional[EdgeKernel] = None,
    metrics: Optional[EngineMetrics] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gather the frontier's out-edges and optionally run a kernel.

    Returns the gathered ``(src, dst, weight)`` arrays so callers that
    need the raw edges (all our engines) avoid a second gather.
    """
    src, dst, weight = graph.out_edges_of(frontier.ids)
    if metrics is not None:
        metrics.count_edges(src.size)
    if kernel is not None:
        kernel(src, dst, weight)
    return src, dst, weight


def edge_map_all(
    graph: CSRGraph,
    kernel: Optional[EdgeKernel] = None,
    metrics: Optional[EngineMetrics] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dense-mode edge map: process every edge in the graph."""
    src, dst, weight = graph.all_edges()
    if metrics is not None:
        metrics.count_edges(src.size)
    if kernel is not None:
        kernel(src, dst, weight)
    return src, dst, weight


def pull_edges(
    graph: CSRGraph,
    targets: np.ndarray,
    metrics: Optional[EngineMetrics] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gather the in-edges of ``targets`` (pull direction).

    Used by the re-evaluation strategy for non-decomposable aggregations,
    which reconstructs each target's full input set from its incoming
    neighbours (paper sections 3.3 and 4.2).
    """
    src, dst, weight = graph.in_edges_of(np.asarray(targets, dtype=np.int64))
    if metrics is not None:
        metrics.count_edges(src.size)
    return src, dst, weight


def vertex_map(
    frontier: VertexSubset,
    kernel: Callable[[np.ndarray], np.ndarray],
    metrics: Optional[EngineMetrics] = None,
) -> VertexSubset:
    """Apply ``kernel`` to the frontier's ids; kernel returns a keep-mask.

    Mirrors Ligra's vertexMap returning the subset of vertices for which
    the kernel returned true.
    """
    ids = frontier.ids
    if metrics is not None:
        metrics.count_vertices(ids.size)
    keep = kernel(ids)
    keep = np.asarray(keep, dtype=bool)
    if keep.shape != ids.shape:
        raise ValueError("vertex kernel must return one flag per vertex")
    return VertexSubset.from_ids(frontier.num_vertices, ids[keep])
