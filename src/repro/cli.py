"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``   print statistics for a graph spec.
``run``    stream mutation batches through an engine and report
           per-batch latency/work (optionally validating every batch
           against from-scratch execution).  ``--json`` emits the
           records as JSON lines; ``--trace-out`` journals the full
           span tree (see ``docs/observability.md``).
``trace``  replay a workload under the tracer and render a per-batch
           phase-time breakdown.
``bench``  alias for ``python -m repro.bench`` (paper experiments).
``experiment``  declarative experiment matrix: expand a YAML run table
           (topology x scale x engine x backend x scenario x admission
           x fault plan) into deterministic runs, emit the
           schema-versioned ``BENCH_<area>.json`` payload plus a
           paper-style table, and gate it against the committed
           baseline (``--gate report|enforce|off``; see
           ``docs/testing.md`` "Experiment matrix").
``fuzz``   differential fuzzing: drive seeded adversarial workloads
           through every engine and cross-check per-batch
           BSP-equivalence (see ``docs/testing.md``).  ``--trace-out``
           attaches span dumps of shrunk failures to a JSONL journal.
           ``--crash`` switches to the crash-recovery fuzzer: kill a
           durable server at a seeded failpoint, recover from
           checkpoint + WAL, and assert bit-for-bit equivalence (see
           ``docs/operations.md``).  ``--crash --replicated`` sweeps
           the replication scenarios (writer-kill, replica-kill,
           segment-drop, stale-writer-fence) and asserts every replica
           converges bit-for-bit with fenced segments in the ledger.
           ``--crash --chaos`` wraps every replication link in a
           seeded lossy transport (drop, duplicate, corrupt, reorder,
           delay -- all five at ``--chaos-rate``) and asserts
           bit-for-bit convergence across ``--chaos-seeds`` seeds plus
           dead-letter (never hang) behaviour on a black-hole link.
``serve``  run a durable streaming deployment: ingest seeded batches
           with a write-ahead log and periodic atomic checkpoints
           (``--wal DIR --checkpoint-every N``).  ``--admission`` adds
           the overload-resilience layer (bounded queue, pressure
           policies, circuit breaker); ``--status`` prints the health
           snapshot and ``--health-journal`` appends one per batch;
           ``--poison-every`` + ``--query-every`` form the
           overload-soak used in CI (exit 1 on unserved queries or a
           blown restore budget).  ``--slo FILE`` evaluates burn-rate
           alerts per applied batch, ``--wide-events PATH`` journals
           one wide event per batch/query, ``--plant-latency K:S``
           plants a deterministic latency fault, and
           ``--metrics-out`` / ``--serve-metrics PORT`` export the
           registry in Prometheus text format.  ``--replicas N`` ships
           sealed WAL segments + checkpoints to N read replicas
           (``--replica-transport``, ``--kill-replica I:AT[:RESTART]``
           for the replication-soak; exit 1 if a live replica never
           converges).
``dash``   render the operational dashboard from a serve journal:
           SLO status and burn rates, breaker/queue state, alert
           history, sparkline latency trends, and the seq gap check.
           ``--once`` prints a single frame (``--expect-alert`` /
           ``--expect-resolved`` / ``--expect-clean`` turn it into a
           CI assertion); without it the frame re-renders on
           ``--interval``.
``slo-lint``  validate SLO YAML files (default: every file under
           ``benchmarks/slos/``); exit 1 on any invalid file.
``recover`` restore a crashed ``serve`` deployment from its state
           directory (newest loadable checkpoint + WAL-tail replay);
           ``--verify`` re-runs the schedule from scratch and checks
           the recovered values bit-for-bit.
``replication-status`` inspect a replicated state directory tree
           offline: writer/replica WAL positions, cluster epoch, fence
           ledgers, dead-letter count, scrub verdicts -- usable while
           nothing is serving.
``scrub``  re-verify every CRC in a state directory (WAL records,
           checkpoint payloads, snapshot-store segments) and report
           bit-rot; ``--repair`` heals what can be healed standalone
           (bit-for-bit direction rebuild, covered-WAL GC, checkpoint
           sidelining) and exits 1 if damage remains.

Graph specs
-----------
``rmat:<scale>[:edge_factor]``, ``ws:<vertices>[:neighbors]``,
``er:<vertices>:<edges>``, ``paper:<WK|UK|TW|TT|FT|YH>``, or
``file:<path>`` (edge-list text or ``.npz``).
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.algorithms import (
    Adsorption,
    BFS,
    BeliefPropagation,
    CoEM,
    CollaborativeFiltering,
    ConnectedComponents,
    KatzCentrality,
    LabelPropagation,
    PageRank,
    PersonalizedPageRank,
    SSSP,
    SSWP,
    WeightedPageRank,
)
from repro.bench.harness import DeltaRunner, GraphBoltRunner, LigraRunner
from repro.bench.reporting import format_table
from repro.bench.workloads import uniform_batch
from repro.graph import generators, io
from repro.graph.csr import CSRGraph
from repro.graph.properties import graph_stats
from repro.ligra.engine import LigraEngine
from repro.obs import JsonlJournal, Tracer, format_trace, trace

__all__ = ["main"]

ALGORITHMS: Dict[str, Callable] = {
    "pagerank": lambda: PageRank(tolerance=1e-9),
    "weighted-pagerank": lambda: WeightedPageRank(tolerance=1e-9),
    "personalized-pagerank": lambda: PersonalizedPageRank(tolerance=1e-9),
    "katz": lambda: KatzCentrality(tolerance=1e-9),
    "label-propagation": lambda: LabelPropagation(tolerance=1e-9),
    "adsorption": lambda: Adsorption(tolerance=1e-9),
    "coem": lambda: CoEM(tolerance=1e-9),
    "belief-propagation": lambda: BeliefPropagation(tolerance=1e-9),
    "collaborative-filtering": lambda: CollaborativeFiltering(
        tolerance=1e-9
    ),
    "sssp": lambda: SSSP(source=0),
    "sswp": lambda: SSWP(source=0),
    "bfs": lambda: BFS(source=0),
    "connected-components": lambda: ConnectedComponents(),
}

ENGINES = {
    "graphbolt": GraphBoltRunner,
    "gbreset": DeltaRunner,
    "ligra": LigraRunner,
}


def parse_graph(spec: str, weighted: bool = True) -> CSRGraph:
    """Build a graph from a command-line spec (see module docstring)."""
    kind, _, rest = spec.partition(":")
    parts = rest.split(":") if rest else []
    if kind == "rmat":
        scale = int(parts[0]) if parts else 10
        edge_factor = int(parts[1]) if len(parts) > 1 else 8
        return generators.rmat(scale, edge_factor, seed=1,
                               weighted=weighted)
    if kind == "ws":
        vertices = int(parts[0]) if parts else 1000
        neighbors = int(parts[1]) if len(parts) > 1 else 4
        return generators.watts_strogatz(vertices, neighbors, seed=1,
                                         weighted=weighted)
    if kind == "er":
        if len(parts) < 2:
            raise ValueError("er spec needs er:<vertices>:<edges>")
        return generators.erdos_renyi(int(parts[0]), int(parts[1]),
                                      seed=1, weighted=weighted)
    if kind == "paper":
        if not parts:
            raise ValueError("paper spec needs paper:<name>")
        return generators.paper_graph(parts[0], weighted=weighted)
    if kind == "file":
        if not parts:
            raise ValueError("file spec needs file:<path>")
        path = ":".join(parts)
        if path.endswith(".npz"):
            return io.load_npz(path)
        return io.load_edge_list(path)
    raise ValueError(f"unknown graph spec {spec!r}")


def _cmd_info(args) -> int:
    graph = parse_graph(args.graph)
    stats = graph_stats(graph)
    rows = [[key, value] for key, value in stats.as_dict().items()]
    print(format_table(["property", "value"], rows,
                       title=f"graph {args.graph}"))
    return 0


def _spec_of(args) -> str:
    """Graph spec from the positional argument or ``--graph``."""
    return args.graph_spec if args.graph_spec else args.graph


def _select_store(args, default_root=None):
    """The snapshot store the command asked for (flag, else env)."""
    from repro.graph import storage

    spec = getattr(args, "snapshot_store", None)
    if spec is not None:
        return storage.store_from_spec(spec, default_root=default_root)
    return storage.store_from_env(default_root=default_root)


def _replay(runner, args):
    """Drive the batch schedule; yields per-batch measurements."""
    for index in range(args.batches):
        batch = uniform_batch(runner.graph, args.batch_size,
                              seed=args.seed + index)
        before = runner.metrics.snapshot()
        start = time.perf_counter()
        values = runner.apply(batch)
        elapsed = time.perf_counter() - start
        delta = runner.metrics.delta_since(before)
        yield index, batch, values, elapsed, delta


def _cmd_run(args) -> int:
    spec = _spec_of(args)
    store = _select_store(args)
    graph = store.publish(parse_graph(spec))
    factory = ALGORITHMS[args.algorithm]
    runner = ENGINES[args.engine](factory, args.iterations)

    with contextlib.ExitStack() as stack:
        journal: Optional[JsonlJournal] = None
        if args.trace_out:
            journal = stack.enter_context(JsonlJournal.open(args.trace_out))
            stack.enter_context(trace.activated(Tracer(sink=journal)))
        stdout_journal = JsonlJournal(sys.stdout) if args.json else None

        start = time.perf_counter()
        runner.setup(graph)
        setup_seconds = time.perf_counter() - start
        header = {
            "type": "run", "engine": args.engine,
            "algorithm": args.algorithm, "graph": spec,
            "vertices": graph.num_vertices, "edges": graph.num_edges,
            "iterations": args.iterations, "seed": args.seed,
            "store": store.describe(),
            "setup_seconds": round(setup_seconds, 6),
        }
        if journal is not None:
            journal.write(header)
        if stdout_journal is not None:
            stdout_journal.write(header)
        else:
            print(f"{args.engine} / {args.algorithm} on {spec} "
                  f"(V={graph.num_vertices}, E={graph.num_edges}); "
                  f"initial run {setup_seconds:.3f}s")

        rows: List[List] = []
        values = None
        for index, batch, values, elapsed, delta in _replay(runner, args):
            record = {
                "type": "batch", "index": index, "mutations": len(batch),
                "seconds": round(elapsed, 6),
                "edge_computations": delta.edge_computations,
                "vertex_computations": delta.vertex_computations,
                "phase_seconds": {
                    phase: round(seconds, 6)
                    for phase, seconds in delta.phase_seconds.items()
                },
            }
            if args.validate:
                truth = LigraEngine(factory()).run(runner.graph,
                                                   args.iterations)
                filled_actual = np.where(np.isinf(values), -1.0, values)
                filled_truth = np.where(np.isinf(truth), -1.0, truth)
                record["max_error"] = float(
                    np.abs(filled_actual - filled_truth).max()
                )
            if journal is not None:
                journal.write(record)
            if stdout_journal is not None:
                stdout_journal.write(record)
            else:
                row = [index, len(batch), round(elapsed, 4),
                       delta.edge_computations]
                if args.validate:
                    row.append(f"{record['max_error']:.1e}")
                rows.append(row)

        if stdout_journal is None:
            headers = ["batch", "mutations", "seconds",
                       "edge_computations"]
            if args.validate:
                headers.append("max_error")
            print(format_table(headers, rows))
        if args.output:
            np.savez_compressed(args.output, values=values)
            if stdout_journal is None:
                print(f"final values -> {args.output}")
    return 0


def _cmd_trace(args) -> int:
    spec = _spec_of(args)
    graph = parse_graph(spec)
    factory = ALGORITHMS[args.algorithm]
    runner = ENGINES[args.engine](factory, args.iterations)

    with contextlib.ExitStack() as stack:
        sink = None
        if args.trace_out:
            sink = stack.enter_context(JsonlJournal.open(args.trace_out))
        tracer = Tracer(sink=sink)
        stack.enter_context(trace.activated(tracer))
        runner.setup(graph)
        for _ in _replay(runner, args):
            pass
    print(format_trace(
        tracer.events(),
        title=(f"{args.engine} / {args.algorithm} on {spec} "
               f"({args.batches} batches of {args.batch_size})"),
    ))
    if tracer.dropped:
        print(f"WARNING: span ring buffer overflowed; the oldest "
              f"{tracer.dropped} span(s) are missing from the "
              f"breakdown above"
              + (" (the --trace-out journal has every span)"
                 if args.trace_out else
                 " -- add --trace-out to keep the full stream"))
    if args.trace_out:
        print(f"span journal -> {args.trace_out}")
    return 0


def _cmd_bench(args) -> int:
    from repro.bench.__main__ import main as bench_main

    return bench_main(["repro.bench"] + args.experiments)


def _cmd_experiment(args) -> int:
    import json as _json
    import os

    from repro.bench import gate as gate_mod
    from repro.bench import matrix as matrix_mod
    from repro.bench.reporting import results_dir
    from repro.graph.storage import ENV_SNAPSHOT_STORE

    if args.snapshot_store:
        os.environ[ENV_SNAPSHOT_STORE] = args.snapshot_store
    if args.list:
        for name in sorted(os.listdir(matrix_mod.matrices_dir())):
            if name.endswith(".yaml"):
                print(name[:-len(".yaml")])
        return 0
    if not args.matrix:
        print("experiment needs --matrix PATH (or --list)")
        return 2
    table = matrix_mod.load_table(args.matrix)
    if table.driver is not None:
        payload = matrix_mod.run_driver(args.matrix)
        from repro.bench.experiments import render_table
        print(render_table(payload))
        path = os.path.join(results_dir(),
                            matrix_mod.payload_filename(table.area))
        with open(path, "w") as handle:
            _json.dump(payload, handle, indent=2, sort_keys=True,
                       default=str)
        print(f"[driver payload -> {path}]")
        return 0
    payload = matrix_mod.run_matrix(
        table, progress=lambda run_id: print(f"  run {run_id}"))
    matrix_mod.validate_payload(payload)
    print(format_table(payload["headers"], payload["rows"],
                       title=payload["title"]))
    out_dir = args.out_dir or results_dir()
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir,
                        matrix_mod.payload_filename(payload["area"]))
    with open(path, "w") as handle:
        _json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[payload -> {path}]")
    if args.update_baseline:
        baseline_path = gate_mod.save_baseline(
            payload, args.baseline_dir)
        print(f"[baseline refreshed -> {baseline_path}]")
        return 0
    thresholds = None
    if args.threshold is not None:
        thresholds = gate_mod.GateThresholds(work=args.threshold,
                                             time=args.threshold)
    report = gate_mod.run_gate(payload, mode=args.gate,
                               thresholds=thresholds,
                               baseline_directory=args.baseline_dir)
    if report is None:
        if args.gate != "off":
            print(f"[no baseline for area {payload['area']!r}; "
                  f"run with --update-baseline to start the "
                  f"trajectory]")
        return 0
    print(report.format())
    return 0 if report.ok else 1


def _cmd_serve(args) -> int:
    import os

    from repro.obs.events import WideEventEmitter
    from repro.obs.export import MetricsHTTPServer, write_metrics
    from repro.obs.slo import RecordingSink, SLOEvaluator, load_slo_file
    from repro.recovery import RecoveryManager
    from repro.serving.observe import PlantedLatency, ServingObserver
    from repro.serving.resilience import (
        BreakerConfig,
        ResilientAnalyticsServer,
    )
    from repro.serving.server import StreamingAnalyticsServer
    from repro.testing import faults

    resilient_mode = (
        args.admission is not None or args.query_every
        or args.poison_every or args.health_journal or args.status
        or args.slo or args.wide_events or args.plant_latency
        or args.replicas
    )
    if args.poison_every and not args.wal:
        print("--poison-every needs --wal: poison batches are "
              "quarantined through the recovery path")
        return 2
    if args.replicas and not args.wal:
        print("--replicas needs --wal: replicas replay the writer's "
              "shipped WAL segments and checkpoints")
        return 2
    if args.kill_replica and not args.replicas:
        print("--kill-replica needs --replicas")
        return 2
    kill_plan = None
    if args.kill_replica:
        parts = args.kill_replica.split(":")
        if len(parts) not in (2, 3):
            print("--kill-replica must be I:AT or I:AT:RESTART "
                  "(replica index, kill batch, restart batch)")
            return 2
        kill_plan = (f"r{int(parts[0])}", int(parts[1]),
                     int(parts[2]) if len(parts) == 3 else None)

    spec = _spec_of(args)
    # An mmap store without an explicit directory spools next to the
    # WAL, so checkpoints' manifest references survive restarts.
    store = _select_store(
        args,
        default_root=os.path.join(args.wal, "store") if args.wal
        else None,
    )
    graph = store.publish(parse_graph(spec))
    recovery = None
    if args.wal:
        recovery = RecoveryManager(
            args.wal, checkpoint_every=args.checkpoint_every,
            retain=args.retain,
        )
        recovery.write_manifest({
            "algorithm": args.algorithm,
            "graph": spec,
            "approx_iterations": args.iterations,
            "batch_size": args.batch_size,
            "seed": args.seed,
        })
    server = StreamingAnalyticsServer(
        ALGORITHMS[args.algorithm], graph,
        approx_iterations=args.iterations, recovery=recovery,
    )
    resilient = None
    if resilient_mode:
        config = BreakerConfig(
            quarantine_threshold=args.breaker_quarantine_threshold,
            cooldown_submits=args.breaker_cooldown,
            enabled=not args.no_breaker,
        )
        resilient = ResilientAnalyticsServer(
            server,
            queue_capacity=args.queue_capacity,
            admission=args.admission or "block",
            breaker=config,
        )
    cluster = None
    if args.replicas:
        from repro.serving.replication import ReplicationCluster

        cluster = ReplicationCluster(
            resilient, ALGORITHMS[args.algorithm], args.wal,
            replicas=args.replicas, transport=args.replica_transport,
        )
    journal = (JsonlJournal.open(args.health_journal)
               if args.health_journal else None)
    # The wide-event journal may be the same file as the health
    # journal: share the handle, two "w" opens would clobber.
    wide_journal = None
    if args.wide_events:
        if (args.health_journal and os.path.abspath(args.wide_events)
                == os.path.abspath(args.health_journal)):
            wide_journal = journal
        else:
            wide_journal = JsonlJournal.open(args.wide_events)
    evaluator = None
    sink = None
    if resilient is not None and (args.slo or args.wide_events
                                  or args.plant_latency):
        if args.slo:
            sink = RecordingSink()
            evaluator = SLOEvaluator(
                load_slo_file(args.slo),
                journal=wide_journal if wide_journal is not None
                else journal,
                sink=sink,
            )
        resilient.observer = ServingObserver(
            evaluator=evaluator,
            emitter=(WideEventEmitter(journal=wide_journal)
                     if args.wide_events else None),
            planted_latency=(PlantedLatency.parse(args.plant_latency)
                             if args.plant_latency else None),
            staleness_probe=(cluster.staleness if cluster is not None
                             else None),
        )
    metrics_server = None
    if args.serve_metrics is not None:
        metrics_server = MetricsHTTPServer(port=args.serve_metrics)
        print(f"metrics endpoint: {metrics_server.url}")
    failpoints = faults.get_failpoints()
    queries_attempted = 0
    queries_answered = 0
    poisons_planted = 0
    rows: List[List] = []
    for index in range(args.batches):
        batch = uniform_batch(server.graph, args.batch_size,
                              seed=args.seed + index)
        start = time.perf_counter()
        if resilient is None:
            server.ingest(batch)
        else:
            if kill_plan is not None:
                name, kill_at, restart_at = kill_plan
                if index == kill_at:
                    cluster.kill_replica(name)
                if restart_at is not None and index == restart_at:
                    cluster.restart_replica(name)
            if (args.poison_every
                    and (index + 1) % args.poison_every == 0):
                # Plant-a-fault poison: the next refinement pass fails
                # with a transient fault, which the durable loop
                # quarantines -- a flapping poison source.
                failpoints.arm(
                    "engine.refine", kind="fault",
                    hit=failpoints.hit_count("engine.refine") + 1,
                )
                poisons_planted += 1
            pump = (not args.burst
                    or (index + 1) % args.burst == 0)
            resilient.submit(batch, pump=pump)
            if (args.query_every
                    and (index + 1) % args.query_every == 0):
                queries_attempted += 1
                resilient.query(deadline_s=args.deadline)
                queries_answered += 1
            if cluster is not None:
                cluster.replicate()
                observer = resilient.observer
                if observer is not None and observer.emitter is not None:
                    cluster.observe_replicas(observer.emitter)
            if journal is not None:
                resilient.record_health(journal)
        rows.append([index, len(batch),
                     round(time.perf_counter() - start, 4)])
    if resilient is not None:
        resilient.drain()
        if cluster is not None:
            cluster.sync()
        if journal is not None:
            resilient.record_health(journal)
            journal.close()
    if wide_journal is not None and wide_journal is not journal:
        wide_journal.close()
    print(format_table(
        ["batch", "mutations", "seconds"], rows,
        title=f"serve {args.algorithm} on {spec}"
        + (f" (durable: {args.wal})" if args.wal else ""),
    ))
    if recovery is not None:
        generations = recovery.checkpoints()
        print(f"state: {server.batches_ingested} batch(es) WAL-logged, "
              f"{len(generations)} checkpoint generation(s), newest at "
              f"seq {generations[-1][0] if generations else '-'}, "
              f"{len(recovery.quarantined)} quarantined")
    status = 0
    if resilient is not None:
        health = resilient.health()
        if args.status:
            print(f"health: {health.to_json()}")
        if queries_attempted and queries_answered < queries_attempted:
            print(f"SOAK FAIL: {queries_attempted - queries_answered} "
                  f"of {queries_attempted} queries went unserved")
            status = 1
        if poisons_planted and not args.no_breaker:
            budget = resilient.breaker.restore_budget(
                resilient.submitted
            )
            if server.restores > budget:
                print(f"SOAK FAIL: {server.restores} restores exceed "
                      f"the breaker budget of {budget}")
                status = 1
        if poisons_planted and health.quarantine_count > poisons_planted:
            print(f"SOAK FAIL: {health.quarantine_count} quarantines "
                  f"for {poisons_planted} planted poisons")
            status = 1
    if cluster is not None:
        summary = cluster.status()
        parts = []
        for name, info in summary["replicas"].items():
            parts.append(
                f"{name}={'up' if info['alive'] else 'DOWN'}"
                f"/lag={info['lag_batches']}"
                + (f"/rejections={info['fence_rejections']}"
                   if info["fence_rejections"] else "")
            )
        print(f"replication: epoch={summary['epoch']}  "
              + "  ".join(parts))
        alive_lag = max(
            (info["lag_batches"]
             for info in summary["replicas"].values()
             if info["alive"]),
            default=0,
        )
        if alive_lag:
            print(f"SOAK FAIL: live replica still lags {alive_lag} "
                  f"record(s) after the final sync (never converged)")
            status = 1
        cluster.close()
    if evaluator is not None:
        fired = [alert for alert in sink.alerts
                 if alert.state == "firing"]
        still = evaluator.firing
        print(f"slo: {len(fired)} alert(s) fired"
              + (f"; firing at exit: {', '.join(still)}" if still
                 else ""))
        for alert in fired:
            print(f"  [{alert.severity}] batch {alert.index}: "
                  f"{alert.slo} fast={alert.fast_burn:.1f}x "
                  f"slow={alert.slow_burn:.1f}x"
                  + (f"  [runbook: {alert.runbook}]"
                     if alert.runbook else ""))
    if args.metrics_out:
        write_metrics(args.metrics_out)
        print(f"metrics -> {args.metrics_out}")
    if metrics_server is not None:
        metrics_server.close()
    if recovery is not None:
        recovery.close()
    return status


def _cmd_dash(args) -> int:
    from repro.obs.dash import dashboard_from_journal, replay_slos
    from repro.obs.slo import RecordingSink, load_slo_file

    slos = load_slo_file(args.slo) if args.slo else None
    refreshes = 1 if args.once else args.refreshes
    rendered = 0
    streams = None
    while True:
        try:
            text, streams = dashboard_from_journal(
                args.from_journal, slos=slos, width=args.width)
        except FileNotFoundError:
            print(f"journal not found: {args.from_journal}")
            return 2
        print(text, end="")
        rendered += 1
        if refreshes and rendered >= refreshes:
            break
        time.sleep(args.interval)
    # Firing alerts come from journaled alert records plus (when an SLO
    # file is given) the deterministic replay of the wide events --
    # a journal without an evaluator attached still assertable.
    fired = {record.get("slo") for record in streams["alerts"]
             if record.get("state") == "firing"}
    resolved = {record.get("slo") for record in streams["alerts"]
                if record.get("state") == "resolved"}
    if slos:
        sink = RecordingSink()
        replay_slos(slos, streams["batches"], sink=sink)
        fired |= {alert.slo for alert in sink.alerts
                  if alert.state == "firing"}
        resolved |= {alert.slo for alert in sink.alerts
                     if alert.state == "resolved"}
    status = 0
    if args.expect_alert is not None:
        ok = bool(fired) if args.expect_alert == "any" \
            else args.expect_alert in fired
        if not ok:
            print(f"EXPECT FAIL: no firing alert"
                  + ("" if args.expect_alert == "any"
                     else f" named {args.expect_alert!r}")
                  + " in the journal")
            status = 1
    if args.expect_resolved is not None:
        ok = bool(resolved) if args.expect_resolved == "any" \
            else args.expect_resolved in resolved
        if not ok:
            print(f"EXPECT FAIL: no resolved alert"
                  + ("" if args.expect_resolved == "any"
                     else f" named {args.expect_resolved!r}")
                  + " in the journal")
            status = 1
    if args.expect_clean and fired:
        print(f"EXPECT FAIL: alert(s) fired in a run expected clean: "
              + ", ".join(sorted(name or "?" for name in fired)))
        status = 1
    return status


def _cmd_slo_lint(args) -> int:
    import os

    from repro.obs.slo import lint_slo_dir, lint_slo_file, slos_dir

    targets = args.paths or [slos_dir()]
    problems = 0
    checked = 0
    for target in targets:
        if os.path.isdir(target):
            names = sorted(name for name in os.listdir(target)
                           if name.endswith(".yaml"))
            results = {os.path.join(target, name):
                       lint_slo_file(os.path.join(target, name))
                       for name in names}
            if not names:
                results = lint_slo_dir(target)
        else:
            results = {target: lint_slo_file(target)}
        for path in sorted(results):
            checked += 1
            errors = results[path]
            if errors:
                problems += 1
                print(f"{path}: FAIL")
                for error in errors:
                    print(f"  - {error}")
            else:
                print(f"{path}: ok")
    print(f"{checked} file(s) checked, {problems} with problems")
    return 1 if problems or not checked else 0


def _cmd_recover(args) -> int:
    import numpy as _np

    from repro.recovery import RecoveryManager

    recovery = RecoveryManager(args.state_dir)
    manifest = recovery.read_manifest()
    factory = ALGORITHMS[manifest["algorithm"]]
    server = recovery.recover(factory)
    values = server.approximate_values
    print(f"recovered {manifest['algorithm']} on {manifest['graph']}: "
          f"{server.batches_ingested} batch(es) replayed into a live "
          f"server, |values|_1 = {float(_np.abs(values).sum()):.6g}, "
          f"{len(recovery.quarantined)} quarantined, "
          f"{recovery.wal.torn_records_truncated} torn record(s) "
          f"truncated")
    if args.verify:
        from repro.serving.server import StreamingAnalyticsServer
        from repro.testing.oracle import compare_snapshots

        graph = parse_graph(manifest["graph"])
        shadow = StreamingAnalyticsServer(
            factory, graph,
            approx_iterations=manifest["approx_iterations"],
        )
        for index in range(server.batches_ingested):
            if index in recovery.quarantined:
                # The live loop rolled this batch back (quarantine /
                # shed / superseded), so the shadow must not apply it.
                continue
            batch = uniform_batch(shadow.graph, manifest["batch_size"],
                                  seed=manifest["seed"] + index)
            shadow.ingest(batch)
        verdict = compare_snapshots(values, shadow.approximate_values,
                                    tolerance=0.0)
        if verdict is not None:
            print(f"verify: MISMATCH -- {verdict[1]}")
            return 1
        print("verify: recovered state is bit-for-bit equal to an "
              "uninterrupted replay")
    recovery.close()
    return 0


def _cmd_replication_status(args) -> int:
    import json as _json

    from repro.serving.replication import replication_status

    print(_json.dumps(replication_status(args.state_dir), indent=2,
                      sort_keys=True))
    return 0


def _cmd_scrub(args) -> int:
    import json as _json

    from repro.recovery.scrub import scrub_state_dir

    report = scrub_state_dir(args.state_dir, store_root=args.store_root,
                             repair=args.repair)
    if args.json:
        print(_json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.summary())
        for finding in report.findings:
            status = "repaired" if finding.repaired else "UNREPAIRED"
            line = (f"  [{status}] {finding.kind} {finding.path}: "
                    f"{finding.detail}")
            if finding.repair:
                line += f" -- {finding.repair}"
            print(line)
    if report.ok:
        return 0
    return 0 if (args.repair and report.repaired) else 1


def _cmd_fuzz(args) -> int:
    import json as _json
    import os as _os

    from repro.testing import parse_budget, run_fuzz

    if args.plant_fault and not args.crash:
        print("--plant-fault requires --crash")
        return 2
    if args.replicated and not args.crash:
        print("--replicated requires --crash")
        return 2
    if args.storage and not args.crash:
        print("--storage requires --crash")
        return 2
    if args.chaos and not args.crash:
        print("--chaos requires --crash")
        return 2
    if args.crash:
        from repro.testing.crash import (
            chaos_convergence_sweep,
            chaos_dead_letter_round,
            replicated_scenario_sweep,
            run_crash_fuzz,
            run_plant_fault,
            storage_site_sweep,
        )

        if args.plant_fault:
            return 0 if run_plant_fault(seed=args.seed) else 1
        if args.chaos:
            rounds = chaos_convergence_sweep(
                seeds=range(args.seed, args.seed + args.chaos_seeds),
                rate=args.chaos_rate,
                state_root=args.artifacts_dir,
                emit=print,
            )
            dead = chaos_dead_letter_round(
                seed=args.seed + 1009,
                state_root=(
                    _os.path.join(args.artifacts_dir, "dead_letter")
                    if args.artifacts_dir else None
                ),
            )
            print(dead.summary())
            rounds.append(dead)
            if args.artifacts_dir:
                _os.makedirs(args.artifacts_dir, exist_ok=True)
                for round_ in rounds:
                    path = _os.path.join(
                        args.artifacts_dir,
                        f"chaos-schedule-seed{round_.seed}.json",
                    )
                    with open(path, "w", encoding="utf-8") as stream:
                        _json.dump(
                            {"seed": round_.seed, "rate": round_.rate,
                             "faults": round_.faults,
                             "dead_letters": round_.dead_letters,
                             "ok": round_.ok, "detail": round_.detail,
                             "schedule": round_.schedule},
                            stream, indent=1, sort_keys=True,
                        )
            return 0 if all(round_.ok for round_ in rounds) else 1
        if args.storage:
            rounds = storage_site_sweep(
                state_root=args.artifacts_dir, seed=args.seed,
                emit=print,
            )
            return 0 if all(round_.ok for round_ in rounds) else 1
        if args.replicated:
            rounds = replicated_scenario_sweep(
                seed=args.seed, state_root=args.artifacts_dir,
                emit=print,
            )
            return 0 if all(round_.ok for round_ in rounds) else 1
        outcome = run_crash_fuzz(
            seed=args.seed,
            rounds=args.rounds,
            algorithms=args.algorithms or None,
            max_vertices=min(args.max_vertices, 48),
            max_batches=args.max_batches,
            checkpoint_every=args.checkpoint_every,
            artifacts_dir=args.artifacts_dir,
        )
        return 0 if outcome.ok else 1
    outcome = run_fuzz(
        seed=args.seed,
        workloads=args.workloads,
        budget_seconds=parse_budget(args.budget),
        algorithms=args.algorithms or None,
        engines=args.engines or None,
        max_vertices=args.max_vertices,
        max_batches=args.max_batches,
        do_shrink=not args.no_shrink,
        plant_bug=args.plant_bug,
        trace_path=args.trace_out,
    )
    if args.plant_bug:
        # Self-test: success means the deliberately broken strategy WAS
        # caught (and therefore the oracle is not passing vacuously).
        caught = any(
            divergence.engine == "naive"
            for report in outcome.failures
            for divergence in report.divergences
        )
        return 0 if caught else 1
    return 0 if outcome.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GraphBolt reproduction: streaming graph analytics",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="print graph statistics")
    info.add_argument("--graph", default="rmat:10", help="graph spec")
    info.set_defaults(handler=_cmd_info)

    def add_stream_options(parser, default_graph: str) -> None:
        parser.add_argument("graph_spec", nargs="?", default=None,
                            help="graph spec (overrides --graph)")
        parser.add_argument("--algorithm", choices=sorted(ALGORITHMS),
                            default="pagerank")
        parser.add_argument("--engine", choices=sorted(ENGINES),
                            default="graphbolt")
        parser.add_argument("--graph", default=default_graph,
                            help="graph spec")
        parser.add_argument("--iterations", type=int, default=10)
        parser.add_argument("--batches", type=int, default=5)
        parser.add_argument("--batch-size", type=int, default=100)
        parser.add_argument("--seed", type=int, default=0)
        parser.add_argument("--snapshot-store", default=None,
                            metavar="KIND[:DIR]",
                            help="snapshot storage tier: 'heap' "
                                 "(default) keeps CSR arrays in "
                                 "memory; 'mmap[:dir]' spools them to "
                                 "CRC-guarded segment files reopened "
                                 "as memmaps (out-of-core).  Defaults "
                                 "to $REPRO_SNAPSHOT_STORE")
        parser.add_argument("--trace-out", default=None,
                            help="write the span journal to this JSONL "
                                 "file")

    run = sub.add_parser("run", help="stream mutations through an engine")
    add_stream_options(run, default_graph="rmat:12")
    run.add_argument("--validate", action="store_true",
                     help="check every batch against from-scratch run")
    run.add_argument("--json", action="store_true",
                     help="emit per-batch records as JSON lines instead "
                          "of the table")
    run.add_argument("--output", help="write final values to .npz")
    run.set_defaults(handler=_cmd_run)

    trace_cmd = sub.add_parser(
        "trace",
        help="replay a workload under the tracer and render the "
             "per-batch phase breakdown",
    )
    add_stream_options(trace_cmd, default_graph="rmat:10")
    trace_cmd.set_defaults(handler=_cmd_trace)

    bench = sub.add_parser("bench", help="paper experiment drivers")
    bench.add_argument("experiments", nargs="*",
                       help="experiment names (default: all)")
    bench.set_defaults(handler=_cmd_bench)

    experiment = sub.add_parser(
        "experiment",
        help="declarative experiment matrix + perf-trajectory gate",
    )
    experiment.add_argument("--matrix", default=None,
                            help="run-table YAML path, or a name under "
                                 "benchmarks/matrices/")
    experiment.add_argument("--list", action="store_true",
                            help="list the bundled run tables and exit")
    experiment.add_argument("--out-dir", default=None,
                            help="directory for the emitted "
                                 "BENCH_<area>.json (default: "
                                 "benchmarks/results/)")
    experiment.add_argument("--baseline-dir", default=None,
                            help="committed-baseline directory "
                                 "(default: benchmarks/baselines/)")
    experiment.add_argument("--gate", default="report",
                            choices=["off", "report", "enforce"],
                            help="regression-gate mode: report "
                                 "(default) prints verdicts but always "
                                 "exits 0; enforce exits 1 on any "
                                 "regression beyond threshold")
    experiment.add_argument("--threshold", type=float, default=None,
                            help="override both gate thresholds with "
                                 "one relative slowdown bound")
    experiment.add_argument("--update-baseline", action="store_true",
                            help="write this payload as the new "
                                 "committed baseline instead of gating")
    experiment.add_argument("--snapshot-store", default=None,
                            metavar="KIND[:DIR]",
                            help="default snapshot storage tier for "
                                 "cells whose matrix omits a 'storage' "
                                 "axis (heap | mmap[:dir]); exported "
                                 "as REPRO_SNAPSHOT_STORE for the run")
    experiment.set_defaults(handler=_cmd_experiment)

    serve = sub.add_parser(
        "serve",
        help="durable streaming deployment (WAL + checkpoints)",
    )
    add_stream_options(serve, default_graph="rmat:10")
    serve.add_argument("--wal", default=None, metavar="DIR",
                       help="state directory for the write-ahead log "
                            "and checkpoints (omit for an ephemeral "
                            "server)")
    serve.add_argument("--checkpoint-every", type=int, default=16,
                       help="checkpoint cadence in batches")
    serve.add_argument("--retain", type=int, default=3,
                       help="checkpoint generations to keep")
    serve.add_argument("--replicas", type=int, default=0, metavar="N",
                       help="attach N WAL-shipped read replicas behind "
                            "the writer (needs --wal; see "
                            "docs/operations.md 'Replication and "
                            "failover')")
    serve.add_argument("--replica-transport", default="inproc",
                       choices=["inproc", "directory"],
                       help="segment/checkpoint shipping transport: "
                            "in-process queues or durable spool "
                            "directories")
    serve.add_argument("--kill-replica", default=None,
                       metavar="I:AT[:RESTART]",
                       help="kill replica I before batch AT (and "
                            "restart it before batch RESTART) -- the "
                            "replication-soak fault plan")
    serve.add_argument("--admission", default=None,
                       choices=["block", "shed-oldest", "coalesce"],
                       help="enable the admission controller with this "
                            "pressure policy (see docs/operations.md)")
    serve.add_argument("--queue-capacity", type=int, default=8,
                       help="admission queue capacity in batches")
    serve.add_argument("--burst", type=int, default=0,
                       help="submit in bursts of N batches, applying "
                            "only at burst boundaries (builds queue "
                            "pressure; 0 = apply every batch)")
    serve.add_argument("--no-breaker", action="store_true",
                       help="disable the degradation circuit breaker")
    serve.add_argument("--breaker-quarantine-threshold", type=int,
                       default=3,
                       help="consecutive quarantines that trip the "
                            "breaker")
    serve.add_argument("--breaker-cooldown", type=int, default=4,
                       help="deferred submissions before a half-open "
                            "probe")
    serve.add_argument("--deadline", type=float, default=None,
                       help="per-query wall-clock budget in seconds "
                            "(expired queries return degraded results)")
    serve.add_argument("--query-every", type=int, default=0,
                       help="issue a branch-loop query every N batches")
    serve.add_argument("--poison-every", type=int, default=0,
                       help="plant a transient refinement fault every "
                            "N batches (overload-soak poison source; "
                            "needs --wal)")
    serve.add_argument("--health-journal", default=None, metavar="PATH",
                       help="append a health snapshot per batch to this "
                            "JSONL file")
    serve.add_argument("--status", action="store_true",
                       help="print the final health snapshot (queue "
                            "depth, staleness, breaker state, "
                            "quarantines)")
    serve.add_argument("--slo", default=None, metavar="FILE",
                       help="evaluate this SLO file per applied batch "
                            "(a name under benchmarks/slos/ or a "
                            "path); alerts are journaled and printed")
    serve.add_argument("--wide-events", default=None, metavar="PATH",
                       help="journal one wide event per applied batch "
                            "and served query to this JSONL file (may "
                            "equal --health-journal)")
    serve.add_argument("--plant-latency", default=None,
                       metavar="INDEX:SECONDS",
                       help="deterministic latency fault: from batch "
                            "INDEX onward the SLO evaluator sees "
                            "SECONDS as the ingest latency sample")
    serve.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write the metrics registry in Prometheus "
                            "text format at exit")
    serve.add_argument("--serve-metrics", type=int, default=None,
                       metavar="PORT",
                       help="expose /metrics over HTTP on PORT for the "
                            "duration of the run (0 picks a free port)")
    serve.set_defaults(handler=_cmd_serve)

    dash = sub.add_parser(
        "dash",
        help="operational dashboard over a serve journal",
    )
    dash.add_argument("--from-journal", required=True, metavar="PATH",
                      help="JSONL journal written by `repro serve` "
                           "(--health-journal / --wide-events)")
    dash.add_argument("--slo", default=None, metavar="FILE",
                      help="replay this SLO file over the journaled "
                           "wide events (reproduces the live burn "
                           "rates and alert indices exactly)")
    dash.add_argument("--once", action="store_true",
                      help="render a single frame and exit")
    dash.add_argument("--interval", type=float, default=2.0,
                      help="seconds between live re-renders")
    dash.add_argument("--refreshes", type=int, default=0,
                      help="stop after N frames (0 = until "
                           "interrupted; --once means 1)")
    dash.add_argument("--width", type=int, default=72,
                      help="dashboard width in columns")
    dash.add_argument("--expect-alert", default=None, metavar="NAME",
                      help="exit 1 unless a firing alert (named NAME, "
                           "or any with 'any') is in the journal or "
                           "the --slo replay")
    dash.add_argument("--expect-resolved", default=None, metavar="NAME",
                      help="exit 1 unless an alert (named NAME, or any "
                           "with 'any') resolved in the journal or the "
                           "--slo replay -- the recovery edge of the "
                           "replication-soak")
    dash.add_argument("--expect-clean", action="store_true",
                      help="exit 1 if any firing alert is found")
    dash.set_defaults(handler=_cmd_dash)

    slo_lint = sub.add_parser(
        "slo-lint",
        help="validate SLO YAML files (default: benchmarks/slos/)",
    )
    slo_lint.add_argument("paths", nargs="*",
                          help="SLO files or directories to lint")
    slo_lint.set_defaults(handler=_cmd_slo_lint)

    recover = sub.add_parser(
        "recover",
        help="restore a crashed `serve --wal` deployment from disk",
    )
    recover.add_argument("state_dir", help="the serve --wal directory")
    recover.add_argument("--verify", action="store_true",
                         help="replay the schedule from scratch and "
                              "compare bit-for-bit")
    recover.set_defaults(handler=_cmd_recover)

    fuzz = sub.add_parser(
        "fuzz", help="cross-engine differential fuzzing"
    )
    fuzz.add_argument("--seed", type=int, default=0,
                      help="first workload seed (workload i uses seed+i)")
    fuzz.add_argument("--workloads", type=int, default=25,
                      help="number of workloads to generate")
    fuzz.add_argument("--budget", default=None,
                      help="wall-clock budget, e.g. 45, 30s, 2m")
    fuzz.add_argument("--algorithms", nargs="*", default=None,
                      help="restrict the fuzz algorithm roster")
    fuzz.add_argument("--engines", nargs="*", default=None,
                      help="restrict engines (reference always runs)")
    fuzz.add_argument("--max-vertices", type=int, default=64)
    fuzz.add_argument("--max-batches", type=int, default=6)
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="report divergences without minimising them")
    fuzz.add_argument("--trace-out", default=None,
                      help="journal span dumps of (shrunk) failures to "
                           "this JSONL file")
    fuzz.add_argument("--plant-bug", action="store_true",
                      help="self-test: include the known-broken naive "
                           "strategy and succeed only if it is caught")
    fuzz.add_argument("--crash", action="store_true",
                      help="crash-recovery mode: kill a durable server "
                           "at a seeded failpoint, recover from "
                           "checkpoint + WAL, assert bit-for-bit "
                           "equivalence")
    fuzz.add_argument("--rounds", type=int, default=8,
                      help="kill-and-recover rounds (--crash only)")
    fuzz.add_argument("--checkpoint-every", type=int, default=2,
                      help="checkpoint cadence for --crash servers")
    fuzz.add_argument("--artifacts-dir", default=None,
                      help="keep WAL/state + repro for failed --crash "
                           "rounds under this directory")
    fuzz.add_argument("--plant-fault", action="store_true",
                      help="self-test (--crash): arm a transient fault "
                           "and succeed only if the failpoint registry "
                           "fires and retry absorbs it")
    fuzz.add_argument("--replicated", action="store_true",
                      help="with --crash: sweep the replication "
                           "scenarios (writer-kill, replica-kill, "
                           "segment-drop, stale-writer-fence); every "
                           "replica must converge bit-for-bit and "
                           "fenced segments must land in the ledger")
    fuzz.add_argument("--storage", action="store_true",
                      help="with --crash: kill the mmap snapshot store "
                           "at every segment position of a generation "
                           "write (storage.segment_write); the torn "
                           "write must leave the previous manifest "
                           "readable and a retry must converge")
    fuzz.add_argument("--chaos", action="store_true",
                      help="with --crash: wrap every replication link "
                           "in a seeded lossy transport (drop, "
                           "duplicate, corrupt, reorder, delay) and "
                           "assert bit-for-bit convergence plus "
                           "dead-letter behaviour on a black-hole link")
    fuzz.add_argument("--chaos-rate", type=float, default=0.1,
                      help="per-fault-kind injection probability for "
                           "--chaos (default 0.1)")
    fuzz.add_argument("--chaos-seeds", type=int, default=5,
                      help="number of chaos seeds to sweep, starting "
                           "at --seed (default 5)")
    fuzz.set_defaults(handler=_cmd_fuzz)

    repl_status = sub.add_parser(
        "replication-status",
        help="inspect a replicated state directory tree offline",
    )
    repl_status.add_argument("state_dir",
                             help="the serve --wal directory (replica "
                                  "state lives under replicas/)")
    repl_status.set_defaults(handler=_cmd_replication_status)

    scrub = sub.add_parser(
        "scrub",
        help="re-verify every CRC in a state directory and optionally "
             "repair bit-rot",
    )
    scrub.add_argument("state_dir",
                       help="state directory to scrub (wal/ + "
                            "checkpoints/ + optional snapshot store)")
    scrub.add_argument("--repair", action="store_true",
                       help="heal what can be healed standalone: "
                            "rebuild a damaged CSR/CSC direction "
                            "bit-for-bit from the clean one, GC "
                            "checkpoint-covered WAL damage, sideline "
                            "corrupt checkpoints; exit 1 if damage "
                            "remains")
    scrub.add_argument("--store-root", default=None,
                       help="snapshot-store root holding this node's "
                            "segment files (a replica's spool); "
                            "defaults to the roots referenced by "
                            "manifest-mode checkpoints")
    scrub.add_argument("--json", action="store_true",
                       help="emit the full scrub report as JSON")
    scrub.set_defaults(handler=_cmd_scrub)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
