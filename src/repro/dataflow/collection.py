"""Static multiset collections: the batch calculus of diffs.

A :class:`Collection` is an immutable weighted multiset of records --
the value a differential stream accumulates to at one timestamp.  The
methods here are the *reference semantics* for the streaming operators
in :mod:`repro.dataflow.operators`: the property tests assert that
running diffs through the dataflow and accumulating equals applying
the batch calculus to the accumulated inputs.

Records must be hashable; keyed operations expect ``(key, value)``
2-tuples, as in Differential Dataflow.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Iterable, List, Tuple

__all__ = ["Collection"]

Record = Tuple
Diff = Tuple[Record, int]


class Collection:
    """An immutable multiset of records with integer multiplicities."""

    def __init__(self, diffs: Iterable[Diff] = ()) -> None:
        weights: Counter = Counter()
        for record, multiplicity in diffs:
            weights[record] += multiplicity
        self._weights = {
            record: mult for record, mult in weights.items() if mult != 0
        }

    # ------------------------------------------------------------------
    @classmethod
    def from_records(cls, records: Iterable[Record]) -> "Collection":
        return cls((record, 1) for record in records)

    def diffs(self) -> List[Diff]:
        """Consolidated (record, multiplicity) pairs, deterministic order."""
        return sorted(self._weights.items(), key=lambda item: repr(item[0]))

    def multiplicity(self, record: Record) -> int:
        return self._weights.get(record, 0)

    def records(self) -> Dict[Record, int]:
        return dict(self._weights)

    def __len__(self) -> int:
        return len(self._weights)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Collection):
            return NotImplemented
        return self._weights == other._weights

    def __hash__(self):
        raise TypeError("collections are mutable-equality containers")

    def is_positive(self) -> bool:
        """True when every multiplicity is positive (a set-like state)."""
        return all(mult > 0 for mult in self._weights.values())

    # ------------------------------------------------------------------
    # The operator calculus
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Record], Record]) -> "Collection":
        return Collection(
            (fn(record), mult) for record, mult in self._weights.items()
        )

    def filter(self, predicate: Callable[[Record], bool]) -> "Collection":
        return Collection(
            (record, mult)
            for record, mult in self._weights.items()
            if predicate(record)
        )

    def flat_map(self, fn: Callable[[Record], Iterable[Record]]) -> "Collection":
        return Collection(
            (output, mult)
            for record, mult in self._weights.items()
            for output in fn(record)
        )

    def concat(self, other: "Collection") -> "Collection":
        return Collection(
            list(self._weights.items()) + list(other._weights.items())
        )

    def negate(self) -> "Collection":
        return Collection(
            (record, -mult) for record, mult in self._weights.items()
        )

    def join(self, other: "Collection") -> "Collection":
        """Keyed join: ``(k, a) x (k, b) -> (k, (a, b))`` with
        multiplicity products."""
        by_key: Dict = {}
        for (key, value), mult in other._weights.items():
            by_key.setdefault(key, []).append((value, mult))
        out: List[Diff] = []
        for (key, value), mult in self._weights.items():
            for other_value, other_mult in by_key.get(key, ()):
                out.append(((key, (value, other_value)), mult * other_mult))
        return Collection(out)

    def reduce(self, fn: Callable[[Record, List[Record]], Iterable[Record]]
               ) -> "Collection":
        """Group by key and reduce each group's value multiset.

        ``fn(key, values)`` receives the group's values expanded by
        multiplicity (requires a positive collection) and returns the
        output *values* for that key.
        """
        if not self.is_positive():
            raise ValueError("reduce requires a positive collection")
        groups: Dict = {}
        for (key, value), mult in self._weights.items():
            groups.setdefault(key, []).extend([value] * mult)
        out: List[Diff] = []
        for key, values in groups.items():
            for output in fn(key, sorted(values, key=repr)):
                out.append(((key, output), 1))
        return Collection(out)

    def distinct(self) -> "Collection":
        if not self.is_positive():
            raise ValueError("distinct requires a positive collection")
        return Collection((record, 1) for record in self._weights)

    def count(self) -> "Collection":
        """Per-key value counts: ``(k, n)``."""
        return self.reduce(lambda key, values: [len(values)])

    def __repr__(self) -> str:
        return f"Collection({self.diffs()!r})"
