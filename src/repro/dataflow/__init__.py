"""A miniature Differential Dataflow (McSherry et al., CIDR'13).

The paper's Figure 8/9 comparator: a *general-purpose* incremental
engine that represents data as multisets of records evolving through
timestamped diffs ``(record, time, +/-k)``, with differential operators
(map/filter/join/reduce/...) that compute directly over diffs.  Graph
computations are expressed by joining edge tuples with rank/distance
tuples and grouping at destination vertices -- generic, elegant, and
(as the paper measures) slower than a graph-specialised engine, because
every vertex value lives in hash-indexed traces rather than dense
arrays, and every operator materialises its own state.

Scope note (honest simplification, documented in DESIGN.md): timestamps
here are the totally-ordered product (epoch, inner-step) rather than
Naiad's partially-ordered lattice -- sufficient for the single-loop,
epoch-serial programs these benchmarks run, and preserving the
observable behaviour the paper compares against (diff-driven work
proportional to affected keys, high per-update variance).
"""

from repro.dataflow.collection import Collection
from repro.dataflow.operators import Dataflow
from repro.dataflow.timestamps import Timestamp

__all__ = ["Collection", "Dataflow", "Timestamp"]
