"""Timestamps for the mini differential dataflow.

A :class:`Timestamp` is the pair ``(epoch, step)``: ``epoch`` counts
input rounds (graph mutation batches), ``step`` counts inner iterations
of a feedback loop within an epoch.  We order timestamps
lexicographically -- a *total* order, which is the documented
simplification relative to Naiad's partially-ordered product lattice.
The lattice operations (`join`, `meet`) are still provided and
well-defined; with a total order they coincide with max and min.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering

__all__ = ["Timestamp"]


@total_ordering
@dataclass(frozen=True)
class Timestamp:
    epoch: int
    step: int = 0

    def __lt__(self, other: "Timestamp") -> bool:
        return (self.epoch, self.step) < (other.epoch, other.step)

    def join(self, other: "Timestamp") -> "Timestamp":
        """Least upper bound (== max under the total order)."""
        return max(self, other)

    def meet(self, other: "Timestamp") -> "Timestamp":
        """Greatest lower bound (== min under the total order)."""
        return min(self, other)

    def next_epoch(self) -> "Timestamp":
        return Timestamp(self.epoch + 1, 0)

    def next_step(self) -> "Timestamp":
        return Timestamp(self.epoch, self.step + 1)

    def __repr__(self) -> str:
        return f"({self.epoch}, {self.step})"
