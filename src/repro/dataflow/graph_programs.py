"""Graph computations expressed as differential dataflows.

The paper (section 5.4) expresses graph computations on Differential
Dataflow "in edge-parallel manner by joining edge tuples with rank
values to be pushed across them, and then grouping them at destination
vertices' rank tuples".  These programs do exactly that:

- :class:`DifferentialPageRank` -- the synchronous iteration unrolled
  into ``num_iterations`` join+reduce stages (ranks -> share-per-edge ->
  contributions grouped at destinations -> damped apply), with degrees
  themselves a differential count so mutations flow end to end.
- :class:`DifferentialSSSP` -- relaxation unrolled into ``num_stages``
  monotone min stages (enough to cover the graph's hop diameter).

Unrolling stages rather than nesting a feedback timestamp keeps every
stage a pure function of the previous one, so retractions (edge
deletions) re-derive cleanly through the chain -- the behaviour real DD
obtains from partially-ordered iteration timestamps.

Both classes wrap the dataflow in the same streaming interface as the
other engines (``values`` / ``apply_mutations``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dataflow.operators import Dataflow
from repro.graph.csr import CSRGraph
from repro.graph.mutable import StreamingGraph
from repro.graph.mutation import MutationBatch
from repro.runtime.exec import ExecutionBackend, resolve_backend
from repro.runtime.metrics import EngineMetrics, Timer

__all__ = ["DifferentialConnectedComponents", "DifferentialPageRank",
           "DifferentialSSSP"]


class _DifferentialGraphProgram:
    """Shared streaming-graph plumbing for dataflow graph programs."""

    def __init__(self, graph: CSRGraph,
                 metrics: Optional[EngineMetrics] = None,
                 backend: Optional[ExecutionBackend] = None) -> None:
        self.metrics = metrics if metrics is not None else EngineMetrics()
        self.backend = resolve_backend(backend)
        self._streaming = StreamingGraph(graph)
        self.dataflow = Dataflow()
        self._edges_in = self.dataflow.input()
        self._vertices_in = self.dataflow.input()
        self._probe = self._build(
            self._edges_in.stream, self._vertices_in.stream
        )
        with Timer(self.metrics, "initial_run"):
            # Structural feed (never charged as edge computations); the
            # sharded backend still measures per-shard feed loads.
            src, dst, weight = self.backend.gather_all(
                graph, self.metrics, count=False
            )
            self._edges_in.send_records(
                (int(u), (int(v), float(w)))
                for u, v, w in zip(src, dst, weight)
            )
            self._vertices_in.send_records(
                (v, ()) for v in range(graph.num_vertices)
            )
            self.dataflow.run()

    def _build(self, edges, vertices):
        raise NotImplementedError

    @property
    def graph(self) -> CSRGraph:
        return self._streaming.graph

    def apply_mutations(self, batch: MutationBatch) -> np.ndarray:
        with Timer(self.metrics, "adjust_structure"):
            mutation = self._streaming.apply_batch(batch)
        with Timer(self.metrics, "update"):
            self.dataflow.advance_epoch()
            diffs = []
            for u, v, w in zip(mutation.add_src.tolist(),
                               mutation.add_dst.tolist(),
                               mutation.add_weight.tolist()):
                diffs.append(((u, (v, w)), 1))
            for u, v, w in zip(mutation.del_src.tolist(),
                               mutation.del_dst.tolist(),
                               mutation.del_weight.tolist()):
                diffs.append(((u, (v, w)), -1))
            self._edges_in.send(diffs)
            if mutation.grew():
                self._vertices_in.send_records(
                    (v, ())
                    for v in range(mutation.old_graph.num_vertices,
                                   mutation.new_graph.num_vertices)
                )
            self.dataflow.run()
        return self.values

    @property
    def values(self) -> np.ndarray:
        raise NotImplementedError


class DifferentialPageRank(_DifferentialGraphProgram):
    """PageRank as an unrolled differential join+reduce pipeline."""

    name = "DifferentialDataflow-PR"

    def __init__(self, graph: CSRGraph, num_iterations: int = 10,
                 damping: float = 0.85,
                 metrics: Optional[EngineMetrics] = None,
                 backend: Optional[ExecutionBackend] = None) -> None:
        self.num_iterations = num_iterations
        self.damping = damping
        super().__init__(graph, metrics, backend)

    def _build(self, edges, vertices):
        damping = self.damping
        degrees = edges.map(lambda rec: (rec[0], 1)).sum_by_key()
        ranks = vertices.map(lambda rec: (rec[0], 1.0))
        base = vertices.map(lambda rec: (rec[0], 0.0))
        for _ in range(self.num_iterations):
            shares = ranks.join(degrees).map(
                lambda rec: (rec[0], rec[1][0] / rec[1][1])
            )
            contributions = shares.join(edges).map(
                # (u, (share, (v, w)))  ->  (v, share)
                lambda rec: (rec[1][1][0], rec[1][0])
            )
            ranks = contributions.concat(base).sum_by_key().map(
                lambda rec: (rec[0], (1.0 - damping) + damping * rec[1])
            )
        return ranks.probe()

    @property
    def values(self) -> np.ndarray:
        state = self._probe.state()
        ranks = np.full(self.graph.num_vertices, 1.0 - self.damping)
        for (vertex, rank), mult in state.items():
            if mult > 0:
                ranks[vertex] = rank
        return ranks


class DifferentialConnectedComponents(_DifferentialGraphProgram):
    """Weakly connected components as unrolled min-label stages.

    Each stage propagates the smallest label seen so far across
    (symmetrised) edges; ``num_stages`` must cover the component
    diameter.  Demonstrates label-style fixpoints on the differential
    substrate alongside the distance-style SSSP.
    """

    name = "DifferentialDataflow-WCC"

    def __init__(self, graph: CSRGraph, num_stages: int = 24,
                 metrics: Optional[EngineMetrics] = None,
                 backend: Optional[ExecutionBackend] = None) -> None:
        self.num_stages = num_stages
        super().__init__(graph, metrics, backend)

    def _build(self, edges, vertices):
        # Symmetrise so label flow matches weak connectivity.
        forward = edges.map(lambda rec: (rec[0], rec[1][0]))
        backward = edges.map(lambda rec: (rec[1][0], rec[0]))
        sym = forward.concat(backward)
        labels = vertices.map(lambda rec: (rec[0], rec[0]))
        for _ in range(self.num_stages):
            pushed = labels.join(sym).map(
                # (u, (label, v)) -> (v, label)
                lambda rec: (rec[1][1], rec[1][0])
            )
            labels = pushed.concat(labels).min_by_key()
        return labels.probe()

    @property
    def values(self) -> np.ndarray:
        state = self._probe.state()
        labels = np.arange(self.graph.num_vertices, dtype=np.float64)
        for (vertex, label), mult in state.items():
            if mult > 0:
                labels[vertex] = label
        return labels


class DifferentialSSSP(_DifferentialGraphProgram):
    """SSSP as unrolled monotone min-relaxation stages."""

    name = "DifferentialDataflow-SSSP"

    def __init__(self, graph: CSRGraph, source: int = 0,
                 num_stages: int = 24,
                 metrics: Optional[EngineMetrics] = None,
                 backend: Optional[ExecutionBackend] = None) -> None:
        self.source = source
        self.num_stages = num_stages
        super().__init__(graph, metrics, backend)

    def _build(self, edges, vertices):
        source = self.source
        roots = vertices.filter(lambda rec: rec[0] == source).map(
            lambda rec: (rec[0], 0.0)
        )
        dists = roots
        for _ in range(self.num_stages):
            relaxed = dists.join(edges).map(
                # (u, (d, (v, w)))  ->  (v, d + w)
                lambda rec: (rec[1][1][0], rec[1][0] + rec[1][1][1])
            )
            dists = relaxed.concat(dists).concat(roots).min_by_key()
        return dists.probe()

    @property
    def values(self) -> np.ndarray:
        state = self._probe.state()
        dists = np.full(self.graph.num_vertices, np.inf)
        for (vertex, dist), mult in state.items():
            if mult > 0:
                dists[vertex] = dist
        return dists
