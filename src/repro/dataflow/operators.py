"""Streaming differential operators.

A :class:`Dataflow` is a DAG of operator nodes exchanging *batches* of
``(record, multiplicity)`` diffs stamped with a
:class:`~repro.dataflow.timestamps.Timestamp`.  Stateful operators
(join, reduce, distinct, count) maintain hash-indexed traces of their
accumulated inputs and emit only corrections -- the differential
property: work is proportional to affected keys, not collection size.

Feedback loops (iterative computations) are driven from outside the
DAG: a driver feeds an output probe's corrections back into an input,
bumping the timestamp's inner step (see
:mod:`repro.dataflow.graph_programs`).  This matches the module-level
simplification of totally-ordered timestamps.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.dataflow.timestamps import Timestamp
from repro.obs import trace
from repro.obs.registry import get_registry

__all__ = ["Dataflow", "Stream", "Probe", "InputSession",
           "iterate_to_fixpoint"]

Record = Tuple
Diff = Tuple[Record, int]
Batch = List[Diff]


def _consolidate(diffs: Iterable[Diff]) -> Batch:
    weights: Counter = Counter()
    for record, mult in diffs:
        weights[record] += mult
    return [(record, mult) for record, mult in weights.items() if mult != 0]


class Dataflow:
    """An operator DAG with epoch/step-stamped batch processing."""

    def __init__(self) -> None:
        self._nodes: List[_Node] = []
        self.current_time = Timestamp(0, 0)
        #: Total diffs processed across all operators -- the engine's
        #: work metric (the analogue of edge computations).
        self.records_processed = 0

    # ------------------------------------------------------------------
    def input(self) -> "InputSession":
        node = _InputNode(self)
        return InputSession(self, node)

    def _register(self, node: "_Node") -> None:
        self._nodes.append(node)

    # ------------------------------------------------------------------
    def advance_epoch(self) -> Timestamp:
        self.current_time = self.current_time.next_epoch()
        return self.current_time

    def advance_step(self) -> Timestamp:
        self.current_time = self.current_time.next_step()
        return self.current_time

    def run(self) -> None:
        """Process queued batches until every operator is quiescent."""
        before = self.records_processed
        with trace.span("dataflow_run", engine="dataflow",
                        epoch=self.current_time.epoch,
                        step=self.current_time.step) as span:
            progressing = True
            while progressing:
                progressing = False
                for node in self._nodes:
                    if node.pending:
                        node.drain()
                        progressing = True
            processed = self.records_processed - before
            span.tag(records=processed)
        get_registry().counter("dataflow.records_processed").inc(processed)


class Stream:
    """An operator's output; the handle operators are chained on."""

    def __init__(self, dataflow: Dataflow, node: "_Node") -> None:
        self.dataflow = dataflow
        self._node = node
        node.output = self
        self._subscribers: List[Tuple[_Node, int]] = []

    def _subscribe(self, node: "_Node", port: int) -> None:
        self._subscribers.append((node, port))

    def _publish(self, time: Timestamp, diffs: Batch) -> None:
        if not diffs:
            return
        for node, port in self._subscribers:
            node.accept(port, time, diffs)

    # ------------------------------------------------------------------
    # Operator constructors
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Record], Record]) -> "Stream":
        return _MapNode(self.dataflow, [self], fn).output

    def filter(self, predicate: Callable[[Record], bool]) -> "Stream":
        return _FilterNode(self.dataflow, [self], predicate).output

    def flat_map(self, fn: Callable[[Record], Iterable[Record]]) -> "Stream":
        return _FlatMapNode(self.dataflow, [self], fn).output

    def negate(self) -> "Stream":
        return _NegateNode(self.dataflow, [self]).output

    def concat(self, other: "Stream") -> "Stream":
        return _ConcatNode(self.dataflow, [self, other]).output

    def join(self, other: "Stream") -> "Stream":
        """Keyed join of ``(k, a)`` with ``(k, b)`` into ``(k, (a, b))``."""
        return _JoinNode(self.dataflow, [self, other]).output

    def reduce(self, fn: Callable[[Record, List[Record]], Iterable[Record]]
               ) -> "Stream":
        """Keyed group-reduce; ``fn(key, values) -> output values``."""
        return _ReduceNode(self.dataflow, [self], fn).output

    def distinct(self) -> "Stream":
        """Set semantics: every record's multiplicity becomes one."""
        return (
            self.map(lambda record: (record, ()))
            .reduce(lambda key, values: [()])
            .map(lambda record: record[0])
        )

    def count(self) -> "Stream":
        return self.reduce(lambda key, values: [len(values)])

    def sum_by_key(self) -> "Stream":
        return self.reduce(lambda key, values: [sum(values)])

    def min_by_key(self) -> "Stream":
        return self.reduce(lambda key, values: [min(values)])

    def semijoin(self, keys: "Stream") -> "Stream":
        """Keep ``(k, v)`` records whose key appears in ``keys``.

        ``keys`` carries bare-key records ``(k,)``; implemented as a
        join against the distinct key set, so retractions on either
        side propagate differentially.
        """
        key_set = keys.map(lambda rec: (rec[0], ())).distinct().map(
            lambda rec: rec  # (k, ())
        )
        return self.join(key_set).map(
            lambda rec: (rec[0], rec[1][0])
        )

    def antijoin(self, keys: "Stream") -> "Stream":
        """Keep ``(k, v)`` records whose key does NOT appear in ``keys``.

        ``self - semijoin(self, keys)`` as collections; both terms are
        maintained differentially.
        """
        return self.concat(self.semijoin(keys).negate())

    def join_map(self, other: "Stream", fn) -> "Stream":
        """``join`` then map each ``(k, (a, b))`` with ``fn(k, a, b)``."""
        return self.join(other).map(
            lambda rec: fn(rec[0], rec[1][0], rec[1][1])
        )

    def inspect(self, callback: Callable[[Timestamp, Batch], None]) -> "Stream":
        return _InspectNode(self.dataflow, [self], callback).output

    def probe(self) -> "Probe":
        node = _ProbeNode(self.dataflow, [self])
        return Probe(node)


class InputSession:
    """Producer handle for an input collection."""

    def __init__(self, dataflow: Dataflow, node: "_InputNode") -> None:
        self.dataflow = dataflow
        self._node = node
        self.stream = node.output

    def send(self, diffs: Iterable[Diff],
             time: Optional[Timestamp] = None) -> None:
        batch = _consolidate(diffs)
        if not batch:
            return
        stamp = self.dataflow.current_time if time is None else time
        self._node.accept(0, stamp, batch)

    def send_records(self, records: Iterable[Record],
                     time: Optional[Timestamp] = None) -> None:
        self.send(((record, 1) for record in records), time)


class Probe:
    """Accumulated view of a stream (the dataflow's observable output)."""

    def __init__(self, node: "_ProbeNode") -> None:
        self._node = node

    def state(self) -> Dict[Record, int]:
        """Current consolidated multiset."""
        return {
            record: mult
            for record, mult in self._node.accumulated.items()
            if mult != 0
        }

    def changes_since_last_call(self) -> Batch:
        """Diffs accumulated since the previous call (feedback driver)."""
        changes = _consolidate(self._node.recent)
        self._node.recent.clear()
        return changes


def iterate_to_fixpoint(
    dataflow: Dataflow,
    probe: Probe,
    feedback: InputSession,
    transform: Optional[Callable[[Batch], Batch]] = None,
    max_steps: int = 10_000,
) -> int:
    """Drive a feedback loop until quiescence; returns steps taken.

    Each round takes the probe's accumulated changes, optionally
    transforms them, advances the inner timestamp, and feeds them back
    through ``feedback``.  The caller's dataflow must be *contractive*
    under this feedback (e.g. monotone accumulation behind a
    ``distinct`` or ``min_by_key``), which holds for within-epoch
    fixpoints; cross-epoch retractions should instead re-derive through
    acyclic stages (see :mod:`repro.dataflow.graph_programs`).
    """
    probe.changes_since_last_call()  # establish the baseline
    dataflow.run()
    for step in range(max_steps):
        changes = probe.changes_since_last_call()
        if transform is not None:
            changes = transform(changes)
        changes = _consolidate(changes)
        if not changes:
            return step
        dataflow.advance_step()
        feedback.send(changes)
        dataflow.run()
    raise RuntimeError("feedback loop did not reach a fixpoint")


# ----------------------------------------------------------------------
# Nodes
# ----------------------------------------------------------------------
class _Node:
    def __init__(self, dataflow: Dataflow, upstreams: List[Stream]) -> None:
        self.dataflow = dataflow
        self.pending: deque = deque()
        self.output: Optional[Stream] = None
        Stream(dataflow, self)
        for port, upstream in enumerate(upstreams):
            upstream._subscribe(self, port)
        dataflow._register(self)

    def accept(self, port: int, time: Timestamp, diffs: Batch) -> None:
        self.pending.append((port, time, diffs))

    def drain(self) -> None:
        while self.pending:
            port, time, diffs = self.pending.popleft()
            self.dataflow.records_processed += len(diffs)
            self.process(port, time, diffs)

    def process(self, port: int, time: Timestamp, diffs: Batch) -> None:
        raise NotImplementedError

    def emit(self, time: Timestamp, diffs: Iterable[Diff]) -> None:
        self.output._publish(time, _consolidate(diffs))


class _InputNode(_Node):
    def __init__(self, dataflow: Dataflow) -> None:
        super().__init__(dataflow, [])

    def accept(self, port: int, time: Timestamp, diffs: Batch) -> None:
        # Inputs forward immediately; they are the DAG sources.
        self.dataflow.records_processed += len(diffs)
        self.emit(time, diffs)


class _MapNode(_Node):
    def __init__(self, dataflow, upstreams, fn):
        super().__init__(dataflow, upstreams)
        self._fn = fn

    def process(self, port, time, diffs):
        self.emit(time, [(self._fn(record), mult) for record, mult in diffs])


class _FilterNode(_Node):
    def __init__(self, dataflow, upstreams, predicate):
        super().__init__(dataflow, upstreams)
        self._predicate = predicate

    def process(self, port, time, diffs):
        self.emit(
            time,
            [(record, mult) for record, mult in diffs
             if self._predicate(record)],
        )


class _FlatMapNode(_Node):
    def __init__(self, dataflow, upstreams, fn):
        super().__init__(dataflow, upstreams)
        self._fn = fn

    def process(self, port, time, diffs):
        out: Batch = []
        for record, mult in diffs:
            for produced in self._fn(record):
                out.append((produced, mult))
        self.emit(time, out)


class _NegateNode(_Node):
    def process(self, port, time, diffs):
        self.emit(time, [(record, -mult) for record, mult in diffs])


class _ConcatNode(_Node):
    def process(self, port, time, diffs):
        self.emit(time, diffs)


class _InspectNode(_Node):
    def __init__(self, dataflow, upstreams, callback):
        super().__init__(dataflow, upstreams)
        self._callback = callback

    def process(self, port, time, diffs):
        self._callback(time, diffs)
        self.emit(time, diffs)


class _ProbeNode(_Node):
    def __init__(self, dataflow, upstreams):
        super().__init__(dataflow, upstreams)
        self.accumulated: Counter = Counter()
        self.recent: Batch = []

    def process(self, port, time, diffs):
        for record, mult in diffs:
            self.accumulated[record] += mult
        self.recent.extend(diffs)


class _JoinNode(_Node):
    """Differential binary join over (key, value) records.

    Each arriving batch joins against the *other* side's current trace
    and is then folded into its own trace; processing batches in arrival
    order realises dA⋈B + (A+dA)⋈dB = dA⋈B + A⋈dB + dA⋈dB.
    """

    def __init__(self, dataflow, upstreams):
        super().__init__(dataflow, upstreams)
        self._traces: List[Dict] = [{}, {}]

    def process(self, port, time, diffs):
        other = self._traces[1 - port]
        mine = self._traces[port]
        out: Batch = []
        for (key, value), mult in diffs:
            for other_value, other_mult in other.get(key, {}).items():
                if port == 0:
                    pair = (key, (value, other_value))
                else:
                    pair = (key, (other_value, value))
                out.append((pair, mult * other_mult))
            bucket = mine.setdefault(key, Counter())
            bucket[value] += mult
            if bucket[value] == 0:
                del bucket[value]
                if not bucket:
                    del mine[key]
        self.emit(time, out)


class _ReduceNode(_Node):
    """Differential group-by-key reduction.

    Maintains the per-key input multiset and the last emitted outputs;
    dirty keys are re-reduced and corrections (retract old, assert new)
    are emitted.
    """

    def __init__(self, dataflow, upstreams, fn):
        super().__init__(dataflow, upstreams)
        self._fn = fn
        self._inputs: Dict = {}
        self._outputs: Dict = {}

    def process(self, port, time, diffs):
        dirty = set()
        for (key, value), mult in diffs:
            bucket = self._inputs.setdefault(key, Counter())
            bucket[value] += mult
            if bucket[value] == 0:
                del bucket[value]
                if not bucket:
                    del self._inputs[key]
            dirty.add(key)
        out: Batch = []
        for key in dirty:
            bucket = self._inputs.get(key)
            if bucket is not None:
                if any(mult < 0 for mult in bucket.values()):
                    raise ValueError(
                        "reduce saw a negative multiplicity; feed it "
                        "positive collections"
                    )
                values: List = []
                for value, mult in bucket.items():
                    values.extend([value] * mult)
                new_out = Counter(
                    self._fn(key, sorted(values, key=repr))
                )
            else:
                new_out = Counter()
            old_out = self._outputs.get(key, Counter())
            if new_out != old_out:
                for value, mult in old_out.items():
                    out.append(((key, value), -mult))
                for value, mult in new_out.items():
                    out.append(((key, value), mult))
                if new_out:
                    self._outputs[key] = new_out
                else:
                    self._outputs.pop(key, None)
        self.emit(time, out)
