"""Observability: tracing, metrics, SLOs, wide events, export, dash.

Cooperating pieces (see ``docs/observability.md``):

- :mod:`repro.obs.trace` -- a span-based tracer.  Engines call
  ``trace.span("refine", batch=k)`` around every phase; the installed
  tracer records nested spans into a bounded ring buffer and an
  optional JSONL journal.  The *default* tracer is a no-op whose spans
  cost one function call, so instrumentation is effectively free until
  a tracer is installed (``tests/obs/test_overhead.py`` pins <5%).
- :mod:`repro.obs.registry` -- a process-wide metrics registry
  (counters, gauges, fixed-bucket histograms).  Engines feed their
  :class:`~repro.runtime.metrics.EngineMetrics` totals and live gauges
  (frontier density, history window, dependency bytes) into it;
  ``MetricsRegistry.to_json()`` exports everything.
- :mod:`repro.obs.render` -- renders a recorded span stream as a
  per-batch flame-style text breakdown (the ``repro trace`` command).
- :mod:`repro.obs.slo` -- declarative objectives over the serving
  surface with deterministic multi-window burn-rate alerts, journaled
  as first-class records and forwarded to pluggable sinks.
- :mod:`repro.obs.events` -- wide events: one structured record per
  applied batch / served query, every dimension plus a trace exemplar.
- :mod:`repro.obs.export` -- Prometheus-text-format rendering of the
  registry, to a file or a stdlib HTTP ``/metrics`` endpoint.
- :mod:`repro.obs.dash` -- the ``repro dash`` terminal dashboard over
  journaled health snapshots, wide events, and alerts.
"""

from repro.obs.events import WideEventEmitter
from repro.obs.export import (
    MetricsHTTPServer,
    render_prometheus,
    write_metrics,
)
from repro.obs.journal import JsonlJournal, read_journal
from repro.obs.registry import (
    MetricsRegistry,
    get_registry,
    ingest_engine_metrics,
    set_registry,
)
from repro.obs.render import format_trace, phase_breakdown
from repro.obs.slo import (
    SLO,
    Alert,
    AlertSink,
    BreakerAlertSink,
    RecordingSink,
    SLOError,
    SLOEvaluator,
    lint_slo_dir,
    load_slo_file,
)
from repro.obs.trace import NULL_TRACER, Tracer, activated, get_tracer

__all__ = [
    "Alert",
    "AlertSink",
    "BreakerAlertSink",
    "JsonlJournal",
    "MetricsHTTPServer",
    "MetricsRegistry",
    "NULL_TRACER",
    "RecordingSink",
    "SLO",
    "SLOError",
    "SLOEvaluator",
    "Tracer",
    "WideEventEmitter",
    "activated",
    "format_trace",
    "get_registry",
    "get_tracer",
    "ingest_engine_metrics",
    "lint_slo_dir",
    "load_slo_file",
    "phase_breakdown",
    "read_journal",
    "render_prometheus",
    "set_registry",
    "write_metrics",
]
