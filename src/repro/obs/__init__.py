"""Observability: span tracing, metrics registry, trace rendering.

Three cooperating pieces (see ``docs/observability.md``):

- :mod:`repro.obs.trace` -- a span-based tracer.  Engines call
  ``trace.span("refine", batch=k)`` around every phase; the installed
  tracer records nested spans into a bounded ring buffer and an
  optional JSONL journal.  The *default* tracer is a no-op whose spans
  cost one function call, so instrumentation is effectively free until
  a tracer is installed (``tests/obs/test_overhead.py`` pins <5%).
- :mod:`repro.obs.registry` -- a process-wide metrics registry
  (counters, gauges, fixed-bucket histograms).  Engines feed their
  :class:`~repro.runtime.metrics.EngineMetrics` totals and live gauges
  (frontier density, history window, dependency bytes) into it;
  ``MetricsRegistry.to_json()`` exports everything.
- :mod:`repro.obs.render` -- renders a recorded span stream as a
  per-batch flame-style text breakdown (the ``repro trace`` command).
"""

from repro.obs.journal import JsonlJournal, read_journal
from repro.obs.registry import (
    MetricsRegistry,
    get_registry,
    ingest_engine_metrics,
    set_registry,
)
from repro.obs.render import format_trace, phase_breakdown
from repro.obs.trace import NULL_TRACER, Tracer, activated, get_tracer

__all__ = [
    "JsonlJournal",
    "MetricsRegistry",
    "NULL_TRACER",
    "Tracer",
    "activated",
    "format_trace",
    "get_registry",
    "get_tracer",
    "ingest_engine_metrics",
    "phase_breakdown",
    "read_journal",
    "set_registry",
]
