"""Render a recorded span stream as per-batch text breakdowns.

The tracer emits spans post-order as a flat list of dicts with
``id``/``parent`` links (:mod:`repro.obs.trace`).  :func:`build_tree`
reconstructs the forest; :func:`phase_breakdown` aggregates it into
per-batch phase totals; :func:`format_trace` renders the flame-style
text view used by ``repro trace``::

    batch 2  mutations=100                                 35.1ms
      adjust_structure                   2.1ms     6.0%  #
      refine  x1                        21.3ms    60.7%  ############
        iteration  x7                   21.0ms    98.6%  ...
      forward  x1                        9.8ms    27.9%  #####

Repeated same-name siblings (iterations, most commonly) are collapsed
into one line carrying the count and summed duration, so a 100-
iteration run stays readable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

__all__ = ["build_tree", "format_trace", "phase_breakdown"]

_BAR_WIDTH = 24


def build_tree(events: Iterable[Dict]) -> List[Dict]:
    """Reconstruct the span forest from a flat (post-order) stream.

    Returns root nodes; every node is ``{"name", "tags", "duration",
    "start", "children"}`` with children ordered by start time.
    Orphans (parents evicted from the ring buffer) become roots.
    """
    nodes: Dict[int, Dict] = {}
    roots: List[Dict] = []
    spans = [e for e in events if e.get("type") == "span"]
    for event in spans:
        nodes[event["id"]] = {
            "name": event["name"],
            "tags": event.get("tags", {}),
            "start": event.get("start", 0.0),
            "duration": event.get("duration", 0.0),
            "children": [],
        }
    for event in spans:
        node = nodes[event["id"]]
        parent = nodes.get(event.get("parent"))
        if parent is not None:
            parent["children"].append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node["children"].sort(key=lambda child: child["start"])
    roots.sort(key=lambda node: node["start"])
    return roots


def _collapse(children: List[Dict]) -> List[Dict]:
    """Merge same-name siblings into one entry with a count."""
    merged: Dict[str, Dict] = {}
    order: List[str] = []
    for child in children:
        entry = merged.get(child["name"])
        if entry is None:
            entry = {
                "name": child["name"],
                "count": 0,
                "duration": 0.0,
                "start": child["start"],
                "tags": dict(child["tags"]),
                "children": [],
            }
            merged[child["name"]] = entry
            order.append(child["name"])
        entry["count"] += 1
        entry["duration"] += child["duration"]
        entry["children"].extend(child["children"])
    return [merged[name] for name in order]


def phase_breakdown(events: Iterable[Dict]) -> List[Dict]:
    """Per-root phase totals: each root span (typically one ``batch``
    or ``initial_run``) with its collapsed direct phases."""
    breakdown = []
    for root in build_tree(events):
        phases = [
            {
                "name": entry["name"],
                "count": entry["count"],
                "seconds": entry["duration"],
            }
            for entry in _collapse(root["children"])
        ]
        breakdown.append({
            "name": root["name"],
            "tags": root["tags"],
            "seconds": root["duration"],
            "phases": phases,
        })
    return breakdown


def _format_tags(tags: Dict) -> str:
    return "  ".join(
        f"{key}={value}" for key, value in tags.items()
        if key not in ("engine",)
    )


def _format_node(entry: Dict, parent_seconds: float, depth: int,
                 lines: List[str], max_depth: int) -> None:
    fraction = (
        entry["duration"] / parent_seconds if parent_seconds > 0 else 0.0
    )
    bar = "#" * max(1, round(fraction * _BAR_WIDTH)) if fraction else ""
    label = entry["name"]
    if entry["count"] > 1:
        label += f"  x{entry['count']}"
    indent = "  " * depth
    lines.append(
        f"{indent}{label:<{38 - 2 * depth}}"
        f"{entry['duration'] * 1000:>9.2f}ms {fraction * 100:>6.1f}%  {bar}"
    )
    if depth < max_depth:
        for child in _collapse(entry["children"]):
            _format_node(child, entry["duration"], depth + 1, lines,
                         max_depth)


def format_trace(events: Iterable[Dict], title: Optional[str] = None,
                 max_depth: int = 2) -> str:
    """The flame-style text breakdown (see module docstring)."""
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    roots = build_tree(events)
    if not roots:
        lines.append("(no spans recorded)")
        return "\n".join(lines)
    for root in roots:
        tags = _format_tags(root["tags"])
        header = root["name"] + (f"  {tags}" if tags else "")
        lines.append(f"{header:<47}{root['duration'] * 1000:>9.2f}ms")
        for child in _collapse(root["children"]):
            _format_node(child, root["duration"], 1, lines, max_depth)
        lines.append("")
    return "\n".join(lines).rstrip("\n") + "\n"
