"""The JSONL journal sink.

One JSON object per line, written as records arrive and flushed per
record so a crashed or killed process (a fuzz worker, a CI job) still
leaves a readable journal behind.  The journal accepts *any* dict with
a ``"type"`` discriminator; the repository emits:

``span``    finished tracer spans (:mod:`repro.obs.trace`)
``run``     one header per CLI run (engine, algorithm, graph spec)
``batch``   per-batch latency/work records (``repro run --json``)
``repro``   fuzz-failure markers preceding a replayed trace dump

See ``docs/observability.md`` for the field-level schema.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

__all__ = ["JsonlJournal", "read_journal"]


def _default(value):
    """Serialise numpy scalars and other ``item()``-bearing types."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


class JsonlJournal:
    """Append-only JSONL writer over a path or an existing stream."""

    def __init__(self, stream, close_on_exit: bool = False) -> None:
        self._stream = stream
        self._close_on_exit = close_on_exit
        self.records_written = 0

    @classmethod
    def open(cls, path: str, append: bool = False) -> "JsonlJournal":
        mode = "a" if append else "w"
        return cls(open(path, mode, encoding="utf-8"), close_on_exit=True)

    def write(self, record: Dict) -> None:
        self._stream.write(
            json.dumps(record, default=_default, separators=(",", ":"))
        )
        self._stream.write("\n")
        flush = getattr(self._stream, "flush", None)
        if flush is not None:
            flush()
        self.records_written += 1

    def close(self) -> None:
        if self._close_on_exit:
            self._stream.close()

    def __enter__(self) -> "JsonlJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_journal(path: str,
                 record_type: Optional[str] = None) -> List[Dict]:
    """Load a journal; optionally keep only one record type."""
    records = []
    with open(path, encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record_type is None or record.get("type") == record_type:
                records.append(record)
    return records
