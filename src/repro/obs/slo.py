"""Declarative SLOs with deterministic multi-window burn-rate alerts.

An :class:`SLO` states an objective over one named *signal* of the
serving surface -- ``ingest_latency < 0.75``, ``queue_depth <= 6`` --
plus an error budget: the fraction of observations allowed to violate
the objective.  The :class:`SLOEvaluator` consumes one sample mapping
per applied batch (a *tick*) and tracks, per SLO, the violating
fraction over two sliding windows in the Google-SRE multi-window
burn-rate style:

- the **fast** window catches a sharp burn quickly (the "5m" window of
  the SRE workbook);
- the **slow** window confirms it is sustained, filtering one-batch
  blips (the "1h" window).

Both windows are expressed in *batch counts*, never wall-clock, so the
same sample sequence always produces the same alert sequence -- the
alert index of a planted fault is an exact-match test, not a sleep-and-
hope one.  The burn rate is ``violating_fraction / budget``: burn 1.0
spends the budget exactly at the sustainable rate, burn 6.0 spends it
six times too fast.  An alert **fires** when *both* windows exceed
their thresholds and **resolves** when the fast window falls back
under its threshold.

Alerts are first-class records: journaled (``{"type": "alert", ...}``),
surfaced as registry gauges (``slo.<name>.fast_burn`` / ``slow_burn`` /
``firing``) and counters (``slo.alerts_fired`` / ``alerts_resolved``),
and forwarded to a pluggable :class:`AlertSink`.
:class:`BreakerAlertSink` bridges alerts into the PR-5 circuit breaker
-- observe-only by default (it counts notifications without acting),
pinned by tests; pass ``act=True`` for a deployment that wants a page
to also shed load.

SLO files live under ``benchmarks/slos/`` (YAML; see
``docs/observability.md`` for the schema) and are linted in CI via
``repro slo-lint``.
"""

from __future__ import annotations

import os
import re
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional, Sequence

from repro.obs.registry import MetricsRegistry, get_registry

__all__ = [
    "SIGNALS",
    "SEVERITIES",
    "SLO",
    "SLOError",
    "Alert",
    "AlertSink",
    "RecordingSink",
    "BreakerAlertSink",
    "SLOEvaluator",
    "slos_dir",
    "resolve_slo_path",
    "load_slo_file",
    "lint_slo_file",
    "lint_slo_dir",
]

#: The signal vocabulary: everything an SLO objective may constrain.
#: Samples are drawn from the health surface and the per-batch
#: measurements of the serving loop (see ``serving/observe.py``).
SIGNALS: Dict[str, str] = {
    "ingest_latency": "seconds the engine spent applying the last batch",
    "query_latency": "seconds of the most recent branch-loop query",
    "queue_depth": "admission queue entries after the batch applied",
    "staleness_batches": "submitted batches not yet reflected in values",
    "degraded_query_ratio": "fraction of served queries that degraded",
    "quarantine_count": "poison batches quarantined so far",
    "breaker_open": "1.0 while the circuit breaker is not CLOSED",
    "shard_imbalance": "max/mean of the measured per-shard load vector",
    "replica_staleness": "worst replica backlog of shipped-but-"
                         "unapplied WAL records (dead replicas count)",
}

SEVERITIES = ("page", "ticket")

_OPS = {
    "<": lambda value, bound: value < bound,
    "<=": lambda value, bound: value <= bound,
    ">": lambda value, bound: value > bound,
    ">=": lambda value, bound: value >= bound,
}

_OBJECTIVE_RE = re.compile(
    r"^\s*(<=|>=|<|>)\s*([-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)\s*$"
)


class SLOError(ValueError):
    """An SLO definition failed validation."""


@dataclass(frozen=True)
class SLO:
    """One declarative objective with its burn-rate alert policy.

    ``budget`` is the violating fraction allowed in steady state (a
    budget of 0.1 tolerates one bad batch in ten); ``fast_window`` /
    ``slow_window`` are sliding windows in batch counts; ``fast_burn``
    / ``slow_burn`` are the burn-rate thresholds both windows must
    exceed for the alert to fire.  ``runbook`` names the section of
    ``docs/operations.md`` an operator should open first.
    """

    name: str
    signal: str
    op: str
    threshold: float
    budget: float = 0.1
    fast_window: int = 4
    slow_window: int = 16
    fast_burn: float = 5.0
    slow_burn: float = 2.5
    severity: str = "page"
    runbook: str = ""

    def __post_init__(self) -> None:
        if not self.name or not re.fullmatch(r"[a-z0-9][a-z0-9_-]*",
                                             self.name):
            raise SLOError(
                f"SLO name {self.name!r} must be lowercase "
                f"kebab/snake-case"
            )
        if self.signal not in SIGNALS:
            raise SLOError(
                f"SLO {self.name!r}: unknown signal {self.signal!r} "
                f"(choose from {sorted(SIGNALS)})"
            )
        if self.op not in _OPS:
            raise SLOError(
                f"SLO {self.name!r}: op must be one of {sorted(_OPS)}"
            )
        if not 0.0 < self.budget <= 1.0:
            raise SLOError(
                f"SLO {self.name!r}: budget must be in (0, 1], "
                f"got {self.budget!r}"
            )
        if self.fast_window < 1 or self.slow_window < self.fast_window:
            raise SLOError(
                f"SLO {self.name!r}: need 1 <= fast_window <= "
                f"slow_window, got {self.fast_window}/{self.slow_window}"
            )
        if self.fast_burn <= 0 or self.slow_burn <= 0:
            raise SLOError(
                f"SLO {self.name!r}: burn thresholds must be positive"
            )
        if self.severity not in SEVERITIES:
            raise SLOError(
                f"SLO {self.name!r}: severity must be one of "
                f"{SEVERITIES}, got {self.severity!r}"
            )

    def is_good(self, value: float) -> bool:
        """Does one observation satisfy the objective?"""
        return _OPS[self.op](value, self.threshold)

    @property
    def objective(self) -> str:
        return f"{self.signal} {self.op} {self.threshold:g}"


@dataclass(frozen=True)
class Alert:
    """One alert state change -- a first-class, journalable record."""

    slo: str
    state: str  # "firing" | "resolved"
    severity: str
    index: int  # batch tick at which the transition happened
    fast_burn: float
    slow_burn: float
    signal: str
    value: float  # the sample that tipped the transition
    objective: str = ""
    runbook: str = ""

    def to_record(self) -> Dict:
        return {
            "type": "alert",
            "slo": self.slo,
            "state": self.state,
            "severity": self.severity,
            "index": self.index,
            "fast_burn": round(self.fast_burn, 6),
            "slow_burn": round(self.slow_burn, 6),
            "signal": self.signal,
            "value": round(float(self.value), 6),
            "objective": self.objective,
            "runbook": self.runbook,
        }


class AlertSink:
    """Receives alert transitions; the base class observes silently."""

    def notify(self, alert: Alert) -> None:  # pragma: no cover - no-op
        pass


class RecordingSink(AlertSink):
    """Collects alerts in memory (tests, the experiment matrix)."""

    def __init__(self) -> None:
        self.alerts: List[Alert] = []

    def notify(self, alert: Alert) -> None:
        self.alerts.append(alert)


class BreakerAlertSink(AlertSink):
    """Bridge alerts into the PR-5 circuit breaker.

    **Observe-only by default**: notifications are recorded and counted
    (``slo.breaker_notifications``) but the breaker is not touched, so
    attaching the sink never changes serving behaviour -- the posture
    the tests pin.  Pass ``act=True`` to let a firing page-severity
    alert trip the breaker OPEN (deferred applies, degraded admission;
    see ``docs/operations.md``).
    """

    def __init__(self, breaker, act: bool = False,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.breaker = breaker
        self.act = act
        self.notified: List[Alert] = []
        self._registry = registry

    def notify(self, alert: Alert) -> None:
        self.notified.append(alert)
        registry = (self._registry if self._registry is not None
                    else get_registry())
        registry.counter("slo.breaker_notifications").inc()
        if (self.act and alert.state == "firing"
                and alert.severity == "page"):
            self.breaker.trip(
                f"slo {alert.slo} burning {alert.fast_burn:.1f}x "
                f"(fast) / {alert.slow_burn:.1f}x (slow)"
            )


@dataclass
class _SLOState:
    """Mutable evaluation state for one SLO."""

    slo: SLO
    flags: Deque[int] = field(default_factory=deque)  # 1 = violating
    firing: bool = False
    ticks_seen: int = 0
    last_value: float = float("nan")

    def __post_init__(self) -> None:
        self.flags = deque(self.flags, maxlen=self.slo.slow_window)

    def burn(self, window: int) -> float:
        if not self.flags:
            return 0.0
        recent = list(self.flags)[-window:]
        return (sum(recent) / len(recent)) / self.slo.budget


class SLOEvaluator:
    """Deterministic per-batch evaluation of a set of SLOs.

    Call :meth:`tick` once per applied batch with a sample mapping
    (signal name -> value).  A tick that lacks an SLO's signal leaves
    that SLO's windows untouched -- "no data" is neither good nor bad.
    Returns the alerts that transitioned on this tick.
    """

    def __init__(self, slos: Sequence[SLO], journal=None,
                 sink: Optional[AlertSink] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        names = [slo.name for slo in slos]
        if len(set(names)) != len(names):
            raise SLOError(f"duplicate SLO names in {names}")
        self._states = [_SLOState(slo) for slo in slos]
        self._journal = journal
        self._sink = sink
        self._registry = registry
        self.ticks = 0
        self.alerts: List[Alert] = []

    @property
    def slos(self) -> List[SLO]:
        return [state.slo for state in self._states]

    def _reg(self) -> MetricsRegistry:
        return (self._registry if self._registry is not None
                else get_registry())

    def tick(self, samples: Mapping[str, float],
             index: Optional[int] = None) -> List[Alert]:
        """Evaluate one batch worth of samples; returns transitions."""
        tick_index = self.ticks if index is None else index
        self.ticks += 1
        registry = self._reg()
        emitted: List[Alert] = []
        for state in self._states:
            slo = state.slo
            if slo.signal not in samples:
                continue
            value = float(samples[slo.signal])
            state.last_value = value
            state.ticks_seen += 1
            state.flags.append(0 if slo.is_good(value) else 1)
            fast = state.burn(slo.fast_window)
            slow = state.burn(slo.slow_window)
            registry.gauge(f"slo.{slo.name}.fast_burn").set(
                round(fast, 6))
            registry.gauge(f"slo.{slo.name}.slow_burn").set(
                round(slow, 6))
            alert: Optional[Alert] = None
            if (not state.firing and fast >= slo.fast_burn
                    and slow >= slo.slow_burn):
                state.firing = True
                registry.counter("slo.alerts_fired").inc()
                alert = self._alert(state, "firing", tick_index, fast,
                                    slow)
            elif state.firing and fast < slo.fast_burn:
                state.firing = False
                registry.counter("slo.alerts_resolved").inc()
                alert = self._alert(state, "resolved", tick_index, fast,
                                    slow)
            registry.gauge(f"slo.{slo.name}.firing").set(
                1 if state.firing else 0)
            if alert is not None:
                emitted.append(alert)
                self.alerts.append(alert)
                if self._journal is not None:
                    self._journal.write(alert.to_record())
                if self._sink is not None:
                    self._sink.notify(alert)
        return emitted

    def _alert(self, state: _SLOState, kind: str, index: int,
               fast: float, slow: float) -> Alert:
        slo = state.slo
        return Alert(
            slo=slo.name, state=kind, severity=slo.severity,
            index=index, fast_burn=fast, slow_burn=slow,
            signal=slo.signal, value=state.last_value,
            objective=slo.objective, runbook=slo.runbook,
        )

    @property
    def firing(self) -> List[str]:
        """Names of the SLOs currently in the firing state."""
        return [state.slo.name for state in self._states if state.firing]

    def status(self) -> List[Dict]:
        """One summary row per SLO, for the dashboard and ``--status``."""
        rows = []
        for state in self._states:
            slo = state.slo
            rows.append({
                "name": slo.name,
                "objective": slo.objective,
                "severity": slo.severity,
                "state": "FIRING" if state.firing else (
                    "ok" if state.ticks_seen else "no-data"),
                "fast_burn": round(state.burn(slo.fast_window), 3),
                "slow_burn": round(state.burn(slo.slow_window), 3),
                "last_value": state.last_value,
                "ticks": state.ticks_seen,
                "runbook": slo.runbook,
            })
        return rows


# ----------------------------------------------------------------------
# YAML loading and linting
# ----------------------------------------------------------------------
#: Bump on incompatible changes to the SLO-file layout.
SLO_FILE_SCHEMA = 1

_ENTRY_KEYS = {"name", "signal", "objective", "budget", "windows",
               "burn", "severity", "runbook"}


def slos_dir() -> str:
    """``benchmarks/slos/`` at the repository root."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )))
    return os.path.join(here, "benchmarks", "slos")


def resolve_slo_path(name_or_path: str) -> str:
    """A bare name resolves under ``benchmarks/slos/``."""
    if os.path.sep in name_or_path or name_or_path.endswith(".yaml"):
        return name_or_path
    return os.path.join(slos_dir(), f"{name_or_path}.yaml")


def _parse_entry(raw: Dict, path: str) -> SLO:
    if not isinstance(raw, dict):
        raise SLOError(f"{path}: each SLO entry must be a mapping")
    unknown = set(raw) - _ENTRY_KEYS
    if unknown:
        raise SLOError(
            f"{path}: SLO {raw.get('name', '?')!r} has unknown keys "
            f"{sorted(unknown)} (choose from {sorted(_ENTRY_KEYS)})"
        )
    for key in ("name", "signal", "objective"):
        if key not in raw:
            raise SLOError(
                f"{path}: SLO entry missing required key {key!r}")
    match = _OBJECTIVE_RE.match(str(raw["objective"]))
    if match is None:
        raise SLOError(
            f"{path}: SLO {raw['name']!r} objective "
            f"{raw['objective']!r} must look like '< 0.75'"
        )
    windows = raw.get("windows") or {}
    burn = raw.get("burn") or {}
    if not isinstance(windows, dict) or not isinstance(burn, dict):
        raise SLOError(
            f"{path}: SLO {raw['name']!r}: 'windows' and 'burn' must "
            f"be mappings with 'fast'/'slow' keys"
        )
    kwargs = {}
    if "budget" in raw:
        kwargs["budget"] = float(raw["budget"])
    if "fast" in windows:
        kwargs["fast_window"] = int(windows["fast"])
    if "slow" in windows:
        kwargs["slow_window"] = int(windows["slow"])
    if "fast" in burn:
        kwargs["fast_burn"] = float(burn["fast"])
    if "slow" in burn:
        kwargs["slow_burn"] = float(burn["slow"])
    if "severity" in raw:
        kwargs["severity"] = str(raw["severity"])
    if "runbook" in raw:
        kwargs["runbook"] = str(raw["runbook"])
    return SLO(
        name=str(raw["name"]), signal=str(raw["signal"]),
        op=match.group(1), threshold=float(match.group(2)), **kwargs,
    )


def load_slo_file(name_or_path: str) -> List[SLO]:
    """Parse and validate one SLO YAML file.

    The file is a mapping with ``schema: 1`` and an ``slos:`` list;
    every entry must validate against the signal vocabulary.
    """
    import yaml

    path = resolve_slo_path(name_or_path)
    if not os.path.exists(path):
        raise SLOError(f"SLO file not found: {path}")
    with open(path) as handle:
        raw = yaml.safe_load(handle)
    if not isinstance(raw, dict):
        raise SLOError(f"{path}: SLO file must be a mapping")
    schema = raw.get("schema", SLO_FILE_SCHEMA)
    if schema != SLO_FILE_SCHEMA:
        raise SLOError(
            f"{path}: unsupported schema {schema!r} (this build reads "
            f"schema {SLO_FILE_SCHEMA})"
        )
    entries = raw.get("slos")
    if not isinstance(entries, list) or not entries:
        raise SLOError(f"{path}: 'slos' must be a non-empty list")
    slos = [_parse_entry(entry, path) for entry in entries]
    names = [slo.name for slo in slos]
    if len(set(names)) != len(names):
        raise SLOError(f"{path}: duplicate SLO names")
    return slos


def lint_slo_file(path: str) -> List[str]:
    """Validation errors for one file ([] when clean)."""
    try:
        load_slo_file(path)
    except SLOError as exc:
        return [str(exc)]
    except Exception as exc:  # noqa: BLE001 -- malformed YAML etc.
        return [f"{path}: {type(exc).__name__}: {exc}"]
    return []


def lint_slo_dir(directory: Optional[str] = None) -> Dict[str, List[str]]:
    """Lint every ``*.yaml`` under a directory (default
    ``benchmarks/slos/``); returns ``{path: errors}`` for dirty files.
    """
    directory = directory if directory is not None else slos_dir()
    problems: Dict[str, List[str]] = {}
    if not os.path.isdir(directory):
        return {directory: [f"not a directory: {directory}"]}
    names = sorted(os.listdir(directory))
    yaml_names = [name for name in names if name.endswith(".yaml")]
    if not yaml_names:
        return {directory: [f"no SLO files under {directory}"]}
    for name in yaml_names:
        path = os.path.join(directory, name)
        errors = lint_slo_file(path)
        if errors:
            problems[path] = errors
    return problems
