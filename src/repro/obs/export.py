"""Prometheus-text-format export of the metrics registry.

:func:`render_prometheus` renders every instrument of a
:class:`~repro.obs.registry.MetricsRegistry` in the Prometheus text
exposition format (version 0.0.4): counters and gauges as single
samples, histograms as cumulative ``_bucket{le="..."}`` series plus
``_sum``/``_count``.  Dotted repository names (``serving.queue_depth``)
become legal Prometheus names under a ``repro_`` prefix
(``repro_serving_queue_depth``).

Two delivery paths, both stdlib-only:

- :func:`write_metrics` renders to a file (the node-exporter textfile
  pattern -- point a scraper's textfile collector at it);
- :class:`MetricsHTTPServer` serves ``GET /metrics`` from a background
  thread (``repro serve --serve-metrics PORT``), rendering the
  *current* process-wide registry at request time so live scrapes see
  live values.  Port 0 binds an ephemeral port (tests).
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)

__all__ = [
    "prometheus_name",
    "render_prometheus",
    "write_metrics",
    "MetricsHTTPServer",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str) -> str:
    """A registry name as a legal, prefixed Prometheus metric name."""
    sanitized = _NAME_RE.sub("_", name)
    if not sanitized or not (sanitized[0].isalpha()
                             or sanitized[0] in "_:"):
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def _format_value(value) -> str:
    number = float(value)
    if number == float("inf"):
        return "+Inf"
    if number == float("-inf"):
        return "-Inf"
    if number.is_integer():
        return str(int(number))
    return repr(number)


def _render_histogram(name: str, histogram: Histogram,
                      lines: List[str]) -> None:
    lines.append(f"# TYPE {name} histogram")
    cumulative = 0
    for bound, count in zip(histogram.bounds, histogram.counts):
        cumulative += count
        lines.append(
            f'{name}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
        )
    lines.append(f'{name}_bucket{{le="+Inf"}} {histogram.count}')
    lines.append(f"{name}_sum {_format_value(histogram.sum)}")
    lines.append(f"{name}_count {histogram.count}")


def render_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """The whole registry in Prometheus text exposition format."""
    registry = registry if registry is not None else get_registry()
    lines: List[str] = []
    for raw_name in registry.names():
        instrument = registry._instruments[raw_name]
        name = prometheus_name(raw_name)
        lines.append(f"# HELP {name} repro metric {raw_name!r}")
        if isinstance(instrument, Counter):
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_format_value(instrument.value)}")
        elif isinstance(instrument, Gauge):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(instrument.value)}")
        elif isinstance(instrument, Histogram):
            _render_histogram(name, instrument, lines)
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics(path: str,
                  registry: Optional[MetricsRegistry] = None) -> str:
    """Render the registry to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_prometheus(registry))
    return path


class _MetricsHandler(BaseHTTPRequestHandler):
    """GET /metrics -> the live registry; anything else 404."""

    server_version = "repro-metrics/1"

    def do_GET(self) -> None:  # noqa: N802 -- http.server API
        if self.path.split("?")[0] not in ("/metrics", "/"):
            self.send_error(404, "try /metrics")
            return
        registry = self.server.registry  # type: ignore[attr-defined]
        body = render_prometheus(registry).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type",
                         "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args) -> None:  # noqa: A002
        pass  # scrapes are high-frequency; stay quiet


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    # Re-renders at request time; None means "the process-wide registry
    # current at scrape time" (scoped_registry swaps are honoured).
    registry: Optional[MetricsRegistry] = None


class MetricsHTTPServer:
    """A background ``/metrics`` endpoint over the registry.

    ``port=0`` binds an ephemeral port, exposed as :attr:`port` after
    construction.  Use as a context manager or call :meth:`close`.
    """

    def __init__(self, port: int = 0, host: str = "127.0.0.1",
                 registry: Optional[MetricsRegistry] = None) -> None:
        self._httpd = _Server((host, port), _MetricsHandler)
        self._httpd.registry = registry
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics",
            daemon=True,
        )
        self._thread.start()

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}/metrics"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "MetricsHTTPServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
