"""Span-based tracing with a zero-cost disabled path.

Usage at an instrumentation site::

    from repro.obs import trace

    with trace.span("refine", batch=3, horizon=7) as sp:
        ...
        sp.tag(mode="dense")

``trace.span`` dispatches to the *installed* tracer.  By default that
is :data:`NULL_TRACER`, whose ``span`` returns a shared no-op context
manager -- the disabled cost is one method call plus the keyword dict,
which the overhead test bounds at <5% of engine runtime even for
per-iteration spans.  Installing a :class:`Tracer` (directly, via
:func:`activated`, or through ``repro run --trace-out``) turns the
same call sites into a recorded span tree.

Recorded spans are emitted *post-order on exit* as plain dicts:

``{"type": "span", "id": 4, "parent": 1, "name": "refine",``
``"start": 0.01, "duration": 0.002, "tags": {...}}``

``id`` is a per-tracer sequential counter and ``parent`` links the
enclosing span (``None`` at the root), so the tree is reconstructible
from the flat stream (:func:`repro.obs.render.build_tree`).  Ids
depend only on control flow, never on timing, so two runs of the same
workload produce the same tree shape -- which is what lets the fuzz
harness attach trace dumps to shrunk failure repros.

The tracer keeps the most recent ``capacity`` spans in a ring buffer
and optionally forwards every span to a sink (anything with a
``write(record: dict)`` method, e.g. :class:`repro.obs.journal.JsonlJournal`).
Ring evictions are never silent: each one increments
``Tracer.dropped`` and the ``trace.dropped_spans`` registry counter,
and ``repro trace`` prints a warning when the buffer overflowed.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional

from repro.obs.registry import get_registry

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "activated",
    "enabled",
    "get_tracer",
    "install",
    "span",
]


class _NullSpan:
    """Shared do-nothing span handed out by the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def tag(self, **tags) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every span is the shared no-op."""

    enabled = False
    dropped = 0

    def span(self, name: str, **tags) -> _NullSpan:
        return _NULL_SPAN

    def events(self) -> List[Dict]:
        return []

    def mark(self) -> int:
        return 0

    def slowest_since(self, mark: int) -> Optional[Dict]:
        return None


NULL_TRACER = NullTracer()


class Span:
    """One live span; records itself into the tracer on exit."""

    __slots__ = ("_tracer", "name", "tags", "id", "parent", "start",
                 "duration")

    def __init__(self, tracer: "Tracer", name: str, tags: Dict) -> None:
        self._tracer = tracer
        self.name = name
        self.tags = tags
        self.id: Optional[int] = None
        self.parent: Optional[int] = None
        self.start = 0.0
        self.duration = 0.0

    def tag(self, **tags) -> None:
        """Attach tags discovered mid-span (e.g. the mode chosen)."""
        self.tags.update(tags)

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.id = tracer._next_id
        tracer._next_id += 1
        stack = tracer._stack
        self.parent = stack[-1] if stack else None
        stack.append(self.id)
        self.start = tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        self.duration = tracer._clock() - self.start
        tracer._stack.pop()
        if exc_type is not None:
            self.tags["error"] = exc_type.__name__
        tracer._finish(self)
        return False


class Tracer:
    """Records a span tree into a ring buffer and an optional sink.

    ``capacity`` bounds the in-memory buffer (oldest spans fall off);
    the sink, if any, sees every span.  ``clock`` is injectable for
    tests (defaults to :func:`time.perf_counter`, rebased so the first
    span starts near zero).
    """

    enabled = True

    def __init__(self, capacity: int = 65536, sink=None,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self._buffer: deque = deque(maxlen=capacity)
        self._sink = sink
        self._stack: List[int] = []
        self._next_id = 0
        self._epoch = clock()
        self._raw_clock = clock
        self._clock = lambda: self._raw_clock() - self._epoch
        self.dropped = 0

    def span(self, name: str, **tags) -> Span:
        return Span(self, name, tags)

    def _finish(self, span: Span) -> None:
        record = {
            "type": "span",
            "id": span.id,
            "parent": span.parent,
            "name": span.name,
            "start": span.start,
            "duration": span.duration,
            "tags": span.tags,
        }
        if (self._buffer.maxlen is not None
                and len(self._buffer) == self._buffer.maxlen):
            # The ring is about to evict its oldest span: count the
            # loss instead of dropping silently (``repro trace`` warns
            # when this is non-zero; a sink still sees every span).
            self.dropped += 1
            get_registry().counter("trace.dropped_spans").inc()
        self._buffer.append(record)
        if self._sink is not None:
            self._sink.write(record)

    def events(self) -> List[Dict]:
        """Finished spans, oldest first (bounded by ``capacity``)."""
        return list(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()

    def mark(self) -> int:
        """A position in the span-id sequence; pair with
        :meth:`slowest_since` to pick a trace exemplar for one unit of
        work (ids are assigned at span *entry*, so a mark taken before
        an apply covers the apply's root span and everything inside)."""
        return self._next_id

    def slowest_since(self, mark: int) -> Optional[Dict]:
        """The buffered span with the largest duration among spans
        opened at or after ``mark`` -- the wide-event trace exemplar.
        Returns ``None`` when no such span survives in the ring."""
        slowest: Optional[Dict] = None
        for record in self._buffer:
            if record["id"] < mark:
                continue
            if slowest is None or record["duration"] > slowest["duration"]:
                slowest = record
        return slowest


# ----------------------------------------------------------------------
# The installed tracer (process-wide dispatch point)
# ----------------------------------------------------------------------
_ACTIVE = NULL_TRACER


def span(name: str, **tags):
    """Open a span on the installed tracer (no-op when disabled)."""
    return _ACTIVE.span(name, **tags)


def enabled() -> bool:
    """True when a recording tracer is installed -- guard any tag
    computation that is expensive enough to matter when disabled."""
    return _ACTIVE.enabled


def get_tracer():
    return _ACTIVE


def install(tracer) -> object:
    """Install ``tracer`` process-wide; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def activated(tracer):
    """Install ``tracer`` for the duration of a ``with`` block."""
    previous = install(tracer)
    try:
        yield tracer
    finally:
        install(previous)
