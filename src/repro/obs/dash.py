"""The live operational dashboard (``repro dash``).

Renders SLO status, burn rates, breaker/queue state, alert history,
and sparkline latency trends as plain terminal text, from the JSONL
streams the serving loop journals (health snapshots, wide events,
alert records -- see ``docs/observability.md``).

Two modes share one renderer:

- ``repro dash --once --from-journal PATH`` reads the journal and
  renders a single frame -- the replay path.  Because wide events
  carry the exact sample mapping the SLO evaluator saw, replaying them
  through a fresh :class:`~repro.obs.slo.SLOEvaluator` reproduces the
  live run's burn rates and alert indices bit-for-bit.
- without ``--once`` the CLI re-reads and re-renders on an interval --
  a live tail over a journal an active ``repro serve`` is appending to.

The renderer also runs the **gap check**: wide-event ``seq`` and
health-snapshot ``seq`` must each be contiguous and monotonic; a
journal that lost or reordered records gets a WARNING panel instead of
silently rendering a hole.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.journal import read_journal
from repro.obs.slo import SLO, SLOEvaluator

__all__ = [
    "sparkline",
    "split_journal",
    "seq_warnings",
    "replay_slos",
    "render_dashboard",
    "dashboard_from_journal",
]

_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 32) -> str:
    """A unicode block sparkline of the last ``width`` values."""
    series = [float(value) for value in values][-width:]
    if not series:
        return "(no data)"
    lo, hi = min(series), max(series)
    if hi <= lo:
        return _SPARK[0] * len(series)
    span = hi - lo
    return "".join(
        _SPARK[min(len(_SPARK) - 1,
                   int((value - lo) / span * len(_SPARK)))]
        for value in series
    )


def split_journal(records: Sequence[Dict]) -> Dict[str, List[Dict]]:
    """Partition journal records into the streams the panels consume."""
    streams: Dict[str, List[Dict]] = {
        "health": [], "wide": [], "batches": [], "queries": [],
        "replicas": [], "alerts": [], "other": [],
    }
    for record in records:
        kind = record.get("type")
        if kind == "health" or record.get("event") == "health":
            streams["health"].append(record)
        elif kind == "wide" and record.get("kind") == "batch":
            streams["wide"].append(record)
            streams["batches"].append(record)
        elif kind == "wide" and record.get("kind") == "query":
            streams["wide"].append(record)
            streams["queries"].append(record)
        elif kind == "wide" and record.get("kind") == "replica":
            # Per-replica events share the batch/query emitter
            # sequence, so they must stay in the merged "wide" stream
            # for the gap check to hold.
            streams["wide"].append(record)
            streams["replicas"].append(record)
        elif kind == "alert":
            streams["alerts"].append(record)
        else:
            streams["other"].append(record)
    return streams


def _check_seq(records: Sequence[Dict], label: str) -> List[str]:
    seqs = [record["seq"] for record in records if "seq" in record]
    warnings = []
    if len(seqs) < len(records):
        warnings.append(
            f"{label}: {len(records) - len(seqs)} record(s) lack a "
            f"'seq' field (pre-seq journal?)"
        )
    for previous, current in zip(seqs, seqs[1:]):
        if current <= previous:
            warnings.append(
                f"{label}: seq went backwards ({previous} -> {current})"
                f" -- reordered or duplicated records"
            )
        elif current != previous + 1:
            warnings.append(
                f"{label}: gap between seq {previous} and {current} "
                f"({current - previous - 1} record(s) missing)"
            )
    return warnings


def seq_warnings(streams: Dict[str, List[Dict]]) -> List[str]:
    """Gap/reorder warnings over every seq-carrying stream.

    Batch and query wide events share one emitter sequence, so the
    check runs over the merged ``wide`` stream in journal order.
    """
    warnings = (_check_seq(streams["wide"], "wide events")
                if streams["wide"] else [])
    if streams["health"]:
        warnings += _check_seq(streams["health"], "health snapshots")
    return warnings


def replay_slos(slos: Sequence[SLO], batches: Sequence[Dict],
                sink=None) -> SLOEvaluator:
    """Re-evaluate SLOs from journaled wide events.

    Wide batch events embed the ``samples`` mapping the live evaluator
    consumed, so the replayed burn rates and alert indices match the
    live run exactly (the determinism pin of the alerting tests).
    Pass an :class:`~repro.obs.slo.AlertSink` to collect the replayed
    alerts (``repro dash --expect-alert`` does).
    """
    evaluator = SLOEvaluator(slos, sink=sink)
    for event in batches:
        samples = event.get("samples")
        if isinstance(samples, dict):
            evaluator.tick(samples, index=event.get("index"))
    return evaluator


def _rule(width: int, char: str = "-") -> str:
    return char * width


def _slo_panel(evaluator: Optional[SLOEvaluator],
               alerts: Sequence[Dict], lines: List[str]) -> None:
    lines.append("SLO status")
    if evaluator is not None and evaluator.slos:
        header = (f"  {'slo':<22}{'state':<9}{'fast':>7}{'slow':>7}"
                  f"{'last':>10}  objective")
        lines.append(header)
        for row in evaluator.status():
            last = ("-" if row["last_value"] != row["last_value"]
                    else f"{row['last_value']:.4g}")
            lines.append(
                f"  {row['name']:<22}{row['state']:<9}"
                f"{row['fast_burn']:>6.1f}x{row['slow_burn']:>6.1f}x"
                f"{last:>10}  {row['objective']}"
            )
    elif not alerts:
        lines.append("  (no SLO file given and no alert records)")
    firing = [a for a in alerts if a.get("state") == "firing"]
    resolved = [a for a in alerts if a.get("state") == "resolved"]
    lines.append(
        f"  alerts: {len(firing)} fired, {len(resolved)} resolved"
    )
    for alert in alerts:
        lines.append(
            f"    [{alert.get('severity', '?'):<6}] batch "
            f"{alert.get('index', '?'):>4}  {alert.get('slo', '?')} "
            f"{alert.get('state', '?').upper()}  "
            f"fast={alert.get('fast_burn', 0):.1f}x "
            f"slow={alert.get('slow_burn', 0):.1f}x"
            + (f"  [runbook: {alert['runbook']}]"
               if alert.get("runbook") else "")
        )


def _serving_panel(health: Sequence[Dict], lines: List[str]) -> None:
    lines.append("Serving")
    if not health:
        lines.append("  (no health snapshots journaled)")
        return
    last = health[-1]
    lines.append(
        f"  breaker={last.get('breaker_state', '?')}"
        f"  queue={last.get('queue_depth', '?')}"
        f"  staleness={last.get('staleness_batches', '?')}"
        f"  policy={last.get('admission_policy', '?')}"
    )
    lines.append(
        f"  submitted={last.get('submitted', '?')}"
        f"  applied={last.get('applied', '?')}"
        f"  shed={last.get('shed', '?')}"
        f"  coalesced={last.get('coalesced', '?')}"
        f"  quarantined={last.get('quarantine_count', '?')}"
        f"  restores={last.get('restores', '?')}"
    )
    timeline = []
    previous = None
    for snapshot in health:
        state = snapshot.get("breaker_state")
        if state != previous:
            timeline.append(f"{state}@{snapshot.get('seq', '?')}")
            previous = state
    if len(timeline) > 1:
        lines.append("  breaker timeline: " + " -> ".join(timeline))


def _replication_panel(replicas: Sequence[Dict], width: int,
                       lines: List[str]) -> None:
    lines.append("Replication")
    latest: Dict[str, Dict] = {}
    lag_series: Dict[str, List[float]] = {}
    for event in replicas:
        name = event.get("name", "?")
        latest[name] = event
        lag_series.setdefault(name, []).append(
            float(event.get("lag_batches", 0))
        )
    spark_width = max(8, width - 44)
    for name in sorted(latest):
        event = latest[name]
        series = lag_series[name]
        lines.append(
            f"  {name:<6}{'up' if event.get('alive') else 'DOWN':<6}"
            f"lag {sparkline(series, spark_width)} "
            f"now={event.get('lag_batches', '?')}  "
            f"applied={event.get('applied_seq', '?')}  "
            f"fence=e{event.get('fence_epoch', '?')}"
            + (f"  rejections={event['fence_rejections']}"
               if event.get("fence_rejections") else "")
            + ("  QUARANTINED" if event.get("quarantined") else "")
        )
    last = replicas[-1]
    lines.append(
        f"  epoch={last.get('epoch', '?')}"
        f"  dead_letters={last.get('dead_letters', 0)}"
        f"  nacks={last.get('shipments_rejected', 0)}"
    )


def _latency_panel(streams: Dict[str, List[Dict]], width: int,
                   lines: List[str]) -> None:
    batches = streams["batches"]
    queries = streams["queries"]
    lines.append("Latency")
    spark_width = max(8, width - 40)
    if batches:
        series = [event.get("ingest_seconds", event.get("seconds", 0.0))
                  for event in batches]
        tail = series[-spark_width:]
        lines.append(
            f"  ingest  {sparkline(series, spark_width)}  "
            f"last={series[-1] * 1000:.1f}ms  "
            f"max={max(tail) * 1000:.1f}ms  (n={len(series)})"
        )
    else:
        lines.append("  ingest  (no batch events)")
    if queries:
        series = [event.get("seconds", 0.0) for event in queries]
        tail = series[-spark_width:]
        degraded = sum(1 for event in queries if event.get("degraded"))
        lines.append(
            f"  query   {sparkline(series, spark_width)}  "
            f"last={series[-1] * 1000:.1f}ms  "
            f"max={max(tail) * 1000:.1f}ms  "
            f"(n={len(series)}, degraded={degraded})"
        )


def _memory_panel(batches: Sequence[Dict], width: int,
                  lines: List[str]) -> None:
    """Peak-RSS trend from batch wide events (``peak_rss_bytes``).

    The series is a process-lifetime high-water mark, so it only ever
    rises; what the panel surfaces is *where* it rose -- a jump at
    batch N points at the allocation that paid for it (heap rebuilds
    of large snapshots above all; mmap-store runs stay flat).
    """
    series = [float(event["peak_rss_bytes"]) for event in batches
              if event.get("peak_rss_bytes")]
    if not series:
        return  # pre-RSS journal, or a platform without getrusage
    lines.append("Memory")
    spark_width = max(8, width - 40)
    mib = 1024.0 * 1024.0
    growth = series[-1] - series[0]
    lines.append(
        f"  peak rss {sparkline(series, spark_width)}  "
        f"now={series[-1] / mib:.1f}MiB  "
        f"grew={growth / mib:.1f}MiB over {len(series)} batch(es)"
    )
    lines.append(_rule(width))


def render_dashboard(streams: Dict[str, List[Dict]],
                     slos: Optional[Sequence[SLO]] = None,
                     width: int = 72,
                     title: str = "repro dash") -> str:
    """One dashboard frame over pre-split journal streams."""
    evaluator = (replay_slos(slos, streams["batches"])
                 if slos is not None else None)
    total = sum(len(records) for records in streams.values())
    lines = [
        f"{title}  ({total} journal record(s): "
        f"{len(streams['health'])} health, "
        f"{len(streams['batches'])} batch, "
        f"{len(streams['queries'])} query, "
        f"{len(streams['alerts'])} alert)",
        _rule(width, "="),
    ]
    _slo_panel(evaluator, streams["alerts"], lines)
    lines.append(_rule(width))
    _serving_panel(streams["health"], lines)
    lines.append(_rule(width))
    if streams["replicas"]:
        _replication_panel(streams["replicas"], width, lines)
        lines.append(_rule(width))
    _memory_panel(streams["batches"], width, lines)
    _latency_panel(streams, width, lines)
    warnings = seq_warnings(streams)
    lines.append(_rule(width))
    if warnings:
        lines.append("Sequence check: WARNING")
        for warning in warnings:
            lines.append(f"  ! {warning}")
    else:
        lines.append("Sequence check: ok (seq streams contiguous)")
    return "\n".join(lines) + "\n"


def dashboard_from_journal(
    path: str,
    slos: Optional[Sequence[SLO]] = None,
    width: int = 72,
) -> Tuple[str, Dict[str, List[Dict]]]:
    """Read a journal and render one frame; returns (text, streams)."""
    streams = split_journal(read_journal(path))
    text = render_dashboard(streams, slos=slos, width=width,
                            title=f"repro dash — {path}")
    return text, streams
