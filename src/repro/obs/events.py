"""Wide events: one structured record per applied batch and per query.

A *wide event* is the observability unit favoured by the "observability
2.0" school: instead of scattering a batch's story across logs,
counters, and spans, the serving loop emits **one** record per unit of
work carrying every dimension it knows -- engine, backend, batch kind
and size, queue depth, breaker state, admission policy, deadline
budget, shard imbalance, the samples the SLO evaluator saw -- plus a
**trace exemplar**: the span id of the slowest span recorded while the
batch applied, so a latency spike in a dashboard links straight to its
trace (:mod:`repro.obs.trace` ids are deterministic, so the link
survives replay).

Events flow through the existing :class:`~repro.obs.journal.JsonlJournal`
(``{"type": "wide", "kind": "batch" | "query", "seq": n, ...}``) and a
ring-buffered in-memory tail for the live dashboard.  ``seq`` is a
per-emitter monotonic counter; journal replays use it to detect gaps
and reordering (``repro dash --from-journal``).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.obs.registry import MetricsRegistry, get_registry

__all__ = ["WideEventEmitter"]


class WideEventEmitter:
    """Builds, journals, and ring-buffers wide events.

    ``journal`` is anything with ``write(record: dict)`` (usually a
    :class:`~repro.obs.journal.JsonlJournal`); ``capacity`` bounds the
    in-memory tail.  Every event is also counted in the registry
    (``obs.wide_events``) so export surfaces see emission volume.
    """

    def __init__(self, journal=None, capacity: int = 512,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._journal = journal
        self._tail: Deque[Dict] = deque(maxlen=capacity)
        self._registry = registry
        self.next_seq = 0

    @property
    def emitted(self) -> int:
        """Total events emitted (>= the tail length)."""
        return self.next_seq

    def emit(self, kind: str, **fields) -> Dict:
        """Emit one wide event; returns the record.

        ``kind`` discriminates the unit of work (``batch``, ``query``);
        ``fields`` carry the dimensions.  The emitter owns ``type`` and
        ``seq`` -- callers must not pass them.
        """
        record = {"type": "wide", "kind": kind, "seq": self.next_seq}
        for key in ("type", "seq"):
            if key in fields:
                raise ValueError(f"field {key!r} is emitter-owned")
        record.update(fields)
        self.next_seq += 1
        self._tail.append(record)
        if self._journal is not None:
            self._journal.write(record)
        registry = (self._registry if self._registry is not None
                    else get_registry())
        registry.counter("obs.wide_events").inc()
        return record

    def events(self, kind: Optional[str] = None,
               last: Optional[int] = None) -> List[Dict]:
        """The in-memory tail, oldest first; optionally filtered."""
        tail = [record for record in self._tail
                if kind is None or record["kind"] == kind]
        if last is not None:
            tail = tail[-last:]
        return tail
