"""The process-wide metrics registry.

Three instrument kinds, created lazily by name:

- :class:`Counter` -- monotonically increasing totals (edge
  computations, records processed);
- :class:`Gauge` -- last-written values (frontier density, history
  window size, dependency bytes -- the paper's Table 9, live);
- :class:`Histogram` -- fixed-bucket distributions, used for per-batch
  ingest/refine/forward latencies.

The registry complements :class:`~repro.runtime.metrics.EngineMetrics`
rather than replacing it: engines keep threading their per-run
``EngineMetrics`` (whose deltas drive the bench tables and the fuzz
oracle's work checks), and :func:`ingest_engine_metrics` folds any
``EngineMetrics`` -- every dataclass field, discovered via
:func:`dataclasses.fields` -- into registry counters.

A single process-wide registry (:func:`get_registry`) is the default
write target; tests swap it with :func:`set_registry` or the
:func:`scoped_registry` context manager.
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from dataclasses import fields, is_dataclass
from typing import Dict, List, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "get_registry",
    "ingest_engine_metrics",
    "peak_rss_bytes",
    "sample_peak_rss",
    "scoped_registry",
    "set_registry",
]

#: Default histogram bounds for per-batch latencies, in seconds:
#: 100us .. 30s in roughly-2.5x steps, plus the +inf overflow bucket.
LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class Counter:
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def to_json(self):
        return self.value


class Gauge:
    """A last-written value."""

    kind = "gauge"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value) -> None:
        self.value = value

    def to_json(self):
        return self.value


class Histogram:
    """Fixed-bucket distribution; bucket ``i`` counts values <=
    ``bounds[i]`` (the final implicit bucket is +inf)."""

    kind = "histogram"
    __slots__ = ("name", "bounds", "counts", "sum", "count")

    def __init__(self, name: str,
                 bounds: Sequence[float] = LATENCY_BUCKETS) -> None:
        self.name = name
        self.bounds = tuple(float(bound) for bound in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(
                f"histogram {name} bounds must be strictly increasing"
            )
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the q-quantile from bucket counts.

        Edge cases are pinned, not inherited from whatever arithmetic
        happens to do: ``q`` outside ``[0, 1]`` raises ``ValueError``
        (so does a non-finite ``q``), and querying an **empty**
        histogram raises ``ValueError`` -- an SLO or dashboard reading
        "p99 = 0.0" off a histogram that never observed anything would
        be silently wrong in the optimistic direction.  ``q = 0``
        returns the smallest bucket bound; ``q = 1`` the bound of the
        last occupied bucket (``inf`` if the overflow bucket is hit).
        """
        q = float(q)
        if not 0.0 <= q <= 1.0:  # NaN fails this check too
            raise ValueError(
                f"quantile q must be in [0, 1], got {q!r}"
            )
        if self.count == 0:
            raise ValueError(
                f"histogram {self.name!r} is empty: quantiles are "
                f"undefined (check .count before asking)"
            )
        target = q * self.count
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= target:
                if index < len(self.bounds):
                    return self.bounds[index]
                return float("inf")
        return float("inf")

    def to_json(self):
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Name-keyed instruments, created on first use."""

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get(self, kind: str, name: str, **kwargs):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = _KINDS[kind](name, **kwargs)
            self._instruments[name] = instrument
        elif instrument.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{instrument.kind}, requested {kind}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get("counter", name)

    def gauge(self, name: str) -> Gauge:
        return self._get("gauge", name)

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None) -> Histogram:
        if bounds is None:
            return self._get("histogram", name)
        return self._get("histogram", name, bounds=bounds)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def to_json(self) -> Dict:
        """Everything, grouped by kind -- the export the bench harness
        writes next to its tables."""
        export: Dict[str, Dict] = {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            export[instrument.kind + "s"][name] = instrument.to_json()
        return export

    def reset(self) -> None:
        self._instruments.clear()


# ----------------------------------------------------------------------
# The process-wide registry
# ----------------------------------------------------------------------
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


@contextmanager
def scoped_registry(registry: Optional[MetricsRegistry] = None):
    """Install a fresh (or given) registry for a ``with`` block."""
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def peak_rss_bytes() -> int:
    """The process-lifetime resident-set high-water mark, in bytes.

    ``getrusage`` reports ``ru_maxrss`` in kilobytes on Linux and in
    bytes on macOS; normalised to bytes here.  Returns 0 where the
    ``resource`` module is unavailable (non-POSIX platforms) so
    callers can gate on a zero reading instead of catching imports.

    Being a high-water mark, the value never decreases -- memory
    comparisons between configurations (the xl matrix's ``storage``
    axis above all) must run the low-memory configuration *first* in
    any shared process.
    """
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover -- non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover -- macOS
        return int(peak)
    return int(peak) * 1024


def sample_peak_rss(
    registry: Optional[MetricsRegistry] = None,
) -> int:
    """Record :func:`peak_rss_bytes` into the ``proc.peak_rss_bytes``
    gauge; returns the sampled value."""
    registry = registry if registry is not None else get_registry()
    peak = peak_rss_bytes()
    registry.gauge("proc.peak_rss_bytes").set(peak)
    return peak


def ingest_engine_metrics(metrics, engine: str,
                          registry: Optional[MetricsRegistry] = None
                          ) -> None:
    """Fold an :class:`EngineMetrics` (or any dataclass of numeric
    fields and numeric-valued dicts) into registry counters.

    Fields are discovered via :func:`dataclasses.fields`, so a counter
    added to ``EngineMetrics`` flows through with no code change here.
    Call it with a *delta* (``metrics.delta_since(snapshot)``) to
    record one batch, or with run totals at the end of a stream.
    """
    if not is_dataclass(metrics):
        raise TypeError("ingest_engine_metrics expects a dataclass")
    registry = registry if registry is not None else get_registry()
    for field_info in fields(metrics):
        value = getattr(metrics, field_info.name)
        if isinstance(value, dict):
            for key, amount in value.items():
                registry.counter(
                    f"{engine}.{field_info.name}.{key}"
                ).inc(max(amount, 0))
        else:
            registry.counter(f"{engine}.{field_info.name}").inc(
                max(value, 0)
            )
