"""Streaming runners: one per engine column of the paper's tables.

Each runner exposes the same minimal protocol -- ``setup(graph)`` then
``apply(batch) -> values`` -- so experiments can time the three systems
of Table 5 (and the comparators of section 5.4) over identical mutation
streams:

- :class:`LigraRunner` -- restarts full synchronous recomputation on
  every mutation (the "Ligra" column);
- :class:`DeltaRunner` -- restarts delta/selective-scheduling execution
  on every mutation (the "GB-Reset" column);
- :class:`GraphBoltRunner` -- dependency-driven incremental processing
  (the "GraphBolt" column), optionally in retract/propagate mode
  ("GraphBolt-RP" of Figure 8).

To mirror the paper's methodology ("each algorithm version had the same
number of pending edge mutations to be processed"), every runner is fed
the identical batch sequence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.engine import GraphBoltEngine
from repro.core.model import IncrementalAlgorithm
from repro.core.pruning import PruningPolicy
from repro.graph.csr import CSRGraph
from repro.graph.mutable import StreamingGraph
from repro.graph.mutation import MutationBatch
from repro.ligra.delta import DeltaEngine
from repro.ligra.engine import LigraEngine
from repro.obs.registry import get_registry, ingest_engine_metrics
from repro.runtime.exec import (
    ExecutionBackend,
    load_imbalance,
    resolve_backend,
)
from repro.runtime.metrics import EngineMetrics, Timer

__all__ = [
    "StreamingRunner",
    "LigraRunner",
    "DeltaRunner",
    "GraphBoltRunner",
    "BatchResult",
    "StreamResult",
    "run_stream",
]

AlgorithmFactory = Callable[[], IncrementalAlgorithm]


class StreamingRunner:
    """Base protocol: set up on a snapshot, then apply batches."""

    name = "runner"

    def __init__(self, algorithm_factory: AlgorithmFactory,
                 num_iterations: Optional[int] = None,
                 until_convergence: bool = False,
                 backend: Optional[ExecutionBackend] = None) -> None:
        self.algorithm_factory = algorithm_factory
        self.num_iterations = num_iterations
        self.until_convergence = until_convergence
        self.backend = resolve_backend(backend)
        self.metrics = EngineMetrics()

    def setup(self, graph: CSRGraph) -> np.ndarray:
        raise NotImplementedError

    def apply(self, batch: MutationBatch) -> np.ndarray:
        raise NotImplementedError

    @property
    def graph(self) -> CSRGraph:
        raise NotImplementedError


class _RestartRunner(StreamingRunner):
    """Shared logic for engines that restart from scratch per snapshot."""

    def setup(self, graph: CSRGraph) -> np.ndarray:
        self._streaming = StreamingGraph(graph)
        return self._run_snapshot()

    def apply(self, batch: MutationBatch) -> np.ndarray:
        with Timer(self.metrics, "adjust_structure"):
            self._streaming.apply_batch(batch)
        return self._run_snapshot()

    @property
    def graph(self) -> CSRGraph:
        return self._streaming.graph

    def _run_snapshot(self) -> np.ndarray:
        raise NotImplementedError


class LigraRunner(_RestartRunner):
    """Full synchronous recomputation per snapshot."""

    name = "Ligra"

    def _run_snapshot(self) -> np.ndarray:
        engine = LigraEngine(self.algorithm_factory(), self.metrics,
                             backend=self.backend)
        return engine.run(
            self._streaming.graph,
            num_iterations=self.num_iterations,
            until_convergence=self.until_convergence,
        )


class DeltaRunner(_RestartRunner):
    """Selective-scheduling recomputation per snapshot (GB-Reset)."""

    name = "GB-Reset"

    def _run_snapshot(self) -> np.ndarray:
        engine = DeltaEngine(self.algorithm_factory(), self.metrics,
                             backend=self.backend)
        return engine.run(
            self._streaming.graph,
            num_iterations=self.num_iterations,
            until_convergence=self.until_convergence,
        )


class GraphBoltRunner(StreamingRunner):
    """Dependency-driven incremental processing."""

    name = "GraphBolt"

    def __init__(self, algorithm_factory: AlgorithmFactory,
                 num_iterations: Optional[int] = None,
                 until_convergence: bool = False,
                 pruning: Optional[PruningPolicy] = None,
                 mode: str = "delta",
                 backend: Optional[ExecutionBackend] = None) -> None:
        super().__init__(algorithm_factory, num_iterations,
                         until_convergence, backend)
        self.pruning = pruning
        self.mode = mode
        if mode == "retract_propagate":
            self.name = "GraphBolt-RP"
        self.engine: Optional[GraphBoltEngine] = None

    def setup(self, graph: CSRGraph) -> np.ndarray:
        self.engine = GraphBoltEngine(
            self.algorithm_factory(),
            num_iterations=self.num_iterations,
            until_convergence=self.until_convergence,
            pruning=self.pruning,
            mode=self.mode,
            metrics=self.metrics,
            backend=self.backend,
        )
        return self.engine.run(graph)

    def apply(self, batch: MutationBatch) -> np.ndarray:
        return self.engine.apply_mutations(batch)

    @property
    def graph(self) -> CSRGraph:
        return self.engine.graph


# ----------------------------------------------------------------------
# Stream execution and measurement
# ----------------------------------------------------------------------
@dataclass
class BatchResult:
    """Measurements for one applied batch.

    ``seconds`` is compute time only: structure adjustment is excluded,
    matching the paper, which reports it separately (section 4.1) and
    charges all engines identically for it.  ``total_seconds`` includes
    it.
    """

    seconds: float
    total_seconds: float
    edge_computations: int
    vertex_computations: int


@dataclass
class StreamResult:
    """Measurements for one runner over a whole stream."""

    runner: str
    setup_seconds: float
    batches: List[BatchResult] = field(default_factory=list)
    final_values: Optional[np.ndarray] = None
    final_metrics: Optional[EngineMetrics] = None

    @property
    def total_apply_seconds(self) -> float:
        return sum(batch.seconds for batch in self.batches)

    @property
    def mean_apply_seconds(self) -> float:
        if not self.batches:
            return 0.0
        return self.total_apply_seconds / len(self.batches)

    @property
    def total_edge_computations(self) -> int:
        return sum(batch.edge_computations for batch in self.batches)

    def as_dict(self) -> Dict:
        return {
            "runner": self.runner,
            "setup_seconds": self.setup_seconds,
            "total_apply_seconds": self.total_apply_seconds,
            "mean_apply_seconds": self.mean_apply_seconds,
            "total_edge_computations": self.total_edge_computations,
            "per_batch_seconds": [batch.seconds for batch in self.batches],
            "per_batch_edges": [
                batch.edge_computations for batch in self.batches
            ],
        }


def run_stream(runner: StreamingRunner, graph: CSRGraph,
               batches: Sequence[MutationBatch]) -> StreamResult:
    """Run a full stream through one runner, timing each batch."""
    start = time.perf_counter()
    runner.setup(graph)
    setup_seconds = time.perf_counter() - start
    result = StreamResult(runner=runner.name, setup_seconds=setup_seconds)
    registry = get_registry()
    values = None
    for batch in batches:
        before = runner.metrics.snapshot()
        start = time.perf_counter()
        values = runner.apply(batch)
        elapsed = time.perf_counter() - start
        delta = runner.metrics.delta_since(before)
        adjust = delta.phase_seconds.get("adjust_structure", 0.0)
        result.batches.append(
            BatchResult(
                seconds=max(elapsed - adjust, 0.0),
                total_seconds=elapsed,
                edge_computations=delta.edge_computations,
                vertex_computations=delta.vertex_computations,
            )
        )
        # Per-batch latency distributions: overall plus each engine
        # phase (refine/hybrid/compute/...) from the metrics delta.
        registry.histogram(f"{runner.name}.batch_seconds").observe(elapsed)
        for phase, seconds in delta.phase_seconds.items():
            if seconds > 0.0:
                registry.histogram(
                    f"{runner.name}.phase.{phase}_seconds"
                ).observe(seconds)
    result.final_values = values
    result.final_metrics = runner.metrics.snapshot()
    ingest_engine_metrics(result.final_metrics, runner.name,
                          registry=registry)
    registry.gauge(f"{runner.name}.shard_imbalance").set(
        load_imbalance(result.final_metrics.shard_loads)
    )
    return result
