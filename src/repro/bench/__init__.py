"""Benchmark harness: workloads, streaming runners, reporting.

One experiment driver per paper table/figure lives in
:mod:`repro.bench.experiments`; ``benchmarks/bench_*.py`` are the
pytest-benchmark entry points, and ``python -m repro.bench`` regenerates
every experiment's data for EXPERIMENTS.md.
"""

from repro.bench.harness import (
    DeltaRunner,
    GraphBoltRunner,
    LigraRunner,
    StreamingRunner,
    run_stream,
)
from repro.bench.workloads import (
    mixed_stream,
    split_initial_graph,
    targeted_batch,
    uniform_batch,
)

__all__ = [
    "DeltaRunner",
    "GraphBoltRunner",
    "LigraRunner",
    "StreamingRunner",
    "mixed_stream",
    "run_stream",
    "split_initial_graph",
    "targeted_batch",
    "uniform_batch",
]
