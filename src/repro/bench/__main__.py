"""Regenerate every experiment: ``python -m repro.bench [names...]``.

Runs each experiment driver, prints its paper-style table, and stores
the JSON payload under ``benchmarks/results/`` (consumed when updating
EXPERIMENTS.md).  With no arguments all experiments run; otherwise pass
experiment names (e.g. ``table5 figure8``).
"""

from __future__ import annotations

import sys
import time

from repro.bench import experiments as exp
from repro.bench.reporting import save_results
from repro.obs.registry import get_registry

EXPERIMENTS = {
    "table1": exp.experiment_table1,
    "figure4": exp.experiment_figure4,
    "table5": exp.experiment_table5,
    "table6": exp.experiment_table6,
    "table7": exp.experiment_table7,
    "figure7": exp.experiment_figure7,
    "table8": exp.experiment_table8,
    "figure8": exp.experiment_figure8,
    "figure9": exp.experiment_figure9,
    "table9": exp.experiment_table9,
    "motivation_tagging": exp.experiment_motivation_tagging,
    "ablation_pruning": exp.experiment_ablation_pruning,
    "ablation_dense_mode": exp.experiment_ablation_dense_mode,
    "ablation_structure": exp.experiment_ablation_structure,
    "ablation_tagreset": exp.experiment_ablation_tagreset,
}


def main(argv) -> int:
    names = argv[1:] if len(argv) > 1 else list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; choose from "
              f"{sorted(EXPERIMENTS)}")
        return 2
    for name in names:
        start = time.perf_counter()
        payload = EXPERIMENTS[name]()
        elapsed = time.perf_counter() - start
        path = save_results(name, payload)
        print(exp.render_table(payload))
        print(f"[{name}: {elapsed:.1f}s -> {path}]")
        print()
    # Everything the runs fed into the process-wide registry --
    # counters, gauges, latency histograms -- lands next to the tables.
    registry_path = save_results("metrics_registry",
                                 get_registry().to_json())
    print(f"[metrics registry -> {registry_path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
