"""Rendering experiment results as paper-style tables."""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

__all__ = ["format_table", "speedup", "save_results", "load_results",
           "results_dir"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None) -> str:
    """Monospace table with per-column width fitting."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in cells)) if cells
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(header).ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def speedup(baseline_seconds: float, seconds: float) -> float:
    """``baseline / measured``, the paper's x-factor convention."""
    if seconds <= 0:
        return float("inf")
    return baseline_seconds / seconds


def results_dir() -> str:
    """Directory where benchmark drivers drop their JSON results."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )))
    path = os.path.join(here, "benchmarks", "results")
    os.makedirs(path, exist_ok=True)
    return path


def save_results(name: str, payload: Dict) -> str:
    """Persist one experiment's results as JSON; returns the path."""
    path = os.path.join(results_dir(), f"{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
    return path


def load_results(name: str) -> Optional[Dict]:
    path = os.path.join(results_dir(), f"{name}.json")
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)
