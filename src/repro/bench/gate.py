"""Perf-trajectory regression gate over ``BENCH_*.json`` payloads.

The gate compares a freshly produced matrix payload
(:func:`repro.bench.matrix.run_matrix`) against the committed baseline
for the same area (``benchmarks/baselines/BENCH_<area>.json``) and
renders a precise per-cell report:

- **work metrics** (edge/vertex computations) are deterministic given
  the same config, so any growth beyond ``work_threshold`` is a real
  regression of the hot path, not noise;
- **wall-clock** (``wall_seconds.total``) is hardware- and
  load-dependent, so it is gated with the much looser
  ``time_threshold`` and, in ``report`` mode (the default and the CI
  posture while the trajectory is young), never fails the build;
- runs whose ``config_hash`` changed are flagged ``changed`` and
  excluded from pass/fail -- a renamed or re-parameterised cell resets
  its own trajectory instead of tripping the gate.

``enforce`` mode turns any surviving regression into a non-zero exit,
the CI contract of ROADMAP item 4.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bench.matrix import payload_filename, validate_payload
from repro.bench.reporting import format_table

__all__ = [
    "GateThresholds",
    "CellVerdict",
    "GateReport",
    "GATE_MODES",
    "baselines_dir",
    "load_baseline",
    "save_baseline",
    "compare_payloads",
    "run_gate",
]

GATE_MODES = ("off", "report", "enforce")

#: Work metrics gated per run (deterministic; present in engine mode).
WORK_METRICS = ("edge_computations", "vertex_computations")

#: The wall-clock metric gated per run (noisy; loose threshold).
TIME_METRIC = "wall_seconds.total"


@dataclass(frozen=True)
class GateThresholds:
    """Relative slowdown tolerated before a cell regresses.

    ``work`` applies to deterministic work counters (tight), ``time``
    to wall-clock (loose -- CI machines are noisy).
    """

    work: float = 0.05
    time: float = 0.50

    @classmethod
    def from_table(cls, gate_config: Dict) -> "GateThresholds":
        return cls(
            work=float(gate_config.get("work_threshold", cls.work)),
            time=float(gate_config.get("time_threshold", cls.time)),
        )


@dataclass(frozen=True)
class CellVerdict:
    """One (run, metric) comparison."""

    run_id: str
    metric: str
    baseline: float
    current: float
    #: current / baseline; 1.0 when the baseline is zero and so is the
    #: current value, +inf when only the baseline is zero.
    ratio: float
    #: ok | regressed | improved | new | missing | changed
    status: str

    def row(self) -> List:
        def cell(value, digits=None):
            if math.isnan(value) or math.isinf(value):
                return "-"
            return round(value, digits) if digits else value

        return [
            self.run_id, self.metric,
            cell(self.baseline), cell(self.current),
            cell(self.ratio, digits=3),
            self.status.upper() if self.status == "regressed"
            else self.status,
        ]


@dataclass
class GateReport:
    """The gate's full per-cell output plus the verdict."""

    area: str
    mode: str
    thresholds: GateThresholds
    cells: List[CellVerdict] = field(default_factory=list)
    baseline_path: Optional[str] = None

    @property
    def regressions(self) -> List[CellVerdict]:
        return [cell for cell in self.cells
                if cell.status == "regressed"]

    @property
    def ok(self) -> bool:
        """Pass/fail verdict: fails only in enforce mode with at least
        one regressed cell."""
        if self.mode != "enforce":
            return True
        return not self.regressions

    def format(self) -> str:
        title = (
            f"perf gate [{self.area}] mode={self.mode} "
            f"(work>{self.thresholds.work:+.0%}, "
            f"time>{self.thresholds.time:+.0%} regress)"
        )
        rows = [cell.row() for cell in self.cells]
        table = format_table(
            ["Run", "Metric", "Baseline", "Current", "Ratio", "Status"],
            rows, title=title,
        )
        verdict = ("PASS" if not self.regressions else
                   f"{len(self.regressions)} regression(s)"
                   + ("" if self.mode == "enforce"
                      else " [report-only]"))
        return f"{table}\nverdict: {verdict}"


def baselines_dir() -> str:
    """``benchmarks/baselines/`` at the repository root."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )))
    return os.path.join(here, "benchmarks", "baselines")


def load_baseline(area: str,
                  directory: Optional[str] = None) -> Optional[Dict]:
    """The committed baseline payload for an area, or None."""
    directory = directory if directory is not None else baselines_dir()
    path = os.path.join(directory, payload_filename(area))
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)


def save_baseline(payload: Dict,
                  directory: Optional[str] = None) -> str:
    """Write (refresh) the committed baseline for a payload's area."""
    validate_payload(payload)
    directory = directory if directory is not None else baselines_dir()
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, payload_filename(payload["area"]))
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _lookup(dotted: str, run: Dict) -> Optional[float]:
    """A gated metric from a run: a ``work`` key, or a dotted path into
    ``timing`` (e.g. ``wall_seconds.total``)."""
    if dotted in run["work"]:
        value = run["work"][dotted]
        return float(value) if isinstance(value, (int, float)) else None
    node = run["timing"]
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


def _ratio(baseline: float, current: float) -> float:
    if baseline == 0.0:
        return 1.0 if current == 0.0 else float("inf")
    return current / baseline


def compare_payloads(baseline: Dict, current: Dict,
                     thresholds: GateThresholds,
                     mode: str = "report") -> GateReport:
    """Cell-by-cell comparison of two payloads for the same area."""
    if mode not in GATE_MODES:
        raise ValueError(f"mode must be one of {GATE_MODES}")
    if baseline["area"] != current["area"]:
        raise ValueError(
            f"area mismatch: baseline {baseline['area']!r} vs "
            f"current {current['area']!r}"
        )
    report = GateReport(area=current["area"], mode=mode,
                        thresholds=thresholds)
    nan = float("nan")
    baseline_runs = {run["id"]: run for run in baseline["runs"]}
    current_runs = {run["id"]: run for run in current["runs"]}
    for run_id, run in current_runs.items():
        base = baseline_runs.get(run_id)
        if base is None:
            report.cells.append(CellVerdict(run_id, "-", nan, nan, nan,
                                            "new"))
            continue
        if base["config_hash"] != run["config_hash"]:
            report.cells.append(CellVerdict(run_id, "config", nan, nan,
                                            nan, "changed"))
            continue
        for metric, threshold in (
                [(name, thresholds.work) for name in WORK_METRICS]
                + [(TIME_METRIC, thresholds.time)]):
            base_value = _lookup(metric, base)
            new_value = _lookup(metric, run)
            if base_value is None or new_value is None:
                continue
            ratio = _ratio(base_value, new_value)
            if ratio > 1.0 + threshold:
                status = "regressed"
            elif ratio < 1.0 - threshold:
                status = "improved"
            else:
                status = "ok"
            report.cells.append(
                CellVerdict(run_id, metric, base_value, new_value,
                            ratio, status)
            )
    for run_id in baseline_runs:
        if run_id not in current_runs:
            report.cells.append(CellVerdict(run_id, "-", nan, nan, nan,
                                            "missing"))
    return report


def run_gate(current: Dict, mode: str = "report",
             thresholds: Optional[GateThresholds] = None,
             baseline_directory: Optional[str] = None
             ) -> Optional[GateReport]:
    """Gate a fresh payload against its committed baseline.

    Returns ``None`` (with no verdict) when the area has no baseline
    yet -- the first landing of a new area starts its trajectory rather
    than failing it.
    """
    if mode == "off":
        return None
    validate_payload(current)
    baseline = load_baseline(current["area"], baseline_directory)
    if baseline is None:
        return None
    if thresholds is None:
        thresholds = GateThresholds.from_table(current.get("gate", {}))
    report = compare_payloads(baseline, current, thresholds, mode)
    directory = (baseline_directory if baseline_directory is not None
                 else baselines_dir())
    report.baseline_path = os.path.join(
        directory, payload_filename(current["area"]))
    return report
