"""Mutation workload generators.

Reproduces the paper's evaluation methodology (section 5.1): "we
obtained an initial fixed point and streamed in a set of edge insertions
and deletions ... After 50% of the edges were loaded, the remaining
edges were treated as edge additions that were streamed in.  Edges to be
deleted were selected from the loaded graph and deletion requests were
mixed with addition requests in the update stream."

Also provides the Table 8 Hi/Lo workloads: batches whose mutations
target high- or low-out-degree vertices so the blast radius of changes
is maximised or minimised.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.mutation import MutationBatch
from repro.graph.properties import degree_percentile_vertices

__all__ = [
    "split_initial_graph",
    "mixed_stream",
    "uniform_batch",
    "targeted_batch",
]


def split_initial_graph(
    graph: CSRGraph, load_fraction: float = 0.5, seed: int = 0
) -> Tuple[CSRGraph, np.ndarray, np.ndarray, np.ndarray]:
    """Split a full graph into a loaded prefix and pending additions.

    Returns ``(initial_graph, pending_src, pending_dst, pending_weight)``
    where the initial graph holds ``load_fraction`` of the edges and the
    rest are returned as the future addition stream, shuffled.
    """
    if not 0.0 < load_fraction <= 1.0:
        raise ValueError("load_fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    src, dst, weight = graph.all_edges()
    order = rng.permutation(src.size)
    cut = int(src.size * load_fraction)
    loaded = order[:cut]
    pending = order[cut:]
    initial = CSRGraph(
        graph.num_vertices, src[loaded], dst[loaded], weight[loaded]
    )
    return initial, src[pending], dst[pending], weight[pending]


def mixed_stream(
    graph: CSRGraph,
    num_batches: int,
    batch_size: int,
    load_fraction: float = 0.5,
    delete_fraction: float = 0.3,
    seed: int = 0,
) -> Tuple[CSRGraph, List[MutationBatch]]:
    """The paper's update stream: additions from the unloaded remainder
    mixed with deletions of currently-loaded edges.

    Returns ``(initial_graph, batches)``.  Deletions are sampled from the
    loaded edge set as it evolves (an edge added by an earlier batch can
    be deleted by a later one); each batch holds ``batch_size`` mutations
    with ``delete_fraction`` of them deletions (subject to availability
    of pending additions).
    """
    rng = np.random.default_rng(seed)
    initial, pend_src, pend_dst, pend_weight = split_initial_graph(
        graph, load_fraction, seed
    )
    live = {
        (int(u), int(v)): float(w)
        for u, v, w in zip(*initial.all_edges())
    }
    batches: List[MutationBatch] = []
    cursor = 0
    for _ in range(num_batches):
        num_deletes = int(batch_size * delete_fraction)
        num_adds = batch_size - num_deletes
        adds = []
        add_weights = []
        while num_adds > 0 and cursor < pend_src.size:
            edge = (int(pend_src[cursor]), int(pend_dst[cursor]))
            weight = float(pend_weight[cursor])
            cursor += 1
            if edge in live:
                continue
            adds.append(edge)
            add_weights.append(weight)
            num_adds -= 1
        live_edges = list(live.keys())
        num_deletes = min(num_deletes, len(live_edges))
        delete_idx = rng.choice(len(live_edges), size=num_deletes,
                                replace=False)
        deletes = [live_edges[i] for i in delete_idx]
        for edge, weight in zip(adds, add_weights):
            live[edge] = weight
        for edge in deletes:
            del live[edge]
        batches.append(
            MutationBatch.from_edges(
                additions=adds, deletions=deletes, add_weights=add_weights
            )
        )
    return initial, batches


def uniform_batch(graph: CSRGraph, batch_size: int,
                  delete_fraction: float = 0.3,
                  seed: int = 0) -> MutationBatch:
    """A single batch of uniformly random additions and deletions."""
    rng = np.random.default_rng(seed)
    num_deletes = int(batch_size * delete_fraction)
    num_adds = batch_size - num_deletes
    num_vertices = graph.num_vertices
    adds = list(
        zip(
            rng.integers(0, num_vertices, size=num_adds).tolist(),
            rng.integers(0, num_vertices, size=num_adds).tolist(),
        )
    )
    src, dst, _ = graph.all_edges()
    num_deletes = min(num_deletes, src.size)
    idx = rng.choice(src.size, size=num_deletes, replace=False)
    deletes = list(zip(src[idx].tolist(), dst[idx].tolist()))
    weights = (rng.random(len(adds)) + 0.5).tolist()
    return MutationBatch.from_edges(additions=adds, deletions=deletes,
                                    add_weights=weights)


def targeted_batch(graph: CSRGraph, batch_size: int, workload: str,
                   delete_fraction: float = 0.3,
                   seed: int = 0) -> MutationBatch:
    """A Hi or Lo workload batch (paper Table 8).

    The paper's Hi workload makes "mutations impact vertices with high
    outgoing degree (so that changes affect more vertices)": the vertex
    whose aggregation a mutation perturbs is the edge's *destination*,
    and its out-degree determines how widely the perturbation fans out
    in the next iteration.  So ``'hi'`` targets mutation destinations in
    the top out-degree percentile (additions point at them, deletions
    remove their in-edges), and ``'lo'`` targets the bottom band.
    """
    if workload not in ("hi", "lo"):
        raise ValueError("workload must be 'hi' or 'lo'")
    band = (0.99, 1.0) if workload == "hi" else (0.0, 0.3)
    rng = np.random.default_rng(seed)
    targets = degree_percentile_vertices(graph, *band, use_out=True)
    if targets.size == 0:
        raise ValueError("graph has no vertices with out-edges")
    num_deletes = int(batch_size * delete_fraction)
    num_adds = batch_size - num_deletes

    add_dst = rng.choice(targets, size=num_adds)
    add_src = rng.integers(0, graph.num_vertices, size=num_adds)
    adds = list(zip(add_src.tolist(), add_dst.tolist()))

    deletes = []
    delete_targets = rng.choice(targets, size=num_deletes)
    for v in delete_targets.tolist():
        sources = graph.in_neighbors(v)
        if sources.size:
            deletes.append(
                (int(sources[rng.integers(0, sources.size)]), v)
            )
    weights = (rng.random(len(adds)) + 0.5).tolist()
    return MutationBatch.from_edges(additions=adds, deletions=deletes,
                                    add_weights=weights)
