"""One experiment driver per paper table/figure.

Each ``experiment_*`` function runs a scaled version of the paper's
measurement (scaling documented in DESIGN.md section 1), returns a
JSON-serialisable payload, and can render itself as a paper-style text
table.  The pytest-benchmark entry points in ``benchmarks/`` call these
drivers, assert the paper's qualitative claims, and persist payloads to
``benchmarks/results/`` for EXPERIMENTS.md.

Algorithm configurations used by the benchmarks (tolerances and seed
densities) are chosen so the value-stabilisation profile matches the
paper's Figure 4 -- most vertices stop changing midway through the
10-iteration window -- while results stay accurate to ~1e-3, validated
against from-scratch execution for every run, like the paper's own
methodology (section 5.1).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms import (
    BeliefPropagation,
    CoEM,
    CollaborativeFiltering,
    IncrementalTriangleCounting,
    LabelPropagation,
    PageRank,
    SSSP,
    triangle_counts,
)
from repro.bench.harness import (
    DeltaRunner,
    GraphBoltRunner,
    LigraRunner,
    StreamingRunner,
    run_stream,
)
from repro.bench.reporting import format_table
from repro.bench.workloads import targeted_batch, uniform_batch
from repro.core.engine import GraphBoltEngine
from repro.core.pruning import PruningPolicy
from repro.dataflow.graph_programs import DifferentialPageRank, DifferentialSSSP
from repro.graph.csr import CSRGraph
from repro.graph.generators import paper_graph, rmat
from repro.graph.mutation import MutationBatch
from repro.kickstarter.engine import KickStarterEngine
from repro.ligra.delta import DeltaEngine
from repro.ligra.engine import LigraEngine
from repro.runtime.exec import ShardedBackend, use_backend
from repro.runtime.metrics import EngineMetrics
from repro.runtime.parallel import MakespanModel
from repro.runtime.validation import count_exceeding

__all__ = [
    "BENCH_ALGORITHMS",
    "BENCH_BATCH_SIZES",
    "BENCH_GRAPHS",
    "experiment_table1",
    "experiment_figure4",
    "experiment_table5",
    "experiment_table6",
    "experiment_table7",
    "experiment_figure7",
    "experiment_table8",
    "experiment_figure8",
    "experiment_figure9",
    "experiment_table9",
    "experiment_motivation_tagging",
    "experiment_ablation_pruning",
    "experiment_ablation_dense_mode",
    "experiment_ablation_structure",
    "experiment_ablation_tagreset",
    "render_table",
]

#: Bench-standard algorithm factories (see module docstring for the
#: tolerance rationale).  Keys follow the paper's abbreviations.
BENCH_ALGORITHMS: Dict[str, Callable] = {
    "PR": lambda: PageRank(tolerance=1e-3),
    "BP": lambda: BeliefPropagation(num_states=2, tolerance=1e-4),
    "CF": lambda: CollaborativeFiltering(num_factors=3, tolerance=1e-4),
    "CoEM": lambda: CoEM(seed_every=3, tolerance=1e-3),
    "LP": lambda: LabelPropagation(num_labels=3, seed_every=3,
                                   tolerance=1e-3),
}

#: Graphs of Table 2, scaled (DESIGN.md section 1).
BENCH_GRAPHS: Tuple[str, ...] = ("WK", "UK", "TW", "TT", "FT")

#: Mutations per batch -- the paper's 1K/10K/100K scaled by the ~1000x
#: edge-count reduction of the stand-in graphs.
BENCH_BATCH_SIZES: Tuple[int, ...] = (10, 100, 1000)

#: Iteration count (the paper's default; 5 on YH, handled per driver).
BENCH_ITERATIONS = 10


def render_table(payload: Dict) -> str:
    """Render any experiment payload's ``table`` section as text."""
    return format_table(payload["headers"], payload["rows"],
                        title=payload.get("title"))


# ----------------------------------------------------------------------
# Table 1 -- incorrect results from naive reuse
# ----------------------------------------------------------------------
def experiment_table1(graph_name: str = "WK", num_batches: int = 10,
                      batch_size: int = 100, seed: int = 11) -> Dict:
    """Count vertices with relative error >= 10% / >= 1% when converged
    values are naively reused across mutations (paper Table 1).

    Uses the weakly-anchored LP configuration: the paper's point is that
    a 10-iteration BSP window does *not* erase the starting point, so
    ``S^10(G_T, R_G) != S^10(G_T, I)`` and the error compounds across
    batches.  (A heavily-seeded LP that contracts to a unique fixpoint
    within the window would mask the effect.)
    """
    graph = paper_graph(graph_name, weighted=True)
    algorithm_factory = lambda: LabelPropagation(num_labels=5,
                                                 seed_every=10)
    naive = GraphBoltEngine(
        algorithm_factory(), num_iterations=BENCH_ITERATIONS,
        strategy="naive",
    )
    naive.run(graph)
    truth_runner = LigraRunner(algorithm_factory, BENCH_ITERATIONS)
    truth_runner.setup(graph)

    over_10, over_1 = [], []
    for index in range(num_batches):
        batch = uniform_batch(naive.graph, batch_size, seed=seed + index)
        values = naive.apply_mutations(batch)
        truth = truth_runner.apply(batch)
        over_10.append(count_exceeding(values, truth, 0.10))
        over_1.append(count_exceeding(values, truth, 0.01))

    headers = ["Error"] + [f"B{i + 1}" for i in range(num_batches)]
    return {
        "experiment": "table1",
        "title": (
            f"Table 1: vertices with incorrect results, naive reuse of "
            f"LP values on {graph_name} ({graph.num_vertices} vertices, "
            f"{batch_size} mutations/batch)"
        ),
        "headers": headers,
        "rows": [[">10%"] + over_10, [">1%"] + over_1],
        "graph": graph_name,
        "num_vertices": graph.num_vertices,
        "over_10_percent": over_10,
        "over_1_percent": over_1,
    }


# ----------------------------------------------------------------------
# Figure 4 -- change in vertex values across iterations
# ----------------------------------------------------------------------
def experiment_figure4(graph_name: str = "WK",
                       num_iterations: int = 10) -> Dict:
    """Per-iteration changed-vertex counts for LP (paper Figure 4)."""
    graph = paper_graph(graph_name, weighted=True)
    engine = DeltaEngine(BENCH_ALGORITHMS["LP"]())
    state = engine.initial_state(graph)
    changed = []
    for _ in range(num_iterations):
        engine.step(graph, state)
        changed.append(int(state.frontier.size))
    density = [count / graph.num_vertices for count in changed]
    bars = [_density_bar(value) for value in density]
    return {
        "experiment": "figure4",
        "title": (
            f"Figure 4: changed vertices per iteration, LP on {graph_name} "
            f"({graph.num_vertices} vertices)"
        ),
        "headers": ["Iteration"] + [str(i + 1) for i in range(num_iterations)],
        "rows": [
            ["changed"] + changed,
            ["density"] + [round(d, 3) for d in density],
            ["plot"] + bars,
        ],
        "changed_per_iteration": changed,
        "density_per_iteration": density,
    }


def _density_bar(value: float, height: int = 5) -> str:
    """A tiny vertical bar rendering of a [0, 1] density (the ASCII
    counterpart of Figure 4's pixel columns)."""
    filled = round(value * height)
    return "#" * filled + "." * (height - filled)


# ----------------------------------------------------------------------
# Table 5 + Figure 6 -- engine comparison and edge computations
# ----------------------------------------------------------------------
def _standard_runners(factory, num_iterations):
    return [
        LigraRunner(factory, num_iterations),
        DeltaRunner(factory, num_iterations),
        GraphBoltRunner(factory, num_iterations),
    ]


def _triangle_cell(graph: CSRGraph, batches) -> Dict[str, Dict]:
    """TC column: recompute baseline (Ligra == GB-Reset, single
    iteration) versus incremental maintenance."""
    cell = {}
    restart_metrics = EngineMetrics()
    restart_seconds = 0.0
    streaming_edges = [graph]
    current = graph
    for batch in batches:
        from repro.graph.mutable import StreamingGraph

        stream = StreamingGraph(current)
        stream.apply_batch(batch)
        current = stream.graph
        start = time.perf_counter()
        triangle_counts(current, restart_metrics)
        restart_seconds += time.perf_counter() - start
        streaming_edges.append(current)
    restart = {
        "seconds": restart_seconds,
        "edges": restart_metrics.edge_computations,
    }
    cell["Ligra"] = dict(restart)
    cell["GB-Reset"] = dict(restart)

    counter = IncrementalTriangleCounting(graph)
    baseline = counter.metrics.snapshot()
    start = time.perf_counter()
    for batch in batches:
        counter.apply_mutations(batch)
    seconds = time.perf_counter() - start
    delta = counter.metrics.delta_since(baseline)
    expected = triangle_counts(counter.graph)
    if expected.total != counter.total:
        raise AssertionError("incremental TC diverged from recompute")
    cell["GraphBolt"] = {
        "seconds": seconds,
        "edges": delta.edge_computations,
    }
    return cell


def experiment_table5(
    algorithms: Optional[Sequence[str]] = None,
    graphs: Sequence[str] = BENCH_GRAPHS,
    batch_sizes: Sequence[int] = BENCH_BATCH_SIZES,
    num_batches: int = 2,
    seed: int = 5,
    validate: bool = True,
) -> Dict:
    """Execution times for Ligra / GB-Reset / GraphBolt (paper Table 5)
    and the edge-computation ratios of Figure 6."""
    if algorithms is None:
        algorithms = list(BENCH_ALGORITHMS) + ["TC"]
    cells = {}
    rows = []
    for algo in algorithms:
        for graph_name in graphs:
            graph = paper_graph(graph_name, weighted=True)
            for batch_size in batch_sizes:
                batches = [
                    uniform_batch(graph, batch_size, seed=seed + i)
                    for i in range(num_batches)
                ]
                if algo == "TC":
                    cell = _triangle_cell(graph, batches)
                else:
                    factory = BENCH_ALGORITHMS[algo]
                    cell = {}
                    values = {}
                    for runner in _standard_runners(factory,
                                                    BENCH_ITERATIONS):
                        result = run_stream(runner, graph, batches)
                        cell[runner.name] = {
                            "seconds": result.total_apply_seconds,
                            "edges": result.total_edge_computations,
                        }
                        values[runner.name] = result.final_values
                    if validate:
                        worst = np.abs(
                            values["GraphBolt"] - values["Ligra"]
                        ).max()
                        if worst > 0.05:
                            raise AssertionError(
                                f"{algo}/{graph_name}: GraphBolt diverged "
                                f"from ground truth by {worst}"
                            )
                cells[(algo, graph_name, batch_size)] = cell
                ligra = cell["Ligra"]
                reset = cell["GB-Reset"]
                bolt = cell["GraphBolt"]
                rows.append([
                    algo, graph_name, batch_size,
                    round(ligra["seconds"], 4),
                    round(reset["seconds"], 4),
                    round(bolt["seconds"], 4),
                    round(ligra["seconds"] / max(bolt["seconds"], 1e-9), 2),
                    round(reset["seconds"] / max(bolt["seconds"], 1e-9), 2),
                    round(bolt["edges"] / max(reset["edges"], 1), 3),
                ])
    return {
        "experiment": "table5",
        "title": (
            "Table 5: execution seconds for Ligra / GB-Reset / GraphBolt "
            "(batch sizes scaled 1K/10K/100K -> 10/100/1000); last column "
            "is Figure 6's GraphBolt/GB-Reset edge-computation ratio"
        ),
        "headers": ["Algo", "Graph", "Batch", "Ligra", "GB-Reset",
                    "GraphBolt", "xLigra", "xGB-Reset", "EdgeRatio"],
        "rows": rows,
        "cells": {
            f"{algo}|{graph}|{batch}": cell
            for (algo, graph, batch), cell in cells.items()
        },
    }


# ----------------------------------------------------------------------
# Tables 6 and 7 -- YH-scale runs and core scaling
# ----------------------------------------------------------------------
def experiment_table7(
    algorithms: Optional[Sequence[str]] = None,
    batch_sizes: Sequence[int] = BENCH_BATCH_SIZES,
    num_batches: int = 1,
    seed: int = 77,
) -> Dict:
    """Edge computations on the YH stand-in (paper Table 7); YH runs 5
    iterations, as in the paper."""
    if algorithms is None:
        algorithms = list(BENCH_ALGORITHMS)
    graph = paper_graph("YH", weighted=True)
    rows = []
    detail = {}
    for algo in algorithms:
        factory = BENCH_ALGORITHMS[algo]
        row = [algo]
        for batch_size in batch_sizes:
            batches = [
                uniform_batch(graph, batch_size, seed=seed + i)
                for i in range(num_batches)
            ]
            reset = run_stream(DeltaRunner(factory, 5), graph, batches)
            bolt = run_stream(GraphBoltRunner(factory, 5), graph, batches)
            percent = 100.0 * bolt.total_edge_computations / max(
                reset.total_edge_computations, 1
            )
            row.append(
                f"{bolt.total_edge_computations} ({percent:.2f}%)"
            )
            detail[f"{algo}|{batch_size}"] = {
                "graphbolt_edges": bolt.total_edge_computations,
                "gbreset_edges": reset.total_edge_computations,
                "percent": percent,
                "graphbolt_seconds": bolt.total_apply_seconds,
                "gbreset_seconds": reset.total_apply_seconds,
            }
        rows.append(row)
    return {
        "experiment": "table7",
        "title": (
            "Table 7: GraphBolt edge computations on YH "
            "(percentage relative to GB-Reset)"
        ),
        "headers": ["Algo"] + [str(b) for b in batch_sizes],
        "rows": rows,
        "detail": detail,
    }


def experiment_table6(
    algorithms: Optional[Sequence[str]] = None,
    batch_size: int = 100,
    cores: Sequence[int] = (32, 96),
    seed: int = 66,
    num_shards: Optional[int] = None,
) -> Dict:
    """Projected core scaling on YH (paper Table 6).

    Every runner executes on the sharded backend, which records the
    *measured* per-shard load vector of each engine; wall-clock on p
    cores is then the calibrated LPT makespan of scheduling those real
    shard loads onto p cores (:class:`MakespanModel` -- the DESIGN.md
    substitution for real threads, which Python's GIL precludes).
    The shard count defaults to ``max(cores)`` so the projection is
    never floored by having fewer shards than cores.  The paper's
    observation under test: GraphBolt's speedup over GB-Reset *shrinks*
    at higher core counts because GB-Reset has more parallelisable
    work; the load-imbalance factor of each measured vector is reported
    alongside.
    """
    if algorithms is None:
        algorithms = list(BENCH_ALGORITHMS)
    if num_shards is None:
        num_shards = max(cores)
    graph = paper_graph("YH", weighted=True)
    model = MakespanModel()
    backend = ShardedBackend(num_shards)
    rows = []
    detail = {}
    for algo in algorithms:
        factory = BENCH_ALGORITHMS[algo]
        batches = [uniform_batch(graph, batch_size, seed=seed)]
        measured = {}
        with use_backend(backend):
            for runner in _standard_runners(factory, 5):
                result = run_stream(runner, graph, batches)
                measured[runner.name] = (
                    result.total_apply_seconds,
                    result.final_metrics,
                )
        imbalance = {
            name: model.imbalance(metrics)
            for name, (_, metrics) in measured.items()
        }
        for core_count in cores:
            projected = {
                name: model.project(metrics, seconds, core_count)
                for name, (seconds, metrics) in measured.items()
            }
            speedup_reset = projected["GB-Reset"] / max(
                projected["GraphBolt"], 1e-12
            )
            speedup_ligra = projected["Ligra"] / max(
                projected["GraphBolt"], 1e-12
            )
            rows.append([
                algo, core_count,
                round(projected["Ligra"], 4),
                round(projected["GB-Reset"], 4),
                round(projected["GraphBolt"], 4),
                round(speedup_ligra, 2),
                round(speedup_reset, 2),
                round(imbalance["GraphBolt"], 3),
            ])
            detail[f"{algo}|{core_count}"] = {
                "projected": projected,
                "x_gbreset": speedup_reset,
                "x_ligra": speedup_ligra,
                "imbalance": imbalance,
                "shard_loads": {
                    name: dict(metrics.shard_loads)
                    for name, (_, metrics) in measured.items()
                },
            }
    return {
        "experiment": "table6",
        "title": (
            "Table 6: projected execution seconds on YH at 32/96 cores "
            f"(measured per-shard makespan model, {num_shards} shards; "
            "see DESIGN.md substitutions)"
        ),
        "headers": ["Algo", "Cores", "Ligra", "GB-Reset", "GraphBolt",
                    "xLigra", "xGB-Reset", "Imbalance"],
        "rows": rows,
        "detail": detail,
        "num_shards": num_shards,
    }


# ----------------------------------------------------------------------
# Figure 7 -- varying mutation batch size
# ----------------------------------------------------------------------
def experiment_figure7(
    algorithms: Optional[Sequence[str]] = None,
    graph_name: str = "TT",
    batch_sizes: Sequence[int] = (1, 10, 100, 1000, 10000),
    seed: int = 17,
) -> Dict:
    """GB-Reset vs GraphBolt across batch sizes (paper Figure 7;
    1..1M scaled to 1..10K)."""
    if algorithms is None:
        algorithms = list(BENCH_ALGORITHMS)
    graph = paper_graph(graph_name, weighted=True)
    rows = []
    series = {}
    for algo in algorithms:
        factory = BENCH_ALGORITHMS[algo]
        reset_times, bolt_times = [], []
        reset_edges, bolt_edges = [], []
        for batch_size in batch_sizes:
            batch = uniform_batch(graph, batch_size, seed=seed)
            reset = run_stream(DeltaRunner(factory, BENCH_ITERATIONS),
                               graph, [batch])
            bolt = run_stream(GraphBoltRunner(factory, BENCH_ITERATIONS),
                              graph, [batch])
            reset_times.append(reset.total_apply_seconds)
            bolt_times.append(bolt.total_apply_seconds)
            reset_edges.append(reset.total_edge_computations)
            bolt_edges.append(bolt.total_edge_computations)
        rows.append([algo, "GB-Reset"] + [round(t, 4) for t in reset_times])
        rows.append([algo, "GraphBolt"] + [round(t, 4) for t in bolt_times])
        series[algo] = {
            "GB-Reset": reset_times,
            "GraphBolt": bolt_times,
            "GB-Reset-edges": reset_edges,
            "GraphBolt-edges": bolt_edges,
        }
    return {
        "experiment": "figure7",
        "title": (
            f"Figure 7: execution seconds vs batch size on {graph_name} "
            "(paper sweeps 1..1M; scaled to 1..10K)"
        ),
        "headers": ["Algo", "Engine"] + [str(b) for b in batch_sizes],
        "rows": rows,
        "series": series,
        "batch_sizes": list(batch_sizes),
    }


# ----------------------------------------------------------------------
# Table 8 -- Hi/Lo mutation workloads
# ----------------------------------------------------------------------
def experiment_table8(
    algorithms: Optional[Sequence[str]] = None,
    graphs: Sequence[str] = ("TT", "FT"),
    batch_size: int = 100,
    seed: int = 88,
) -> Dict:
    """GraphBolt under high/low-degree-targeted mutations (paper
    Table 8)."""
    if algorithms is None:
        algorithms = list(BENCH_ALGORITHMS)
    rows = []
    detail = {}
    for graph_name in graphs:
        graph = paper_graph(graph_name, weighted=True)
        row = [graph_name]
        for algo in algorithms:
            factory = BENCH_ALGORITHMS[algo]
            times = {}
            edges = {}
            for workload in ("lo", "hi"):
                batch = targeted_batch(graph, batch_size, workload,
                                       seed=seed)
                result = run_stream(
                    GraphBoltRunner(factory, BENCH_ITERATIONS),
                    graph, [batch],
                )
                times[workload] = result.total_apply_seconds
                edges[workload] = result.total_edge_computations
            row.extend([round(times["lo"], 4), round(times["hi"], 4)])
            detail[f"{graph_name}|{algo}"] = {
                **times,
                "lo_edges": edges["lo"],
                "hi_edges": edges["hi"],
            }
        rows.append(row)
    headers = ["Graph"]
    for algo in algorithms:
        headers.extend([f"{algo} Lo", f"{algo} Hi"])
    return {
        "experiment": "table8",
        "title": (
            "Table 8: GraphBolt seconds under low/high-degree mutation "
            f"workloads ({batch_size} mutations)"
        ),
        "headers": headers,
        "rows": rows,
        "detail": detail,
    }


# ----------------------------------------------------------------------
# Figure 8 -- comparison with Differential Dataflow (PageRank)
# ----------------------------------------------------------------------
def experiment_figure8(
    scale: int = 9,
    edge_factor: int = 4,
    batch_sizes: Sequence[int] = (1, 10, 100),
    num_single_updates: int = 20,
    seed: int = 9,
) -> Dict:
    """PageRank: GraphBolt vs GraphBolt-RP vs mini-DD (paper Figure 8).

    Runs on a smaller graph than Table 5 because the mini-DD's per-key
    hash-trace processing is orders of magnitude more expensive than
    array kernels -- which is the comparison's point.
    """
    graph = rmat(scale, edge_factor, seed=seed, weighted=True)
    factory = BENCH_ALGORITHMS["PR"]
    iterations = BENCH_ITERATIONS

    sweep_rows = []
    sweep = {"GraphBolt": [], "GraphBolt-RP": [], "DifferentialDataflow": []}
    for batch_size in batch_sizes:
        batch = uniform_batch(graph, batch_size, seed=seed + batch_size)
        bolt = run_stream(GraphBoltRunner(factory, iterations), graph,
                          [batch])
        bolt_rp = run_stream(
            GraphBoltRunner(factory, iterations, mode="retract_propagate"),
            graph, [batch],
        )
        dd = DifferentialPageRank(graph, num_iterations=iterations)
        start = time.perf_counter()
        dd_values = dd.apply_mutations(batch)
        dd_seconds = time.perf_counter() - start
        truth = LigraEngine(factory()).run(dd.graph, iterations)
        worst = float(np.abs(dd_values - truth).max())
        if worst > 0.05:
            raise AssertionError(f"DD PageRank diverged by {worst}")
        sweep["GraphBolt"].append(bolt.total_apply_seconds)
        sweep["GraphBolt-RP"].append(bolt_rp.total_apply_seconds)
        sweep["DifferentialDataflow"].append(dd_seconds)
        sweep_rows.append([
            batch_size,
            round(bolt.total_apply_seconds, 4),
            round(bolt_rp.total_apply_seconds, 4),
            round(dd_seconds, 4),
        ])

    # 8b: variance over consecutive single-edge mutations.
    singles = {"GraphBolt": [], "DifferentialDataflow": []}
    bolt_runner = GraphBoltRunner(factory, iterations)
    bolt_runner.setup(graph)
    dd = DifferentialPageRank(graph, num_iterations=iterations)
    for index in range(num_single_updates):
        batch = uniform_batch(graph, 1, delete_fraction=0.0,
                              seed=seed + 1000 + index)
        start = time.perf_counter()
        bolt_runner.apply(batch)
        singles["GraphBolt"].append(time.perf_counter() - start)
        start = time.perf_counter()
        dd.apply_mutations(batch)
        singles["DifferentialDataflow"].append(time.perf_counter() - start)

    def stats(samples: List[float]) -> Tuple[float, float]:
        arr = np.array(samples)
        return float(arr.mean()), float(arr.std())

    bolt_mean, bolt_std = stats(singles["GraphBolt"])
    dd_mean, dd_std = stats(singles["DifferentialDataflow"])
    return {
        "experiment": "figure8",
        "title": (
            f"Figure 8: PageRank vs mini Differential Dataflow "
            f"(V={graph.num_vertices}, E={graph.num_edges})"
        ),
        "headers": ["Batch", "GraphBolt", "GraphBolt-RP",
                    "DifferentialDataflow"],
        "rows": sweep_rows + [
            ["single-edge mean +/- std",
             f"{bolt_mean:.4f} +/- {bolt_std:.4f}", "-",
             f"{dd_mean:.4f} +/- {dd_std:.4f}"],
        ],
        "sweep": sweep,
        "batch_sizes": list(batch_sizes),
        "single_edge": singles,
        "single_edge_stats": {
            "GraphBolt": {"mean": bolt_mean, "std": bolt_std},
            "DifferentialDataflow": {"mean": dd_mean, "std": dd_std},
        },
    }


# ----------------------------------------------------------------------
# Figure 9 -- SSSP: KickStarter vs GraphBolt vs DD
# ----------------------------------------------------------------------
def experiment_figure9(
    scale: int = 9,
    edge_factor: int = 4,
    batch_sizes: Sequence[int] = (1, 10, 100),
    source: int = 0,
    seed: int = 19,
    include_dataflow: bool = True,
) -> Dict:
    """SSSP across KickStarter, GraphBolt (min aggregation, convergence
    mode) and mini-DD, with mixed and addition-only streams (paper
    Figure 9a/9b)."""
    graph = rmat(scale, edge_factor, seed=seed, weighted=True)
    rows = []
    series: Dict[str, Dict[str, List[float]]] = {}
    edge_series: Dict[str, Dict[str, List[int]]] = {}
    for panel, delete_fraction in (("adds+dels", 0.3), ("adds-only", 0.0)):
        panel_series: Dict[str, List[float]] = {
            "KickStarter": [], "GraphBolt": [],
        }
        panel_edges: Dict[str, List[int]] = {
            "KickStarter": [], "GraphBolt": [],
        }
        if include_dataflow:
            panel_series["DifferentialDataflow"] = []
        for batch_size in batch_sizes:
            batch = uniform_batch(graph, batch_size,
                                  delete_fraction=delete_fraction,
                                  seed=seed + batch_size)
            kick = KickStarterEngine(graph, source=source)
            kick_before = kick.metrics.snapshot()
            start = time.perf_counter()
            kick_values = kick.apply_mutations(batch)
            panel_series["KickStarter"].append(time.perf_counter() - start)
            panel_edges["KickStarter"].append(
                kick.metrics.delta_since(kick_before).edge_computations
            )

            bolt = GraphBoltRunner(
                lambda: SSSP(source=source), until_convergence=True,
            )
            bolt.setup(graph)
            bolt_before = bolt.metrics.snapshot()
            start = time.perf_counter()
            bolt_values = bolt.apply(batch)
            panel_series["GraphBolt"].append(time.perf_counter() - start)
            panel_edges["GraphBolt"].append(
                bolt.metrics.delta_since(bolt_before).edge_computations
            )

            if np.isinf(kick_values).sum() != np.isinf(bolt_values).sum():
                raise AssertionError(
                    "KickStarter and GraphBolt disagree on reachability"
                )
            both = np.isfinite(kick_values) & np.isfinite(bolt_values)
            worst = float(
                np.abs(kick_values[both] - bolt_values[both]).max()
            ) if both.any() else 0.0
            if worst > 1e-6:
                raise AssertionError(
                    f"KickStarter and GraphBolt disagree by {worst}"
                )

            if include_dataflow:
                dd = DifferentialSSSP(graph, source=source)
                start = time.perf_counter()
                dd.apply_mutations(batch)
                panel_series["DifferentialDataflow"].append(
                    time.perf_counter() - start
                )
            row = [panel, batch_size] + [
                round(panel_series[name][-1], 5) for name in panel_series
            ]
            rows.append(row)
        series[panel] = panel_series
        edge_series[panel] = panel_edges
    headers = ["Panel", "Batch", "KickStarter", "GraphBolt"]
    if include_dataflow:
        headers.append("DifferentialDataflow")
    return {
        "experiment": "figure9",
        "title": (
            f"Figure 9: SSSP seconds per batch "
            f"(V={graph.num_vertices}, E={graph.num_edges})"
        ),
        "headers": headers,
        "rows": rows,
        "series": series,
        "edges": edge_series,
        "batch_sizes": list(batch_sizes),
    }


# ----------------------------------------------------------------------
# Table 9 -- memory overhead
# ----------------------------------------------------------------------
def experiment_table9(
    algorithms: Optional[Sequence[str]] = None,
    graphs: Sequence[str] = BENCH_GRAPHS + ("YH",),
) -> Dict:
    """Tracked-dependency memory relative to GB-Reset state (paper
    Table 9).  Following the paper, the first iteration's footprint is
    the worst-case estimate; we report the whole tracked window."""
    if algorithms is None:
        algorithms = list(BENCH_ALGORITHMS)
    rows = []
    detail = {}
    for algo in algorithms:
        factory = BENCH_ALGORITHMS[algo]
        row = [algo]
        for graph_name in graphs:
            graph = paper_graph(graph_name, weighted=True)
            iterations = 5 if graph_name == "YH" else BENCH_ITERATIONS
            engine = GraphBoltEngine(factory(), num_iterations=iterations)
            engine.run(graph)
            # The paper's measure: first tracked iteration (worst case;
            # vertical pruning shrinks later ones) against total engine
            # memory including the graph structure.
            report = engine.memory_report(include_graph=True,
                                          first_iteration_only=True)
            row.append(f"{report.overhead_percent:.1f}%")
            detail[f"{algo}|{graph_name}"] = {
                "baseline_bytes": report.baseline_bytes,
                "dependency_bytes": report.dependency_bytes,
                "overhead_percent": report.overhead_percent,
            }
        rows.append(row)

    # Triangle counting: retained old structure + counts vs fresh counts.
    tc_row = ["TC"]
    for graph_name in graphs:
        graph = paper_graph(graph_name, weighted=True)
        counter = IncrementalTriangleCounting(graph)
        counter.apply_mutations(uniform_batch(graph, 10, seed=3))
        baseline = graph.nbytes + counter.per_vertex.nbytes
        percent = 100.0 * counter.dependency_bytes() / baseline
        tc_row.append(f"{percent:.1f}%")
        detail[f"TC|{graph_name}"] = {"overhead_percent": percent}
    rows.append(tc_row)
    return {
        "experiment": "table9",
        "title": "Table 9: memory increase of GraphBolt w.r.t. GB-Reset",
        "headers": ["Algo"] + list(graphs),
        "rows": rows,
        "detail": detail,
    }


# ----------------------------------------------------------------------
# Ablations (ours)
# ----------------------------------------------------------------------
def experiment_motivation_tagging(
    graphs: Sequence[str] = BENCH_GRAPHS,
    batch_sizes: Sequence[int] = (1, 10, 100),
    num_iterations: int = BENCH_ITERATIONS,
    seed: int = 37,
) -> Dict:
    """How much a tag-based corrector would reset (paper sections 1/2.2).

    The paper motivates dependency-driven refinement by noting that the
    straightforward alternative -- tag everything downstream of a
    mutation and recompute it -- "ends up tagging majority of vertex
    values".  This experiment measures the tagged fraction directly.
    """
    from repro.core.tagging import tagged_fraction
    from repro.graph.mutable import StreamingGraph

    rows = []
    detail = {}
    for graph_name in graphs:
        graph = paper_graph(graph_name, weighted=True)
        row = [graph_name]
        for batch_size in batch_sizes:
            stream = StreamingGraph(graph)
            mutation = stream.apply_batch(
                uniform_batch(graph, batch_size, seed=seed)
            )
            fraction = tagged_fraction(mutation, num_iterations)
            row.append(f"{100 * fraction:.1f}%")
            detail[f"{graph_name}|{batch_size}"] = fraction
        rows.append(row)
    return {
        "experiment": "motivation_tagging",
        "title": (
            "Motivation: fraction of vertices a tag-based corrector "
            f"resets ({num_iterations}-iteration window)"
        ),
        "headers": ["Graph"] + [str(b) for b in batch_sizes],
        "rows": rows,
        "detail": detail,
    }


def experiment_ablation_pruning(
    graph_name: str = "TW",
    horizons: Sequence[int] = (0, 2, 4, 6, 8, 10),
    batch_size: int = 100,
    algo: str = "LP",
    seed: int = 23,
) -> Dict:
    """Horizontal-pruning horizon sweep: refinement window versus memory
    and apply time (design trade-off of paper section 3.2)."""
    graph = paper_graph(graph_name, weighted=True)
    factory = BENCH_ALGORITHMS[algo]
    rows = []
    detail = {}
    for horizon in horizons:
        runner = GraphBoltRunner(
            factory, BENCH_ITERATIONS,
            pruning=PruningPolicy(horizon=horizon),
        )
        batch = uniform_batch(graph, batch_size, seed=seed)
        result = run_stream(runner, graph, [batch])
        report = runner.engine.memory_report()
        truth = LigraEngine(factory()).run(runner.graph, BENCH_ITERATIONS)
        worst = float(np.abs(result.final_values - truth).max())
        if worst > 0.05:
            raise AssertionError(f"horizon {horizon} diverged by {worst}")
        rows.append([
            horizon,
            round(result.total_apply_seconds, 4),
            report.dependency_bytes,
            round(report.overhead_percent, 1),
            runner.metrics.refinement_iterations,
            runner.metrics.hybrid_iterations,
        ])
        detail[str(horizon)] = {
            "seconds": result.total_apply_seconds,
            "dependency_bytes": report.dependency_bytes,
        }
    return {
        "experiment": "ablation_pruning",
        "title": (
            f"Ablation: pruning horizon sweep, {algo} on {graph_name} "
            f"({batch_size} mutations)"
        ),
        "headers": ["Horizon", "ApplySeconds", "DepBytes", "Overhead%",
                    "RefineIters", "HybridIters"],
        "rows": rows,
        "detail": detail,
    }


def experiment_ablation_tagreset(
    graph_name: str = "TW",
    batch_sizes: Sequence[int] = (1, 10, 100),
    algo: str = "LP",
    seed: int = 43,
) -> Dict:
    """Correctors head to head: tag-and-recompute (GraphIn-style)
    versus dependency-driven refinement (sections 1/2.2).

    Both produce BSP-correct results; the comparison is the work each
    performs, and the tag set size explains the gap.
    """
    from repro.core.tagreset import TagResetEngine

    graph = paper_graph(graph_name, weighted=True)
    factory = BENCH_ALGORITHMS[algo]
    rows = []
    detail = {}
    for batch_size in batch_sizes:
        batch = uniform_batch(graph, batch_size, seed=seed)

        tag_engine = TagResetEngine(factory(),
                                    num_iterations=BENCH_ITERATIONS)
        tag_engine.run(graph)
        before = tag_engine.metrics.snapshot()
        start = time.perf_counter()
        tag_engine.apply_mutations(batch)
        tag_seconds = time.perf_counter() - start
        tag_edges = tag_engine.metrics.delta_since(
            before
        ).edge_computations

        bolt = run_stream(GraphBoltRunner(factory, BENCH_ITERATIONS),
                          graph, [batch])
        tagged_fraction = tag_engine.last_tagged / graph.num_vertices
        ratio = tag_edges / max(bolt.total_edge_computations, 1)
        rows.append([
            batch_size,
            f"{100 * tagged_fraction:.1f}%",
            tag_edges,
            bolt.total_edge_computations,
            round(ratio, 1),
            round(tag_seconds, 4),
            round(bolt.total_apply_seconds, 4),
        ])
        detail[str(batch_size)] = {
            "tagged_fraction": tagged_fraction,
            "tagreset_edges": tag_edges,
            "graphbolt_edges": bolt.total_edge_computations,
            "edge_ratio": ratio,
        }
    return {
        "experiment": "ablation_tagreset",
        "title": (
            f"Correctors compared: tag+recompute vs refinement, "
            f"{algo} on {graph_name}"
        ),
        "headers": ["Batch", "Tagged", "TagReset edges", "GraphBolt edges",
                    "Ratio", "TagReset s", "GraphBolt s"],
        "rows": rows,
        "detail": detail,
    }


def experiment_ablation_structure(
    graph_name: str = "FT",
    batch_sizes: Sequence[int] = (10, 100, 1000),
    num_batches: int = 20,
    seed: int = 31,
) -> Dict:
    """Structure adjustment: CSR rebuild versus STINGER-style blocks.

    The paper (section 4.1) reports its two-pass CSR adjustment takes
    ~850ms for 10K mutations on a 1B-edge graph and notes faster dynamic
    structures (STINGER) could be incorporated.  This ablation measures
    our two backends: full CSR rebuild per batch versus in-place
    slack-block updates with amortised repacking.
    """
    from repro.graph.dynamic import DynamicStreamingGraph
    from repro.graph.mutable import StreamingGraph

    graph = paper_graph(graph_name, weighted=True)
    rows = []
    detail = {}
    for batch_size in batch_sizes:
        batches = [
            uniform_batch(graph, batch_size, seed=seed + i)
            for i in range(num_batches)
        ]
        timings = {}
        edge_sets = {}
        for name, factory in (("csr_rebuild", StreamingGraph),
                              ("dynamic_blocks", DynamicStreamingGraph)):
            stream = factory(graph)
            start = time.perf_counter()
            for batch in batches:
                stream.apply_batch(batch)
            timings[name] = (time.perf_counter() - start) / num_batches
            final = stream.graph
            edge_sets[name] = (
                final.edge_set() if hasattr(final, "edge_set") else None
            )
        if edge_sets["csr_rebuild"] != edge_sets["dynamic_blocks"]:
            raise AssertionError("backends diverged structurally")
        ratio = timings["csr_rebuild"] / max(timings["dynamic_blocks"],
                                             1e-12)
        rows.append([
            batch_size,
            round(timings["csr_rebuild"] * 1000, 3),
            round(timings["dynamic_blocks"] * 1000, 3),
            round(ratio, 2),
        ])
        detail[str(batch_size)] = {**timings, "speedup": ratio}
    return {
        "experiment": "ablation_structure",
        "title": (
            f"Ablation: structure adjustment ms/batch on {graph_name} "
            "(CSR rebuild vs STINGER-style slack blocks)"
        ),
        "headers": ["Batch", "CSR ms", "Dynamic ms", "Speedup"],
        "rows": rows,
        "detail": detail,
    }


def experiment_ablation_dense_mode(
    graph_name: str = "TT",
    fractions: Sequence[float] = (0.0, 0.1, 0.3, 1.01),
    batch_size: int = 100,
    algo: str = "BP",
    seed: int = 29,
) -> Dict:
    """Dense-refinement threshold sweep (computation-aware switching):
    0.0 always rebuilds densely, >1 never does."""
    graph = paper_graph(graph_name, weighted=True)
    factory = BENCH_ALGORITHMS[algo]
    rows = []
    for fraction in fractions:
        metrics = EngineMetrics()
        engine = GraphBoltEngine(
            factory(), num_iterations=BENCH_ITERATIONS,
            dense_refine_fraction=fraction, metrics=metrics,
        )
        engine.run(graph)
        batch = uniform_batch(graph, batch_size, seed=seed)
        before = metrics.snapshot()
        start = time.perf_counter()
        values = engine.apply_mutations(batch)
        seconds = time.perf_counter() - start
        delta = metrics.delta_since(before)
        truth = LigraEngine(factory()).run(engine.graph, BENCH_ITERATIONS)
        worst = float(np.abs(values - truth).max())
        if worst > 0.05:
            raise AssertionError(f"fraction {fraction} diverged by {worst}")
        rows.append([
            fraction, round(seconds, 4), delta.edge_computations,
        ])
    return {
        "experiment": "ablation_dense_mode",
        "title": (
            f"Ablation: dense-refinement threshold, {algo} on "
            f"{graph_name} ({batch_size} mutations)"
        ),
        "headers": ["DenseFraction", "ApplySeconds", "EdgeComputations"],
        "rows": rows,
    }
