"""Declarative experiment matrix: YAML run tables -> ``BENCH_*.json``.

The paper's evaluation is a structured grid of topology x scale x
engine runs (Tables 5-9, Figures 4-9).  This module replaces hand-built
pytest configs with a declarative run-table loader in the style of
muBench's 180-run experiment definition and stack_route_sim's
``ExperimentRunner``/``scrape_metrics`` loop (SNIPPETS.md snippets 2/3):

- :func:`load_table` parses and validates a YAML run table whose
  ``axes`` (topology, scale, algorithm, engine, backend, storage,
  scenario, admission, faults, replication, slo, ...) are expanded as
  a cartesian product, minus declared ``exclude`` combinations;
- :func:`run_matrix` executes every expanded run deterministically,
  scraping each through a scoped PR-2 metrics registry, and assembles a
  schema-versioned ``BENCH_<area>.json`` payload (config hash, seed,
  wall-clock percentiles, engine work counters, peak shard imbalance)
  plus a paper-style text table;
- :func:`canonical_payload` strips the timing section so that the same
  YAML + seed yields a *byte-identical* payload -- the determinism pin
  the test suite enforces and the regression gate (:mod:`gate`)
  compares against committed baselines.

Run tables for the legacy paper drivers (Tables 5/6/9) carry a
``driver:`` key instead of being executed generically; the benchmark
suite routes their previously hand-built configs through
:func:`driver_kwargs` / :func:`run_driver` so the grid lives in YAML.
"""

from __future__ import annotations

import contextlib
import hashlib
import itertools
import json
import os
import tempfile
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph import generators
from repro.graph.csr import CSRGraph
from repro.graph.mutation import MutationBatch
from repro.graph.stream import hotspot_storm
from repro.obs.registry import peak_rss_bytes, scoped_registry
from repro.runtime.exec import (
    ExecutionBackend,
    SerialBackend,
    ShardedBackend,
    load_imbalance,
)

__all__ = [
    "SCHEMA_VERSION",
    "AXIS_ORDER",
    "RunTable",
    "RunSpec",
    "MatrixError",
    "load_table",
    "expand",
    "config_hash",
    "run_matrix",
    "canonical_payload",
    "validate_payload",
    "matrices_dir",
    "driver_kwargs",
    "run_driver",
    "payload_filename",
]

#: Bump on any incompatible change to the emitted payload layout.
SCHEMA_VERSION = 1

#: Canonical config-key order; also the run-id segment order.
AXIS_ORDER = (
    "topology", "scale", "algorithm", "engine", "backend", "storage",
    "scenario", "admission", "faults", "replication", "slo",
    "batch_size", "num_batches", "iterations", "delete_fraction",
    "edge_factor", "seed",
)

#: Per-key defaults merged under ``fixed``.
DEFAULTS: Dict[str, object] = {
    "topology": "rmat",
    "scale": 7,
    "algorithm": "PR",
    "engine": "graphbolt",
    "backend": "serial",
    "storage": "heap",
    "scenario": "uniform",
    "admission": "none",
    "faults": "none",
    "replication": "off",
    "slo": "none",
    "batch_size": 20,
    "num_batches": 2,
    "iterations": 10,
    "delete_fraction": 0.3,
    "edge_factor": 4,
    "seed": 0,
}

TOPOLOGIES = ("rmat", "rmat_xl", "ws", "er", "paper")
ENGINES = ("ligra", "gbreset", "graphbolt")
STORAGES = ("heap", "mmap")
SCENARIOS = ("uniform", "hi", "lo", "hotspot_storm")
ADMISSIONS = ("none", "block", "shed-oldest", "coalesce")
REPLICATIONS = ("off", "2-replica", "2-replica+lag-fault")

#: Timing percentiles reported per run (plus mean/total/max).
WALL_PERCENTILES = (50, 90, 99)


class MatrixError(ValueError):
    """A run table failed validation."""


# ----------------------------------------------------------------------
# Run-table model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One fully resolved cell of the matrix."""

    run_id: str
    config: Dict[str, object]

    @property
    def hash(self) -> str:
        return config_hash(self.config)


@dataclass
class RunTable:
    """A parsed, validated YAML run table."""

    area: str
    path: str
    schema: int = SCHEMA_VERSION
    title: str = ""
    axes: Dict[str, List[object]] = field(default_factory=dict)
    fixed: Dict[str, object] = field(default_factory=dict)
    exclude: List[Dict[str, object]] = field(default_factory=list)
    gate: Dict[str, object] = field(default_factory=dict)
    driver: Optional[str] = None
    driver_fixed: Dict[str, object] = field(default_factory=dict)

    def runs(self) -> List[RunSpec]:
        return expand(self)


def matrices_dir() -> str:
    """``benchmarks/matrices/`` at the repository root."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )))
    return os.path.join(here, "benchmarks", "matrices")


def _resolve_table_path(name_or_path: str) -> str:
    if os.path.sep in name_or_path or name_or_path.endswith(".yaml"):
        return name_or_path
    return os.path.join(matrices_dir(), f"{name_or_path}.yaml")


def load_table(name_or_path: str) -> RunTable:
    """Parse and validate a run table (name under ``benchmarks/matrices``
    or an explicit path)."""
    import yaml

    path = _resolve_table_path(name_or_path)
    if not os.path.exists(path):
        raise MatrixError(f"run table not found: {path}")
    with open(path) as handle:
        raw = yaml.safe_load(handle)
    if not isinstance(raw, dict):
        raise MatrixError(f"{path}: run table must be a mapping")
    schema = raw.get("schema", SCHEMA_VERSION)
    if schema != SCHEMA_VERSION:
        raise MatrixError(
            f"{path}: unsupported schema {schema!r} "
            f"(this build reads schema {SCHEMA_VERSION})"
        )
    area = raw.get("area")
    if not isinstance(area, str) or not area:
        raise MatrixError(f"{path}: 'area' must be a non-empty string")
    table = RunTable(
        area=area,
        path=path,
        schema=schema,
        title=str(raw.get("title", "")),
        axes={str(k): list(v) for k, v in (raw.get("axes") or {}).items()},
        fixed=dict(raw.get("fixed") or {}),
        exclude=[dict(rule) for rule in (raw.get("exclude") or [])],
        gate=dict(raw.get("gate") or {}),
        driver=raw.get("driver"),
        driver_fixed=dict(raw.get("driver_fixed") or {}),
    )
    if table.driver is not None:
        if table.driver not in DRIVER_TABLES:
            raise MatrixError(
                f"{path}: unknown driver {table.driver!r} "
                f"(choose from {sorted(DRIVER_TABLES)})"
            )
        return table
    _validate_axes(table)
    # Expansion performs the per-run semantic checks (engine/serving
    # compatibility), so a bad table fails at load time, not run time.
    expand(table)
    return table


def _validate_axes(table: RunTable) -> None:
    for section_name, section in (("axes", table.axes),
                                  ("fixed", table.fixed)):
        for key in section:
            if key not in AXIS_ORDER:
                raise MatrixError(
                    f"{table.path}: unknown {section_name} key {key!r} "
                    f"(choose from {list(AXIS_ORDER)})"
                )
    for key, values in table.axes.items():
        if not values:
            raise MatrixError(f"{table.path}: axis {key!r} is empty")
        if key in table.fixed:
            raise MatrixError(
                f"{table.path}: {key!r} appears in both axes and fixed"
            )
    for rule in table.exclude:
        for key in rule:
            if key not in AXIS_ORDER:
                raise MatrixError(
                    f"{table.path}: exclude rule uses unknown key {key!r}"
                )


def _check_value(table_path: str, key: str, value: object) -> None:
    """Validate one resolved config value against the vocabulary."""
    if key == "topology" and value not in TOPOLOGIES:
        raise MatrixError(
            f"{table_path}: topology {value!r} not in {TOPOLOGIES}")
    if key == "engine" and value not in ENGINES:
        raise MatrixError(
            f"{table_path}: engine {value!r} not in {ENGINES}")
    if key == "storage" and value not in STORAGES:
        raise MatrixError(
            f"{table_path}: storage {value!r} not in {STORAGES}")
    if key == "scenario" and value not in SCENARIOS:
        raise MatrixError(
            f"{table_path}: scenario {value!r} not in {SCENARIOS}")
    if key == "admission" and value not in ADMISSIONS:
        raise MatrixError(
            f"{table_path}: admission {value!r} not in {ADMISSIONS}")
    if key == "replication" and value not in REPLICATIONS:
        raise MatrixError(
            f"{table_path}: replication {value!r} not in {REPLICATIONS}")
    if key == "backend":
        _parse_backend(str(value))
    if key == "faults":
        _parse_faults(str(value))
    if key == "slo" and value != "none":
        from repro.obs.slo import resolve_slo_path

        if not os.path.exists(resolve_slo_path(str(value))):
            raise MatrixError(
                f"{table_path}: slo {value!r} does not resolve to a "
                f"file (a name under benchmarks/slos/ or a path), "
                f"or 'none'"
            )
    if key in ("batch_size", "num_batches", "iterations", "edge_factor",
               "seed") and not isinstance(value, int):
        raise MatrixError(f"{table_path}: {key} must be an integer, "
                          f"got {value!r}")


def _parse_backend(spec: str) -> ExecutionBackend:
    name, _, suffix = spec.partition(":")
    if name == "serial":
        return SerialBackend()
    if name == "sharded":
        return ShardedBackend(int(suffix) if suffix else 4)
    raise MatrixError(f"unknown backend {spec!r}; "
                      f"use 'serial' or 'sharded[:P]'")


def _parse_faults(spec: str) -> int:
    """``none``/``chaos`` -> 0, ``poison:<N>`` -> N (cadence in batches).

    ``chaos`` carries no cadence: it wraps every replication link in a
    seeded lossy transport (drop/duplicate/corrupt/reorder/delay at
    10%), so it needs a replication axis and is handled in the serving
    executor."""
    if spec in ("none", "chaos"):
        return 0
    name, _, suffix = spec.partition(":")
    if name == "poison" and suffix.isdigit() and int(suffix) > 0:
        return int(suffix)
    raise MatrixError(f"unknown fault plan {spec!r}; "
                      f"use 'none', 'chaos', or 'poison:<N>'")


def _parse_replication(spec: str) -> Tuple[int, bool]:
    """``off`` -> (0, False); ``2-replica[+lag-fault]`` -> (2, fault?)."""
    if spec == "off":
        return 0, False
    base, _, fault = spec.partition("+")
    if base.endswith("-replica") and base[:-len("-replica")].isdigit():
        replicas = int(base[:-len("-replica")])
        if replicas > 0 and fault in ("", "lag-fault"):
            return replicas, fault == "lag-fault"
    raise MatrixError(f"unknown replication plan {spec!r}; "
                      f"use 'off' or '<N>-replica[+lag-fault]'")


def _is_serving(config: Dict) -> bool:
    """An slo/replication plan implies the serving loop, like
    admission/faults do: both attach to the resilient server."""
    return (config["admission"] != "none"
            or config["faults"] != "none"
            or config["replication"] != "off"
            or config["slo"] != "none")


def expand(table: RunTable) -> List[RunSpec]:
    """Cartesian-expand the axes into deterministic run specs."""
    if table.driver is not None:
        raise MatrixError(
            f"{table.path}: driver tables are not expanded; use "
            f"run_driver({table.driver!r})"
        )
    axis_names = [key for key in AXIS_ORDER if key in table.axes]
    extra = [key for key in table.axes if key not in AXIS_ORDER]
    if extra:
        raise MatrixError(f"{table.path}: unknown axes {extra}")
    specs: List[RunSpec] = []
    for combo in itertools.product(
            *(table.axes[name] for name in axis_names)):
        config = dict(DEFAULTS)
        config.update(table.fixed)
        config.update(dict(zip(axis_names, combo)))
        config = {key: config[key] for key in AXIS_ORDER}
        if any(all(config.get(k) == v for k, v in rule.items())
               for rule in table.exclude):
            continue
        for key, value in config.items():
            _check_value(table.path, key, value)
        _check_run_semantics(table.path, config)
        run_id = "/".join(str(config[name]) for name in axis_names)
        specs.append(RunSpec(run_id=run_id, config=config))
    if not specs:
        raise MatrixError(f"{table.path}: matrix expanded to zero runs")
    ids = [spec.run_id for spec in specs]
    if len(set(ids)) != len(ids):
        raise MatrixError(f"{table.path}: duplicate run ids in expansion")
    return specs


def _check_run_semantics(table_path: str, config: Dict) -> None:
    serving = _is_serving(config)
    if serving and config["engine"] != "graphbolt":
        raise MatrixError(
            f"{table_path}: admission/fault/slo runs exercise the "
            f"serving loop, which is GraphBolt-based; engine "
            f"{config['engine']!r} is invalid there (add an exclude "
            f"rule)"
        )
    if config["topology"] == "paper":
        if config["scale"] not in generators.PAPER_GRAPH_SCALES:
            raise MatrixError(
                f"{table_path}: paper topology needs scale in "
                f"{sorted(generators.PAPER_GRAPH_SCALES)}, "
                f"got {config['scale']!r}"
            )
    elif not isinstance(config["scale"], int):
        raise MatrixError(
            f"{table_path}: scale must be an integer for "
            f"{config['topology']!r}, got {config['scale']!r}"
        )


# ----------------------------------------------------------------------
# Hashing and canonicalisation
# ----------------------------------------------------------------------
def _canonical_json(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      default=str)


def config_hash(obj) -> str:
    """Stable short hash of any JSON-serialisable configuration."""
    return hashlib.sha256(
        _canonical_json(obj).encode("utf-8")
    ).hexdigest()[:16]


def canonical_payload(payload: Dict) -> str:
    """The payload as canonical JSON with every timing section removed.

    Two runs of the same YAML + seed must agree byte-for-byte on this
    string (the determinism pin); only the ``timing`` subtrees and the
    rendered table rows (which embed rounded seconds) may differ.
    """
    def strip(obj):
        if isinstance(obj, dict):
            return {
                key: strip(value) for key, value in obj.items()
                if key not in ("timing", "rows")
            }
        if isinstance(obj, list):
            return [strip(item) for item in obj]
        return obj

    return _canonical_json(strip(payload))


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _make_store(storage: str, stack: contextlib.ExitStack):
    """The cell's snapshot store; mmap cells spool into a per-run
    temporary directory that the stack tears down."""
    from repro.graph.storage import store_from_spec

    if storage == "heap":
        return store_from_spec("heap")
    root = stack.enter_context(
        tempfile.TemporaryDirectory(prefix="repro-matrix-store-"))
    return store_from_spec(f"{storage}:{root}")


def _build_graph(config: Dict, store) -> CSRGraph:
    topology = config["topology"]
    scale = config["scale"]
    seed = config["seed"]
    if topology == "rmat_xl":
        # The xl tier builds *through* the store: the mmap path streams
        # edge chunks to a disk spool, the heap path materializes the
        # full edge list -- the comparison the storage axis exists for.
        return generators.rmat_xl(int(scale), config["edge_factor"],
                                  seed=seed, weighted=True, store=store)
    if topology == "paper":
        graph = generators.paper_graph(str(scale), weighted=True)
    elif topology == "rmat":
        graph = generators.rmat(int(scale), config["edge_factor"],
                                seed=seed, weighted=True)
    elif topology == "ws":
        graph = generators.watts_strogatz(int(scale),
                                          config["edge_factor"],
                                          seed=seed, weighted=True)
    elif topology == "er":
        vertices = int(scale)
        graph = generators.erdos_renyi(
            vertices, config["edge_factor"] * vertices,
            seed=seed, weighted=True,
        )
    else:
        raise MatrixError(f"unknown topology {topology!r}")
    return store.publish(graph)


def _values_crc32(values) -> int:
    """CRC of the final value vector -- the bit-for-bit equality pin
    across the storage axis (part of the canonical payload)."""
    if values is None:
        return 0
    return zlib.crc32(np.ascontiguousarray(values).tobytes())


def _build_batches(config: Dict, graph: CSRGraph) -> List[MutationBatch]:
    from repro.bench.workloads import targeted_batch, uniform_batch

    scenario = config["scenario"]
    seed = config["seed"]
    count = config["num_batches"]
    size = config["batch_size"]
    if scenario == "hotspot_storm":
        return hotspot_storm(graph, count, size,
                             delete_fraction=config["delete_fraction"],
                             seed=seed)
    if scenario in ("hi", "lo"):
        return [
            targeted_batch(graph, size, scenario,
                           delete_fraction=config["delete_fraction"],
                           seed=seed + index)
            for index in range(count)
        ]
    return [
        uniform_batch(graph, size,
                      delete_fraction=config["delete_fraction"],
                      seed=seed + index)
        for index in range(count)
    ]


def _wall_summary(per_batch: Sequence[float],
                  setup_seconds: float) -> Dict[str, float]:
    arr = np.asarray(per_batch, dtype=float)
    if arr.size == 0:
        arr = np.zeros(1)
    summary = {
        f"p{q}": round(float(np.percentile(arr, q)), 6)
        for q in WALL_PERCENTILES
    }
    summary.update({
        "mean": round(float(arr.mean()), 6),
        "max": round(float(arr.max()), 6),
        "total": round(float(arr.sum()), 6),
        "setup": round(float(setup_seconds), 6),
    })
    return summary


def _execute_engine_run(config: Dict, graph: CSRGraph,
                        batches: List[MutationBatch]) -> Tuple[Dict, Dict]:
    """One engine-mode run; returns ``(work, timing)``."""
    from repro.bench.experiments import BENCH_ALGORITHMS
    from repro.bench.harness import (
        DeltaRunner,
        GraphBoltRunner,
        LigraRunner,
        run_stream,
    )
    from repro.runtime.exec import use_backend

    runner_cls = {
        "ligra": LigraRunner,
        "gbreset": DeltaRunner,
        "graphbolt": GraphBoltRunner,
    }[config["engine"]]
    factory = BENCH_ALGORITHMS[config["algorithm"]]
    runner = runner_cls(factory, config["iterations"])
    backend = _parse_backend(str(config["backend"]))
    with use_backend(backend), scoped_registry() as registry:
        result = run_stream(runner, graph, batches)
        metrics = result.final_metrics
        histogram = registry.histogram(f"{runner.name}.batch_seconds")
        work = {
            "edge_computations": int(metrics.edge_computations),
            "vertex_computations": int(metrics.vertex_computations),
            "iterations": int(metrics.iterations),
            "refinement_iterations": int(metrics.refinement_iterations),
            "hybrid_iterations": int(metrics.hybrid_iterations),
            "shard_imbalance": round(
                load_imbalance(metrics.shard_loads), 6),
            "num_shards": backend.num_shards,
            "batches_applied": len(result.batches),
            "values_crc32": _values_crc32(result.final_values),
        }
        timing = {
            "wall_seconds": _wall_summary(
                [batch.total_seconds for batch in result.batches],
                result.setup_seconds,
            ),
            "compute_seconds": round(result.total_apply_seconds, 6),
            "batch_seconds_histogram_count": histogram.count,
        }
    return work, timing


def _execute_serving_run(config: Dict, graph: CSRGraph,
                         batches: List[MutationBatch]
                         ) -> Tuple[Dict, Dict]:
    """One serving-mode run (admission control and/or fault plan)."""
    from repro.bench.experiments import BENCH_ALGORITHMS
    from repro.recovery import RecoveryManager
    from repro.serving.resilience import (
        BreakerConfig,
        ResilientAnalyticsServer,
    )
    from repro.serving.server import StreamingAnalyticsServer
    from repro.testing import faults as fault_mod

    poison_every = _parse_faults(str(config["faults"]))
    replicas, lag_fault = _parse_replication(str(config["replication"]))
    policy = (config["admission"] if config["admission"] != "none"
              else "block")
    with tempfile.TemporaryDirectory() as state_dir, \
            scoped_registry(), \
            fault_mod.scoped_failpoints() as failpoints:
        recovery = None
        if poison_every or replicas:
            # Poison plans quarantine through the recovery path;
            # replicas replay the writer's shipped WAL -- both need a
            # durable writer.  Replicated runs checkpoint every other
            # batch so shipping happens *during* the loop (otherwise
            # the short matrix runs would only converge at the final
            # sync and the planted lag fault would never be reached).
            recovery = RecoveryManager(
                state_dir, checkpoint_every=2 if replicas else 8)
        server = StreamingAnalyticsServer(
            BENCH_ALGORITHMS[config["algorithm"]], graph,
            approx_iterations=config["iterations"], recovery=recovery,
        )
        slo_sink = None
        observer = None
        if config["slo"] != "none":
            from repro.obs.slo import (
                RecordingSink,
                SLOEvaluator,
                load_slo_file,
            )
            from repro.serving.observe import ServingObserver

            slo_sink = RecordingSink()
            observer = ServingObserver(
                evaluator=SLOEvaluator(
                    load_slo_file(str(config["slo"])), sink=slo_sink,
                ),
                # Deterministic observer mode: wall-clock signals are
                # dropped from the samples, so SLO alert counts -- like
                # the breaker below -- are a pure function of the run
                # config (the canonical-payload determinism pin).
                deterministic=True,
            )
        resilient = ResilientAnalyticsServer(
            server,
            queue_capacity=8,
            admission=policy,
            # Count-based signals only: the latency SLO is timing-driven
            # and would make the work section nondeterministic.
            breaker=BreakerConfig(quarantine_threshold=2,
                                  cooldown_submits=2),
            observer=observer,
        )
        cluster = None
        lag_max = 0
        if replicas:
            from repro.serving.replication import ReplicationCluster

            cluster = ReplicationCluster(
                resilient, BENCH_ALGORITHMS[config["algorithm"]],
                state_dir, replicas=replicas,
            )
        chaos_wrappers = []
        if str(config["faults"]) == "chaos":
            if cluster is None:
                raise MatrixError(
                    "fault plan 'chaos' requires a replication axis "
                    "(it wraps the replica shipping links)"
                )
            from repro.serving.chaos import ChaosConfig, wrap_cluster

            chaos_wrappers = wrap_cluster(
                cluster,
                ChaosConfig.all_faults(seed=int(config["seed"]),
                                       rate=0.1),
            )
        per_batch: List[float] = []
        start_all = time.perf_counter()
        for index, batch in enumerate(batches):
            if poison_every and (index + 1) % poison_every == 0:
                failpoints.arm(
                    "engine.refine", kind="fault",
                    hit=failpoints.hit_count("engine.refine") + 1,
                )
            if lag_fault and index == len(batches) // 2:
                # Planted replica lag: one delivery round is deferred
                # (the shipment stays pending), so staleness rises and
                # the next round drains it -- deterministic, count-based.
                failpoints.arm(
                    "replication.receive", kind="fault",
                    hit=failpoints.hit_count("replication.receive") + 1,
                )
            start = time.perf_counter()
            resilient.submit(batch)
            if cluster is not None:
                cluster.replicate()
                lag_max = max(lag_max, cluster.staleness())
            per_batch.append(time.perf_counter() - start)
        resilient.drain()
        for wrapper in chaos_wrappers:
            wrapper.flush()
        if cluster is not None:
            cluster.sync()
        setup_seconds = time.perf_counter() - start_all
        health = resilient.health()
        work = {
            "submitted": health.submitted,
            "applied": health.applied,
            "shed": health.shed,
            "coalesced": health.coalesced,
            "deferred": health.deferred,
            "quarantine_count": health.quarantine_count,
            "restores": health.restores,
            "breaker_state": health.breaker_state,
            "queue_depth": health.queue_depth,
            "staleness_batches": health.staleness_batches,
            "admission_policy": health.admission_policy,
            "values_crc32": _values_crc32(
                resilient.server.engine.values),
        }
        if slo_sink is not None:
            fired = [alert for alert in slo_sink.alerts
                     if alert.state == "firing"]
            work["slo_alerts"] = len(fired)
            work["slo_firing"] = (
                ",".join(sorted({alert.slo for alert in fired}))
                or "-"
            )
        if cluster is not None:
            work["replication_lag_max"] = lag_max
            work["replicas_converged"] = int(cluster.max_lag() == 0)
            work["fence_rejections"] = sum(
                replica.fence_rejections
                for replica in cluster.replicas.values()
            )
        if chaos_wrappers:
            work["chaos_faults_injected"] = sum(
                count
                for wrapper in chaos_wrappers
                for kind, count in wrapper.counts.items()
                if kind != "sent"
            )
            work["dead_letters"] = len(cluster.dead_letters)
        timing = {
            "wall_seconds": _wall_summary(per_batch, 0.0),
            "drain_seconds": round(
                setup_seconds - float(np.sum(per_batch)), 6),
        }
        if cluster is not None:
            cluster.close()
        if recovery is not None:
            recovery.close()
    return work, timing


def execute_run(spec: RunSpec) -> Dict:
    """Execute one cell and return its payload entry.

    ``timing.peak_rss_bytes`` records the process-lifetime RSS
    high-water mark after the cell ran.  Being a high-water mark it
    never decreases across cells, so memory comparisons (the xl
    matrix's storage axis) must list the low-memory configuration
    *first* in the axis -- run order is expansion order.  Timing is
    stripped from the canonical payload, so the environment-dependent
    reading never perturbs the determinism pin or the gate baselines.
    """
    config = spec.config
    with contextlib.ExitStack() as stack:
        store = _make_store(str(config["storage"]), stack)
        graph = _build_graph(config, store)
        batches = _build_batches(config, graph)
        serving = _is_serving(config)
        if serving:
            work, timing = _execute_serving_run(config, graph, batches)
        else:
            work, timing = _execute_engine_run(config, graph, batches)
        work["graph_vertices"] = graph.num_vertices
        work["graph_edges"] = graph.num_edges
        work["mutations"] = sum(len(batch) for batch in batches)
        timing["peak_rss_bytes"] = peak_rss_bytes()
    return {
        "id": spec.run_id,
        "mode": "serving" if serving else "engine",
        "config": dict(config),
        "config_hash": spec.hash,
        "work": work,
        "timing": timing,
    }


def run_matrix(table: RunTable,
               progress: Optional[Callable[[str], None]] = None) -> Dict:
    """Execute a whole run table and assemble its ``BENCH_*`` payload."""
    specs = expand(table)
    runs = []
    for spec in specs:
        if progress is not None:
            progress(spec.run_id)
        runs.append(execute_run(spec))
    headers = ["Run", "Mode", "EdgeComp", "Alerts", "p50 s", "p99 s",
               "Total s", "RSS MiB"]
    rows = []
    for run in runs:
        wall = run["timing"]["wall_seconds"]
        rows.append([
            run["id"], run["mode"],
            run["work"].get("edge_computations",
                            run["work"].get("applied", 0)),
            run["work"].get("slo_alerts", "-"),
            wall["p50"], wall["p99"], wall["total"],
            round(run["timing"]["peak_rss_bytes"] / 2 ** 20, 1),
        ])
    matrix_config = {
        "axes": table.axes,
        "fixed": table.fixed,
        "exclude": table.exclude,
        "defaults": DEFAULTS,
        "schema": table.schema,
    }
    return {
        "schema_version": SCHEMA_VERSION,
        "area": table.area,
        "matrix": os.path.basename(table.path),
        "title": table.title or f"Experiment matrix '{table.area}'",
        "config_hash": config_hash(matrix_config),
        "seed": table.fixed.get("seed", DEFAULTS["seed"]),
        "gate": table.gate,
        "num_runs": len(runs),
        "runs": runs,
        "headers": headers,
        "rows": rows,
    }


def payload_filename(area: str) -> str:
    return f"BENCH_{area}.json"


# ----------------------------------------------------------------------
# Schema validation for emitted payloads
# ----------------------------------------------------------------------
_RUN_REQUIRED = ("id", "mode", "config", "config_hash", "work", "timing")
_TOP_REQUIRED = ("schema_version", "area", "matrix", "title",
                 "config_hash", "seed", "num_runs", "runs", "headers",
                 "rows")


def validate_payload(payload: Dict) -> None:
    """Check a ``BENCH_*`` payload against the versioned schema.

    Raises :class:`MatrixError` naming the first offending field.
    """
    if not isinstance(payload, dict):
        raise MatrixError("payload must be a mapping")
    for key in _TOP_REQUIRED:
        if key not in payload:
            raise MatrixError(f"payload missing key {key!r}")
    if payload["schema_version"] != SCHEMA_VERSION:
        raise MatrixError(
            f"payload schema_version {payload['schema_version']!r} != "
            f"{SCHEMA_VERSION}"
        )
    if not isinstance(payload["runs"], list) or not payload["runs"]:
        raise MatrixError("payload 'runs' must be a non-empty list")
    if payload["num_runs"] != len(payload["runs"]):
        raise MatrixError("payload num_runs disagrees with len(runs)")
    seen = set()
    for index, run in enumerate(payload["runs"]):
        for key in _RUN_REQUIRED:
            if key not in run:
                raise MatrixError(f"runs[{index}] missing key {key!r}")
        if run["id"] in seen:
            raise MatrixError(f"duplicate run id {run['id']!r}")
        seen.add(run["id"])
        if run["mode"] not in ("engine", "serving"):
            raise MatrixError(
                f"runs[{index}] mode {run['mode']!r} invalid")
        if run["config_hash"] != config_hash(run["config"]):
            raise MatrixError(
                f"runs[{index}] config_hash does not match its config")
        wall = run["timing"].get("wall_seconds")
        if not isinstance(wall, dict):
            raise MatrixError(
                f"runs[{index}] timing.wall_seconds missing")
        for quantile in [f"p{q}" for q in WALL_PERCENTILES] + [
                "mean", "max", "total"]:
            if not isinstance(wall.get(quantile), (int, float)):
                raise MatrixError(
                    f"runs[{index}] wall_seconds.{quantile} must be a "
                    f"number"
                )
        for key, value in run["work"].items():
            if not isinstance(value, (int, float, str)):
                raise MatrixError(
                    f"runs[{index}] work.{key} must be scalar, "
                    f"got {type(value).__name__}"
                )
    # The canonical form must round-trip: json-serialisable throughout.
    canonical_payload(payload)


# ----------------------------------------------------------------------
# Driver tables: the legacy Table 5/6/9 grids, now declarative
# ----------------------------------------------------------------------
#: axis-name -> driver-kwarg translation per legacy driver.
DRIVER_TABLES: Dict[str, Dict[str, str]] = {
    "table5": {"algorithm": "algorithms", "graph": "graphs",
               "batch_size": "batch_sizes"},
    "table6": {"algorithm": "algorithms", "cores": "cores"},
    "table9": {"algorithm": "algorithms", "graph": "graphs"},
}


def driver_kwargs(name_or_path: str) -> Dict[str, object]:
    """Resolve a driver run table into the driver's keyword arguments."""
    table = load_table(name_or_path)
    if table.driver is None:
        raise MatrixError(f"{table.path}: not a driver table")
    mapping = DRIVER_TABLES[table.driver]
    kwargs: Dict[str, object] = {}
    for axis, values in table.axes.items():
        if axis not in mapping:
            raise MatrixError(
                f"{table.path}: driver {table.driver!r} does not take "
                f"axis {axis!r} (choose from {sorted(mapping)})"
            )
        kwargs[mapping[axis]] = list(values)
    kwargs.update(table.driver_fixed)
    return kwargs


def run_driver(name_or_path: str, **overrides) -> Dict:
    """Run a legacy paper driver with its YAML-declared grid."""
    from repro.bench import experiments as exp

    table = load_table(name_or_path)
    if table.driver is None:
        raise MatrixError(f"{table.path}: not a driver table")
    kwargs = driver_kwargs(name_or_path)
    kwargs.update(overrides)
    driver_fn = {
        "table5": exp.experiment_table5,
        "table6": exp.experiment_table6,
        "table9": exp.experiment_table9,
    }[table.driver]
    return driver_fn(**kwargs)
