"""Work/span parallel cost model.

The paper's Table 6 runs the same experiments on 32 and 96 cores and makes
one architectural point: GraphBolt's speedup over GB-Reset *shrinks* as
cores increase, because GB-Reset has far more (parallelisable) work and so
benefits more from extra cores, while GraphBolt's small refinement work is
bounded by its span (the iteration-by-iteration dependency chain).

Python's GIL makes real shared-memory parallel vertex processing
counterproductive (this is the ``repro_why`` gate for this paper), so we
reproduce the *effect* with Brent's theorem: given measured work ``W``
(edge + vertex computations) and span ``S`` (critical-path work: the
per-iteration sequential overhead times the number of iterations), the
projected time on ``p`` cores is::

    T_p = (W - S) / p + S

scaled by a per-unit cost calibrated from the measured single-threaded
wall clock.  This is a *simulation substitute*, clearly labelled as such
in DESIGN.md; it is used only by the Table 6 scaling benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.metrics import EngineMetrics

__all__ = ["ParallelModel", "CostBreakdown"]


@dataclass
class CostBreakdown:
    """Work/span decomposition of one measured engine run."""

    work_units: float
    span_units: float
    measured_seconds: float

    @property
    def unit_cost(self) -> float:
        """Seconds per work unit implied by the sequential measurement."""
        if self.work_units <= 0:
            return 0.0
        return self.measured_seconds / self.work_units


class ParallelModel:
    """Projects sequential measurements onto a core count.

    Parameters
    ----------
    per_iteration_span:
        Work units on the critical path of one iteration (barrier + frontier
        bookkeeping).  The BSP barrier makes each iteration inherently
        sequential with respect to the next, so span grows with iterations,
        not with edges.
    """

    def __init__(self, per_iteration_span: float = 2048.0) -> None:
        if per_iteration_span <= 0:
            raise ValueError("span per iteration must be positive")
        self.per_iteration_span = per_iteration_span

    def breakdown(
        self, metrics: EngineMetrics, measured_seconds: float
    ) -> CostBreakdown:
        work = float(metrics.edge_computations + metrics.vertex_computations)
        # ``iterations`` already counts hybrid delta steps; refinement
        # iterations are tracked separately and add to the span.
        iterations = max(metrics.iterations + metrics.refinement_iterations, 1)
        span = iterations * self.per_iteration_span
        # Span can never exceed total work plus the fixed barrier cost.
        work = max(work, span)
        return CostBreakdown(work, span, measured_seconds)

    def project(
        self,
        metrics: EngineMetrics,
        measured_seconds: float,
        cores: int,
    ) -> float:
        """Projected wall-clock on ``cores`` cores (Brent's bound)."""
        if cores < 1:
            raise ValueError("core count must be >= 1")
        cost = self.breakdown(metrics, measured_seconds)
        if cost.work_units <= 0:
            return measured_seconds
        parallel_units = (cost.work_units - cost.span_units) / cores
        return (parallel_units + cost.span_units) * cost.unit_cost

    def speedup(
        self,
        metrics: EngineMetrics,
        measured_seconds: float,
        cores: int,
    ) -> float:
        projected = self.project(metrics, measured_seconds, cores)
        if projected <= 0:
            return float("inf")
        return measured_seconds / projected
