"""Work/span parallel cost model.

The paper's Table 6 runs the same experiments on 32 and 96 cores and makes
one architectural point: GraphBolt's speedup over GB-Reset *shrinks* as
cores increase, because GB-Reset has far more (parallelisable) work and so
benefits more from extra cores, while GraphBolt's small refinement work is
bounded by its span (the iteration-by-iteration dependency chain).

Python's GIL makes real shared-memory parallel vertex processing
counterproductive (this is the ``repro_why`` gate for this paper), so we
reproduce the *effect* with Brent's theorem: given measured work ``W``
(edge + vertex computations) and span ``S`` (critical-path work: the
per-iteration sequential overhead times the number of iterations), the
projected time on ``p`` cores is::

    T_p = (W - S) / p + S

scaled by a per-unit cost calibrated from the measured single-threaded
wall clock.  This is a *simulation substitute*, clearly labelled as such
in DESIGN.md; it is used only by the Table 6 scaling benchmark.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.runtime.metrics import EngineMetrics

__all__ = [
    "CostBreakdown",
    "MakespanBreakdown",
    "MakespanModel",
    "ParallelModel",
    "lpt_makespan",
]


@dataclass
class CostBreakdown:
    """Work/span decomposition of one measured engine run."""

    work_units: float
    span_units: float
    measured_seconds: float

    @property
    def unit_cost(self) -> float:
        """Seconds per work unit implied by the sequential measurement."""
        if self.work_units <= 0:
            return 0.0
        return self.measured_seconds / self.work_units


class ParallelModel:
    """Projects sequential measurements onto a core count.

    Parameters
    ----------
    per_iteration_span:
        Work units on the critical path of one iteration (barrier + frontier
        bookkeeping).  The BSP barrier makes each iteration inherently
        sequential with respect to the next, so span grows with iterations,
        not with edges.
    """

    def __init__(self, per_iteration_span: float = 2048.0) -> None:
        if per_iteration_span <= 0:
            raise ValueError("span per iteration must be positive")
        self.per_iteration_span = per_iteration_span

    def breakdown(
        self, metrics: EngineMetrics, measured_seconds: float
    ) -> CostBreakdown:
        work = float(metrics.edge_computations + metrics.vertex_computations)
        # ``iterations`` already counts hybrid delta steps; refinement
        # iterations are tracked separately and add to the span.
        iterations = max(metrics.iterations + metrics.refinement_iterations, 1)
        span = iterations * self.per_iteration_span
        # Span can never exceed total work plus the fixed barrier cost.
        work = max(work, span)
        return CostBreakdown(work, span, measured_seconds)

    def project(
        self,
        metrics: EngineMetrics,
        measured_seconds: float,
        cores: int,
    ) -> float:
        """Projected wall-clock on ``cores`` cores (Brent's bound)."""
        if cores < 1:
            raise ValueError("core count must be >= 1")
        cost = self.breakdown(metrics, measured_seconds)
        if cost.work_units <= 0:
            return measured_seconds
        parallel_units = (cost.work_units - cost.span_units) / cores
        return (parallel_units + cost.span_units) * cost.unit_cost

    def speedup(
        self,
        metrics: EngineMetrics,
        measured_seconds: float,
        cores: int,
    ) -> float:
        projected = self.project(metrics, measured_seconds, cores)
        if projected <= 0:
            return float("inf")
        return measured_seconds / projected


# ----------------------------------------------------------------------
# Measured-makespan model over per-shard load vectors
# ----------------------------------------------------------------------
def lpt_makespan(loads: Sequence[float], cores: int) -> float:
    """Makespan of scheduling ``loads`` onto ``cores`` with LPT greedy.

    Longest-processing-time list scheduling (a 4/3-approximation of the
    optimum): shards sorted by decreasing load, each assigned to the
    currently least-loaded core.  With one core the makespan is the
    total load; with at least as many cores as shards it is the largest
    shard -- the ``max(shard loads)`` floor no core count can beat.
    """
    if cores < 1:
        raise ValueError("core count must be >= 1")
    work = [float(load) for load in loads if load > 0]
    if not work:
        return 0.0
    if cores == 1:
        return sum(work)
    if cores >= len(work):
        return max(work)
    bins: List[float] = [0.0] * cores
    heapq.heapify(bins)
    for load in sorted(work, reverse=True):
        heapq.heappush(bins, heapq.heappop(bins) + load)
    return max(bins)


@dataclass
class MakespanBreakdown:
    """Per-shard decomposition of one measured engine run."""

    shard_loads: np.ndarray
    span_units: float
    measured_seconds: float

    @property
    def total_work(self) -> float:
        return float(self.shard_loads.sum())

    @property
    def unit_cost(self) -> float:
        """Seconds per work unit implied by the serial measurement
        (which executed the whole load vector plus the span)."""
        units = self.total_work + self.span_units
        if units <= 0:
            return 0.0
        return self.measured_seconds / units

    @property
    def imbalance(self) -> float:
        """Max-over-mean shard load (1.0 = perfectly balanced)."""
        if self.shard_loads.size == 0 or self.total_work <= 0:
            return 1.0
        return float(self.shard_loads.max() / self.shard_loads.mean())


class MakespanModel:
    """Projects measured per-shard load vectors onto a core count.

    Where :class:`ParallelModel` divides one aggregate work number by
    ``p`` (Brent's ``(W - S)/p + S``, which assumes work splits
    perfectly), this model schedules the *measured* shard loads recorded
    by :class:`~repro.runtime.exec.ShardedBackend` onto ``p`` cores and
    takes the resulting makespan -- so skew that concentrates work in a
    few shards is visible as a scaling floor, exactly the partition
    effect GBBS and the distributed-systems literature identify.  The
    per-iteration span (BSP barriers) is charged on top, and the unit
    cost is calibrated so one core reproduces the measurement.
    """

    def __init__(self, per_iteration_span: float = 2048.0) -> None:
        if per_iteration_span <= 0:
            raise ValueError("span per iteration must be positive")
        self.per_iteration_span = per_iteration_span

    def breakdown(
        self, metrics: EngineMetrics, measured_seconds: float
    ) -> MakespanBreakdown:
        if metrics.shard_loads:
            keys = sorted(metrics.shard_loads, key=_shard_order)
            loads = np.array(
                [metrics.shard_loads[key] for key in keys],
                dtype=np.float64,
            )
        else:
            # No backend load vector recorded (serial legacy run): the
            # aggregate work is one undecomposed shard.
            loads = np.array(
                [float(metrics.edge_computations
                       + metrics.vertex_computations)],
                dtype=np.float64,
            )
        iterations = max(
            metrics.iterations + metrics.refinement_iterations, 1
        )
        span = iterations * self.per_iteration_span
        return MakespanBreakdown(loads, span, measured_seconds)

    def project(
        self,
        metrics: EngineMetrics,
        measured_seconds: float,
        cores: int,
    ) -> float:
        """Projected wall-clock on ``cores`` cores: calibrated
        ``LPT-makespan(shard loads, p) + span``."""
        cost = self.breakdown(metrics, measured_seconds)
        if cost.total_work <= 0:
            return measured_seconds
        makespan = lpt_makespan(cost.shard_loads, cores)
        return (makespan + cost.span_units) * cost.unit_cost

    def speedup(
        self,
        metrics: EngineMetrics,
        measured_seconds: float,
        cores: int,
    ) -> float:
        projected = self.project(metrics, measured_seconds, cores)
        if projected <= 0:
            return float("inf")
        return measured_seconds / projected

    def imbalance(self, metrics: EngineMetrics) -> float:
        """Load-imbalance factor of the recorded shard vector."""
        return self.breakdown(metrics, 0.0).imbalance


def _shard_order(key: str):
    return (0, int(key)) if key.isdigit() else (1, key)
