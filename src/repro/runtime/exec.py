"""The partitioned execution layer: pluggable kernel backends.

GraphBolt's scaling argument (Table 6) is about how work decomposes
across cores, yet a monolithic ``edge_map`` gather has no decomposition
to measure.  This module introduces one:

- :class:`PartitionedCSR` splits the vertex space into ``P`` contiguous,
  degree-balanced shards (GBBS-style block ownership: the owner of a
  vertex owns its out-edges for push traversals and its in-edges for
  pull traversals).
- :class:`ExecutionBackend` is the dispatch point the shared kernel
  layer (:mod:`repro.ligra.interface`) and every engine route their
  gathers, aggregation scatters, and work counters through.
- :class:`SerialBackend` executes exactly as the pre-backend code did
  and attributes all work to a single shard.
- :class:`ShardedBackend` executes gathers shard by shard and applies
  ``Aggregation.scatter*`` shard-locally (each destination vertex is
  owned by exactly one shard), recording a *measured per-shard load
  vector* in :class:`~repro.runtime.metrics.EngineMetrics`.

**Bit-for-bit determinism.**  Float aggregation is order-sensitive, so
the sharded backend is constructed to touch every array element in the
same order the serial backend does: shard gathers of sorted vertex sets
are contiguous slices concatenated in shard order (the identical
arrays), and shard-local scatters partition the edge set by destination
owner with stable ordering -- each destination's contributions are
applied in the same relative order as serially, and no destination is
split across shards.  ``REPRO_EXEC_BACKEND=sharded`` therefore produces
results exactly equal to the serial default, which the equivalence
suite pins across all five engine families.

The backend is selected globally from the environment
(``REPRO_EXEC_BACKEND`` = ``serial`` | ``sharded`` | ``sharded:P``,
shard count also via ``REPRO_EXEC_SHARDS``) or programmatically with
:func:`set_backend` / :func:`use_backend`.  This layer is in-process:
it decomposes and measures the work a real multiprocess deployment
would distribute, which is what the calibrated makespan model
(:class:`~repro.runtime.parallel.MakespanModel`) consumes.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional, Tuple

import numpy as np

from repro.runtime.metrics import EngineMetrics

__all__ = [
    "DEFAULT_NUM_SHARDS",
    "ExecutionBackend",
    "PartitionedCSR",
    "SerialBackend",
    "ShardedBackend",
    "backend_from_env",
    "get_backend",
    "load_imbalance",
    "resolve_backend",
    "set_backend",
    "use_backend",
]

#: Shard count used when ``REPRO_EXEC_BACKEND=sharded`` is set without
#: an explicit ``REPRO_EXEC_SHARDS`` / ``sharded:P`` count.
DEFAULT_NUM_SHARDS = 4


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
class PartitionedCSR:
    """Contiguous, degree-balanced partition of a graph's vertex space.

    ``boundaries`` is an int64 array of length ``P + 1`` with
    ``boundaries[0] == 0`` and ``boundaries[-1] == num_vertices``; shard
    ``k`` owns vertices ``boundaries[k] .. boundaries[k+1] - 1``.
    Contiguity keeps shard membership a binary search and -- because CSR
    rows are laid out in vertex order -- makes each shard's out-edge
    block a contiguous slice of the CSR arrays.
    """

    def __init__(self, boundaries: np.ndarray) -> None:
        boundaries = np.asarray(boundaries, dtype=np.int64)
        if boundaries.ndim != 1 or boundaries.size < 2:
            raise ValueError("boundaries must be a 1-D array of P+1 cuts")
        if boundaries[0] != 0:
            raise ValueError("first boundary must be 0")
        if np.any(np.diff(boundaries) < 0):
            raise ValueError("boundaries must be non-decreasing")
        self.boundaries = boundaries

    # -- construction --------------------------------------------------
    @classmethod
    def compute(cls, graph, num_shards: int) -> "PartitionedCSR":
        """Degree-balanced contiguous split of ``graph``'s vertex space.

        Per-vertex load is ``out_degree + 1`` (each vertex also costs
        one apply), and cut points are placed at equal fractions of the
        cumulative load -- the standard prefix-sum block partitioning of
        parallel CSR kernels.  Deterministic for a given graph.
        """
        if num_shards < 1:
            raise ValueError("need at least one shard")
        num_vertices = graph.num_vertices
        if num_vertices == 0:
            return cls(np.zeros(num_shards + 1, dtype=np.int64))
        if hasattr(graph, "out_degrees"):
            loads = graph.out_degrees().astype(np.int64) + 1
        else:
            loads = np.ones(num_vertices, dtype=np.int64)
        cumulative = np.cumsum(loads)
        total = int(cumulative[-1])
        targets = total * np.arange(1, num_shards, dtype=np.float64)
        targets /= num_shards
        inner = np.searchsorted(cumulative, targets, side="left") + 1
        boundaries = np.empty(num_shards + 1, dtype=np.int64)
        boundaries[0] = 0
        boundaries[1:num_shards] = np.minimum(inner, num_vertices)
        boundaries[num_shards] = num_vertices
        boundaries[1:num_shards] = np.maximum.accumulate(
            boundaries[1:num_shards]
        )
        return cls(boundaries)

    @classmethod
    def for_graph(cls, graph, num_shards: int) -> "PartitionedCSR":
        """The cached partition of ``graph`` (computed on first use).

        The cache lives on the graph object so each snapshot carries its
        partition; :meth:`CSRGraph.with_num_vertices` propagates cached
        partitions to the grown snapshot by extending the last shard,
        keeping boundaries deterministic across vertex growth.
        """
        cache = getattr(graph, "_shard_cache", None)
        if cache is None:
            cache = {}
            try:
                graph._shard_cache = cache
            except AttributeError:
                pass
        partition = cache.get(num_shards)
        if (partition is None
                or partition.num_vertices != graph.num_vertices):
            partition = cls.compute(graph, num_shards)
            cache[num_shards] = partition
        return partition

    # -- shape ---------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.boundaries.size - 1

    @property
    def num_vertices(self) -> int:
        return int(self.boundaries[-1])

    def shard_sizes(self) -> np.ndarray:
        return np.diff(self.boundaries)

    # -- queries -------------------------------------------------------
    def shard_of(self, ids: np.ndarray) -> np.ndarray:
        """Owner shard of each vertex id (vectorised binary search)."""
        ids = np.asarray(ids, dtype=np.int64)
        return np.searchsorted(self.boundaries, ids, side="right") - 1

    def split_sorted(self, ids: np.ndarray) -> np.ndarray:
        """Positions cutting a *sorted* id array at shard boundaries.

        Returns ``P + 1`` cut positions; shard ``k``'s ids are
        ``ids[cuts[k]:cuts[k+1]]``.
        """
        return np.searchsorted(ids, self.boundaries)

    def extended_to(self, num_vertices: int) -> "PartitionedCSR":
        """The partition of a grown vertex space: the last shard absorbs
        every new vertex; all other boundaries are unchanged.

        Growing the graph must not reshuffle ownership of existing
        vertices mid-stream -- a rebalance would silently invalidate any
        per-shard state a deployment keeps across batches.
        """
        if num_vertices < self.num_vertices:
            raise ValueError("cannot shrink a partition")
        boundaries = self.boundaries.copy()
        boundaries[-1] = num_vertices
        return PartitionedCSR(boundaries)

    def __repr__(self) -> str:
        return (
            f"PartitionedCSR(P={self.num_shards}, "
            f"V={self.num_vertices})"
        )


def load_imbalance(shard_loads) -> float:
    """Max-over-mean load factor of a shard load vector (1.0 = perfectly
    balanced).  Accepts the ``EngineMetrics.shard_loads`` dict or any
    sequence; empty input reports 1.0."""
    if isinstance(shard_loads, dict):
        loads = np.array(list(shard_loads.values()), dtype=np.float64)
    else:
        loads = np.asarray(shard_loads, dtype=np.float64)
    if loads.size == 0 or loads.sum() <= 0:
        return 1.0
    return float(loads.max() / loads.mean())


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class ExecutionBackend:
    """Dispatch point for gathers, scatters, and work accounting.

    Engines hold one backend and route every edge gather
    (:meth:`gather_out` / :meth:`gather_all` / :meth:`gather_in`), every
    aggregation scatter (:meth:`scatter` / :meth:`scatter_retract` /
    :meth:`scatter_delta`) and vertex-apply accounting
    (:meth:`count_vertices`) through it.  Counting semantics are
    identical across backends: gathers add the gathered edge count to
    ``metrics.edge_computations`` exactly as the pre-backend kernel
    layer did (pass ``count=False`` for structural gathers that were
    never charged), while per-shard loads are recorded additionally in
    ``metrics.shard_loads``.
    """

    name = "backend"

    @property
    def num_shards(self) -> int:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name

    # -- gathers -------------------------------------------------------
    def gather_out(self, graph, vertices: np.ndarray,
                   metrics: Optional[EngineMetrics],
                   count: bool = True) -> Tuple[np.ndarray, ...]:
        raise NotImplementedError

    def gather_all(self, graph, metrics: Optional[EngineMetrics],
                   count: bool = True) -> Tuple[np.ndarray, ...]:
        raise NotImplementedError

    def gather_in(self, graph, vertices: np.ndarray,
                  metrics: Optional[EngineMetrics],
                  count: bool = True) -> Tuple[np.ndarray, ...]:
        raise NotImplementedError

    # -- scatters ------------------------------------------------------
    def scatter(self, graph, aggregation, aggregate, dst, contributions,
                metrics: Optional[EngineMetrics]) -> None:
        raise NotImplementedError

    def scatter_retract(self, graph, aggregation, aggregate, dst,
                        contributions,
                        metrics: Optional[EngineMetrics]) -> None:
        raise NotImplementedError

    def scatter_delta(self, graph, aggregation, aggregate, dst,
                      new_contributions, old_contributions,
                      metrics: Optional[EngineMetrics]) -> None:
        raise NotImplementedError

    # -- vertex work ---------------------------------------------------
    def count_vertices(self, graph, vertices,
                       metrics: Optional[EngineMetrics]) -> None:
        """Charge one apply per vertex; ``vertices`` is an id array or
        an int meaning a dense sweep over all of ``graph``'s vertices."""
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """The default: monolithic gathers/scatters, one implicit shard.

    Behaviour (arrays, ordering, counters) is exactly that of the
    pre-backend kernel layer; all load is attributed to shard ``"0"``.
    """

    name = "serial"

    @property
    def num_shards(self) -> int:
        return 1

    def _load(self, metrics, n) -> None:
        if metrics is not None and n:
            metrics.count_shard_load("0", n)

    def gather_out(self, graph, vertices, metrics, count=True):
        src, dst, weight = graph.out_edges_of(vertices)
        if metrics is not None and count:
            metrics.count_edges(src.size)
        self._load(metrics, src.size)
        return src, dst, weight

    def gather_all(self, graph, metrics, count=True):
        src, dst, weight = graph.all_edges()
        if metrics is not None and count:
            metrics.count_edges(src.size)
        self._load(metrics, src.size)
        return src, dst, weight

    def gather_in(self, graph, vertices, metrics, count=True):
        src, dst, weight = graph.in_edges_of(vertices)
        if metrics is not None and count:
            metrics.count_edges(src.size)
        self._load(metrics, src.size)
        return src, dst, weight

    def scatter(self, graph, aggregation, aggregate, dst, contributions,
                metrics) -> None:
        aggregation.scatter(aggregate, dst, contributions)
        self._load(metrics, np.asarray(dst).size)

    def scatter_retract(self, graph, aggregation, aggregate, dst,
                        contributions, metrics) -> None:
        aggregation.scatter_retract(aggregate, dst, contributions)
        self._load(metrics, np.asarray(dst).size)

    def scatter_delta(self, graph, aggregation, aggregate, dst,
                      new_contributions, old_contributions,
                      metrics) -> None:
        aggregation.scatter_delta(aggregate, dst, new_contributions,
                                  old_contributions)
        self._load(metrics, np.asarray(dst).size)

    def count_vertices(self, graph, vertices, metrics) -> None:
        if metrics is None:
            return
        n = (vertices if isinstance(vertices, int)
             else np.asarray(vertices).size)
        metrics.count_vertices(n)
        self._load(metrics, n)


class ShardedBackend(ExecutionBackend):
    """Shard-by-shard execution over a :class:`PartitionedCSR`.

    Gathers run once per owning shard and scatters are applied
    shard-locally (stable partition of the edge set by destination
    owner), so per-shard load vectors are *measured*, not modelled --
    while the concatenated results stay bit-for-bit identical to
    :class:`SerialBackend` (see module docstring).
    """

    name = "sharded"

    def __init__(self, num_shards: int = DEFAULT_NUM_SHARDS) -> None:
        if num_shards < 1:
            raise ValueError("need at least one shard")
        self._num_shards = int(num_shards)

    @property
    def num_shards(self) -> int:
        return self._num_shards

    def describe(self) -> str:
        return f"sharded:{self._num_shards}"

    def partition(self, graph) -> PartitionedCSR:
        return PartitionedCSR.for_graph(graph, self._num_shards)

    # -- load recording ------------------------------------------------
    def _record_loads(self, metrics, counts: np.ndarray) -> None:
        if metrics is None:
            return
        for shard in np.flatnonzero(counts):
            metrics.count_shard_load(str(int(shard)),
                                     int(counts[shard]))

    def _loads_by_owner(self, partition, owners: np.ndarray) -> np.ndarray:
        return np.bincount(partition.shard_of(owners),
                           minlength=self._num_shards)

    # -- gathers -------------------------------------------------------
    def gather_out(self, graph, vertices, metrics, count=True):
        return self._gather_sparse(graph, vertices, metrics, count,
                                   graph.out_edges_of, owner_axis=0)

    def gather_in(self, graph, vertices, metrics, count=True):
        # Pull gathers are owned by the *target* (the vertex whose
        # input set is being rebuilt), axis 1 of (src, dst, weight).
        return self._gather_sparse(graph, vertices, metrics, count,
                                   graph.in_edges_of, owner_axis=1)

    def _gather_sparse(self, graph, vertices, metrics, count, gather,
                       owner_axis):
        vertices = np.asarray(vertices, dtype=np.int64)
        partition = self.partition(graph)
        if vertices.size and np.any(np.diff(vertices) < 0):
            # Order-preserving fallback for unsorted vertex sets (none of
            # the engines produce one today): a single gather keeps the
            # serial edge order exactly; loads are still attributed to
            # the owning shards.
            arrays = gather(vertices)
            if metrics is not None and count:
                metrics.count_edges(arrays[0].size)
            self._record_loads(
                metrics,
                self._loads_by_owner(partition, arrays[owner_axis]),
            )
            return arrays
        cuts = partition.split_sorted(vertices)
        pieces = [
            gather(vertices[cuts[k]:cuts[k + 1]])
            for k in range(self._num_shards)
            if cuts[k + 1] > cuts[k]
        ]
        if not pieces:
            pieces = [gather(vertices)]
        counts = np.zeros(self._num_shards, dtype=np.int64)
        counts[np.flatnonzero(np.diff(cuts))] = [
            piece[0].size for piece in pieces
        ]
        self._record_loads(metrics, counts)
        total = int(counts.sum())
        if metrics is not None and count:
            metrics.count_edges(total)
        if len(pieces) == 1:
            return pieces[0]
        return tuple(
            np.concatenate([piece[axis] for piece in pieces])
            for axis in range(3)
        )

    def gather_all(self, graph, metrics, count=True):
        partition = self.partition(graph)
        if hasattr(graph, "out_offsets"):
            # CSR rows are in vertex order, so each shard's edge block
            # is the contiguous slice between its boundary offsets;
            # concatenation in shard order *is* the serial edge order.
            offsets = graph.out_offsets
            edge_cuts = offsets[partition.boundaries]
            src, dst, weight = graph.all_edges()
            counts = np.diff(edge_cuts)
            self._record_loads(metrics, counts)
        else:
            # Dynamic (slack-block) structures compact edges in their
            # own order; keep it and attribute loads by source owner.
            src, dst, weight = graph.all_edges()
            self._record_loads(metrics,
                               self._loads_by_owner(partition, src))
        if metrics is not None and count:
            metrics.count_edges(src.size)
        return src, dst, weight

    # -- scatters ------------------------------------------------------
    def _shard_slices(self, partition, dst):
        """Stable partition of scatter targets by owning shard.

        Returns ``(order, bounds)``: a stable permutation grouping the
        positions by destination shard and the group boundaries.  Every
        destination vertex falls in exactly one shard and the stable
        sort preserves each destination's contribution order, so
        applying ``scatter*`` per group equals one serial scatter
        bit for bit.
        """
        owners = partition.shard_of(dst)
        order = np.argsort(owners, kind="stable")
        bounds = np.searchsorted(
            owners[order], np.arange(self._num_shards + 1, dtype=np.int64)
        )
        return order, bounds

    def _scatter_by_shard(self, graph, dst, metrics, apply_slice) -> None:
        dst = np.asarray(dst, dtype=np.int64)
        if dst.size == 0:
            return
        partition = self.partition(graph)
        order, bounds = self._shard_slices(partition, dst)
        counts = np.diff(bounds)
        for shard in np.flatnonzero(counts):
            apply_slice(order[bounds[shard]:bounds[shard + 1]])
        self._record_loads(metrics, counts)

    def scatter(self, graph, aggregation, aggregate, dst, contributions,
                metrics) -> None:
        self._scatter_by_shard(
            graph, dst, metrics,
            lambda sel: aggregation.scatter(
                aggregate, dst[sel], contributions[sel]
            ),
        )

    def scatter_retract(self, graph, aggregation, aggregate, dst,
                        contributions, metrics) -> None:
        self._scatter_by_shard(
            graph, dst, metrics,
            lambda sel: aggregation.scatter_retract(
                aggregate, dst[sel], contributions[sel]
            ),
        )

    def scatter_delta(self, graph, aggregation, aggregate, dst,
                      new_contributions, old_contributions,
                      metrics) -> None:
        self._scatter_by_shard(
            graph, dst, metrics,
            lambda sel: aggregation.scatter_delta(
                aggregate, dst[sel], new_contributions[sel],
                old_contributions[sel],
            ),
        )

    # -- vertex work ---------------------------------------------------
    def count_vertices(self, graph, vertices, metrics) -> None:
        if metrics is None:
            return
        partition = self.partition(graph)
        if isinstance(vertices, int):
            metrics.count_vertices(vertices)
            if vertices == graph.num_vertices:
                counts = partition.shard_sizes()
            else:
                counts = np.zeros(self._num_shards, dtype=np.int64)
                counts[0] = vertices
            self._record_loads(metrics, counts)
            return
        vertices = np.asarray(vertices, dtype=np.int64)
        metrics.count_vertices(vertices.size)
        if vertices.size:
            self._record_loads(
                metrics, self._loads_by_owner(partition, vertices)
            )


# ----------------------------------------------------------------------
# Global selection
# ----------------------------------------------------------------------
_active_backend: Optional[ExecutionBackend] = None


def backend_from_env() -> ExecutionBackend:
    """Build the backend named by ``REPRO_EXEC_BACKEND``.

    ``serial`` (default) or ``sharded``; the shard count comes from a
    ``sharded:P`` suffix or ``REPRO_EXEC_SHARDS``.
    """
    spec = os.environ.get("REPRO_EXEC_BACKEND", "serial").strip().lower()
    name, _, suffix = spec.partition(":")
    if name in ("", "serial"):
        return SerialBackend()
    if name == "sharded":
        if suffix:
            shards = int(suffix)
        else:
            shards = int(os.environ.get("REPRO_EXEC_SHARDS",
                                        DEFAULT_NUM_SHARDS))
        return ShardedBackend(shards)
    raise ValueError(
        f"unknown REPRO_EXEC_BACKEND {spec!r}; "
        f"use 'serial', 'sharded', or 'sharded:P'"
    )


def get_backend() -> ExecutionBackend:
    """The process-wide backend (initialised from the environment)."""
    global _active_backend
    if _active_backend is None:
        _active_backend = backend_from_env()
    return _active_backend


def set_backend(backend: Optional[ExecutionBackend]) -> None:
    """Install a process-wide backend (None re-reads the environment)."""
    global _active_backend
    _active_backend = backend


@contextmanager
def use_backend(backend: ExecutionBackend):
    """Scoped backend override (tests, benchmarks)."""
    global _active_backend
    previous = _active_backend
    _active_backend = backend
    try:
        yield backend
    finally:
        _active_backend = previous


def resolve_backend(
    backend: Optional[ExecutionBackend],
) -> ExecutionBackend:
    """An explicit backend, or the process-wide one."""
    return backend if backend is not None else get_backend()
