"""Result validation helpers.

The paper validates every incremental run by comparing against a
from-scratch synchronous execution on the mutated graph (section 5.1:
"we validated correctness for each run by comparing final results").
These helpers implement that comparison and the relative-error census of
Table 1.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = [
    "relative_errors",
    "count_exceeding",
    "assert_same_results",
    "max_relative_error",
]

ArrayLike = Union[np.ndarray, list]


def relative_errors(actual: ArrayLike, expected: ArrayLike) -> np.ndarray:
    """Element-wise ``|actual - expected| / |expected|`` (vector values are
    reduced with the max error over components).

    ``expected`` must be finite: a NaN or infinity in the reference
    silently poisons every error it touches (``inf/inf`` is NaN, and a
    NaN never trips a ``>`` threshold), so it is rejected up front.
    Callers comparing algorithms with legitimate infinities (unreachable
    distances) must mask them first -- see
    :func:`repro.testing.oracle.compare_snapshots`.
    """
    actual_arr = np.asarray(actual, dtype=np.float64)
    expected_arr = np.asarray(expected, dtype=np.float64)
    if actual_arr.shape != expected_arr.shape:
        raise ValueError(
            f"shape mismatch: {actual_arr.shape} vs {expected_arr.shape}"
        )
    finite = np.isfinite(np.atleast_1d(expected_arr))
    if expected_arr.size and not finite.all():
        per_vertex = finite.reshape(finite.shape[0], -1).all(axis=1)
        bad = int(np.flatnonzero(~per_vertex)[0])
        raise ValueError(
            f"expected values must be finite (vertex {bad} is "
            f"NaN/inf); mask non-finite entries before comparing"
        )
    denom = np.abs(expected_arr)
    tiny = denom < 1e-300
    denom = np.where(tiny, 1.0, denom)
    err = np.abs(actual_arr - expected_arr) / denom
    err = np.where(tiny, np.abs(actual_arr - expected_arr), err)
    while err.ndim > 1:
        err = err.max(axis=-1)
    return err


def count_exceeding(actual: ArrayLike, expected: ArrayLike,
                    threshold: float) -> int:
    """Number of vertices whose relative error is >= ``threshold``.

    This is the Table 1 census ("No. of vertices with incorrect results,
    relative error >= 10% and >= 1%").
    """
    return int((relative_errors(actual, expected) >= threshold).sum())


def max_relative_error(actual: ArrayLike, expected: ArrayLike) -> float:
    err = relative_errors(actual, expected)
    return float(err.max()) if err.size else 0.0


def assert_same_results(actual: ArrayLike, expected: ArrayLike,
                        tolerance: float = 1e-7, context: str = "") -> None:
    """Raise ``AssertionError`` when results diverge beyond ``tolerance``.

    ``tolerance`` is a relative error bound; refinement replays float
    additions in a different order than a from-scratch run, so bit-exact
    equality is not expected (matching the C++ system, which uses atomic
    float adds with non-deterministic ordering).
    """
    err = relative_errors(actual, expected)
    worst = float(err.max()) if err.size else 0.0
    if worst > tolerance:
        idx = int(np.argmax(err))
        raise AssertionError(
            f"results diverge{' (' + context + ')' if context else ''}: "
            f"max relative error {worst:.3e} at vertex {idx} "
            f"exceeds tolerance {tolerance:.1e}"
        )
