"""Engine checkpointing.

Streaming deployments run for days; losing the tracked dependency
history to a crash would force a full re-run on the next mutation.
:func:`save_engine` persists a :class:`~repro.core.engine.GraphBoltEngine`'s
complete processing state -- graph snapshot, rolling values/aggregate,
frontier, and the per-iteration dependency history -- to a single
``.npz`` file; :func:`load_engine` reconstructs an engine that continues
exactly where the saved one stopped (same values, same refinement
behaviour on the next batch).

Durability discipline (see ``docs/operations.md``):

- **Atomic publish** -- the payload is written to a temp file in the
  *same directory* and moved into place with ``os.replace``, so a crash
  mid-write leaves either the previous checkpoint or none, never a
  truncated ``.npz``.  ``save_engine`` returns the real on-disk path
  (``numpy`` appends ``.npz`` to suffix-less names; the returned path
  always names an existing file).
- **Checksum in the payload** -- a CRC32 over every array's name,
  dtype, shape, and bytes is stored under ``payload_crc32`` and
  verified by :func:`load_engine` before anything is interpreted.
- **Structural validation on load** -- array shapes, dtypes, and index
  ranges are checked against ``num_vertices`` so a corrupted (or
  wrong-file) checkpoint raises a clear ``ValueError`` instead of
  propagating garbage into the engine.

Graph payload modes (format version 3):

- ``inline`` (heap graphs) -- the six canonical CSR+CSC arrays are
  stored verbatim, so :func:`load_engine` reconstructs the snapshot
  through :meth:`CSRGraph.from_canonical` with **zero** re-sorts; the
  pre-v3 format stored raw ``(src, dst, weight)`` triples and paid two
  O(E log E) lexsorts on every restore.
- ``manifest`` (mmap-store graphs) -- the payload records a JSON
  *store manifest reference* (root, snapshot id, per-array segment
  file + dtype + count + CRC32) instead of inlining gigabytes of edge
  arrays.  The referenced snapshot is pinned in the store for as long
  as the checkpoint file exists, and restore reopens the segment
  files as ``np.memmap`` views (``store_root`` overrides the recorded
  root -- replicas pass their own spool).

The algorithm itself is *not* serialised (closures and potentials do
not round-trip safely through arrays); the caller supplies an equally
configured algorithm instance at load time, and a fingerprint check
rejects obvious mismatches.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
import zipfile
import zlib
from contextlib import contextmanager
from typing import Dict, Optional

import numpy as np

from repro.core.engine import GraphBoltEngine
from repro.core.history import DependencyHistory
from repro.core.model import IncrementalAlgorithm
from repro.core.pruning import PruningPolicy
from repro.graph.csr import CSRGraph
from repro.graph.storage import open_snapshot_reference
from repro.ligra.delta import DeltaState
from repro.testing import faults

__all__ = [
    "load_engine",
    "read_checkpoint_extra",
    "read_store_manifest",
    "save_engine",
    "verify_checkpoint_blob",
]

_FORMAT_VERSION = 3
_CRC_KEY = "payload_crc32"
_EXTRA_PREFIX = "extra_"
_GRAPH_ARRAYS = (
    "out_offsets", "out_targets", "out_weights",
    "in_offsets", "in_sources", "in_weights",
)


def _fingerprint(algorithm: IncrementalAlgorithm) -> str:
    return (
        f"{type(algorithm).__name__}|{algorithm.name}|"
        f"{algorithm.value_shape}|{algorithm.aggregation_shape}|"
        f"{algorithm.aggregation.name}"
    )


def _payload_crc32(payload: Dict[str, np.ndarray]) -> int:
    """CRC32 over every entry's name, dtype, shape, and raw bytes."""
    crc = 0
    for key in sorted(payload):
        if key == _CRC_KEY:
            continue
        arr = np.asarray(payload[key])
        for piece in (key, str(arr.dtype), str(arr.shape)):
            crc = zlib.crc32(piece.encode("utf-8"), crc)
        crc = zlib.crc32(np.ascontiguousarray(arr).tobytes(), crc)
    return crc


def _normalise_path(path: str) -> str:
    """The path ``numpy`` will actually write (suffix made explicit)."""
    return path if path.endswith(".npz") else path + ".npz"


def save_engine(engine: GraphBoltEngine, path: str,
                extra: Optional[Dict[str, np.ndarray]] = None) -> str:
    """Atomically persist a run engine's state; returns the on-disk path.

    ``extra`` entries (e.g. a recovery sequence number) are stored under
    ``extra_``-prefixed keys, covered by the payload checksum, ignored
    by :func:`load_engine`, and read back with
    :func:`read_checkpoint_extra`.
    """
    engine._require_run()
    graph = engine.graph
    if not isinstance(graph, CSRGraph):
        graph = graph.to_csr()
    state = engine._state
    history = engine._history

    store = getattr(graph, "store", None)
    store_backed = (
        store is not None
        and store.kind == "mmap"
        and graph.snapshot_id is not None
    )
    payload = {
        "format_version": np.int64(_FORMAT_VERSION),
        "fingerprint": np.array(_fingerprint(engine.algorithm)),
        "num_vertices": np.int64(graph.num_vertices),
        "values": state.values,
        "prev_values": state.prev_values,
        "aggregate": state.aggregate,
        "frontier": state.frontier,
        "iteration": np.int64(state.iteration),
        "num_iterations": np.int64(engine.num_iterations),
        "until_convergence": np.bool_(engine.until_convergence),
        "hist_initial": history.initial_values,
        "hist_identity": history.identity_aggregate,
        "hist_len": np.int64(history.horizon),
    }
    if store_backed:
        # Out-of-core snapshot: record a reference to the store's
        # published segment files instead of inlining the edge arrays.
        payload["graph_mode"] = np.array("manifest")
        payload["store_manifest"] = np.array(
            json.dumps(store.manifest_entry(graph.snapshot_id),
                       sort_keys=True)
        )
    else:
        # Heap snapshot: the six canonical arrays round-trip through
        # CSRGraph.from_canonical without re-sorting on restore.
        payload["graph_mode"] = np.array("inline")
        for name in _GRAPH_ARRAYS:
            payload[name] = getattr(graph, name)
    for index, record in enumerate(history.records):
        payload[f"rec_{index}_g_idx"] = record.g_idx
        payload[f"rec_{index}_g_values"] = record.g_values
        payload[f"rec_{index}_c_idx"] = record.c_idx
        payload[f"rec_{index}_c_values"] = record.c_values
    if extra:
        for key, value in extra.items():
            payload[f"{_EXTRA_PREFIX}{key}"] = np.asarray(value)
    payload[_CRC_KEY] = np.uint32(_payload_crc32(payload))

    path = _normalise_path(path)
    directory = os.path.dirname(os.path.abspath(path))
    faults.hit("checkpoint.write")
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".npz.tmp")
    try:
        with os.fdopen(fd, "wb") as stream:
            np.savez_compressed(stream, **payload)
        faults.hit("checkpoint.replace")
        os.replace(tmp_path, path)
    except BaseException:
        # A failed (or crashed-over) write must not leave the temp file
        # masquerading as state; the published checkpoint is untouched.
        if os.path.exists(tmp_path):
            os.remove(tmp_path)
        raise
    if store_backed:
        # Pin the referenced snapshot so store compaction keeps its
        # segment files alive for as long as this checkpoint exists;
        # the pin self-expires once the owner file is rotated away.
        store.pin(graph.snapshot_id, owner=path)
    return path


# ----------------------------------------------------------------------
# Load-time validation
# ----------------------------------------------------------------------
def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(f"corrupt checkpoint: {message}")


@contextmanager
def _checkpoint_data(path: str):
    """Open an ``.npz`` checkpoint, folding every way a damaged archive
    can fail (bad zip directory, bad member CRC, truncated deflate
    stream, missing arrays) into one clear ``ValueError``.

    ``npz`` members decompress lazily, so these errors can surface at
    any ``data[key]`` access inside the block, not just at open."""
    try:
        with np.load(path, allow_pickle=False) as data:
            yield data
    except ValueError:
        raise
    except (zipfile.BadZipFile, zlib.error, EOFError, KeyError) as exc:
        raise ValueError(
            f"corrupt checkpoint: {path} is unreadable "
            f"({type(exc).__name__}: {exc})"
        ) from exc


def verify_checkpoint_blob(blob: bytes, context: str = "<blob>") -> None:
    """Run the full payload verification on checkpoint bytes *before*
    they land anywhere.

    The end-to-end integrity gate for replication: a checkpoint blob
    corrupted in transit must be rejected at receive time, never
    adopted onto a replica's disk where a later reload would silently
    fall back past it.  Raises :class:`ValueError` on any damage --
    bad zip structure, member CRC, payload checksum, or structural
    violation.
    """
    try:
        with np.load(io.BytesIO(blob), allow_pickle=False) as data:
            _verify_payload(data, context)
    except ValueError:
        raise
    except (zipfile.BadZipFile, zlib.error, EOFError, KeyError,
            OSError) as exc:
        raise ValueError(
            f"corrupt checkpoint: {context} is unreadable "
            f"({type(exc).__name__}: {exc})"
        ) from exc


def _check_index_array(name: str, arr: np.ndarray,
                       num_vertices: int) -> None:
    _require(arr.ndim == 1, f"{name} must be 1-D, got shape {arr.shape}")
    _require(np.issubdtype(arr.dtype, np.integer),
             f"{name} must be integer, got dtype {arr.dtype}")
    if arr.size:
        _require(int(arr.min()) >= 0 and int(arr.max()) < num_vertices,
                 f"{name} indexes outside [0, {num_vertices})")


def _verify_canonical_arrays(data, num_vertices: int) -> None:
    """Structural checks on the six inline CSR+CSC arrays.

    ``from_canonical`` trusts its inputs (that is the point -- zero
    copies, zero sorts), so everything it would otherwise silently
    mis-index on is rejected here."""
    num_edges = int(data["out_targets"].size)
    for name in ("out_offsets", "in_offsets"):
        arr = data[name]
        _require(arr.ndim == 1 and np.issubdtype(arr.dtype, np.integer),
                 f"{name} must be a 1-D integer array")
        _require(arr.size == num_vertices + 1,
                 f"{name} length {arr.size} != num_vertices + 1")
        _require(int(arr[0]) == 0 and int(arr[-1]) == num_edges,
                 f"{name} endpoints do not span the edge arrays")
        if arr.size > 1:
            _require(int(np.diff(arr).min()) >= 0,
                     f"{name} is not monotone")
    _check_index_array("out_targets", data["out_targets"], num_vertices)
    _check_index_array("in_sources", data["in_sources"], num_vertices)
    _require(int(data["in_sources"].size) == num_edges,
             "CSC edge count does not match CSR edge count")
    _require(data["out_weights"].shape == data["out_targets"].shape,
             "out_weights does not match out_targets")
    _require(data["in_weights"].shape == data["in_sources"].shape,
             "in_weights does not match in_sources")


def _parse_store_manifest(text: str) -> dict:
    try:
        reference = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"corrupt checkpoint: unreadable store manifest ({exc})"
        ) from exc
    _require(isinstance(reference, dict),
             "store manifest is not a JSON object")
    for key in ("kind", "root", "snapshot", "num_vertices", "arrays"):
        _require(key in reference, f"store manifest is missing {key!r}")
    return reference


def _verify_payload(data, path: str) -> None:
    """Checksum plus structural validation, before interpretation."""
    version = int(data["format_version"])
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint version {version}")
    if _CRC_KEY not in data:
        raise ValueError(f"corrupt checkpoint: {path} has no checksum")
    payload = {key: data[key] for key in data.files if key != _CRC_KEY}
    stored = int(np.uint32(data[_CRC_KEY]))
    actual = _payload_crc32(payload)
    _require(stored == actual,
             f"checksum mismatch in {path} "
             f"(stored {stored}, computed {actual})")

    num_vertices = int(data["num_vertices"])
    _require(num_vertices >= 0, "negative vertex count")
    _require("graph_mode" in data, "missing graph payload mode")
    mode = str(data["graph_mode"])
    if mode == "inline":
        for name in _GRAPH_ARRAYS:
            _require(name in data, f"inline payload is missing {name}")
        _verify_canonical_arrays(data, num_vertices)
    elif mode == "manifest":
        _require("store_manifest" in data,
                 "manifest payload has no store reference")
        reference = _parse_store_manifest(str(data["store_manifest"]))
        _require(int(reference.get("num_vertices", -1)) == num_vertices,
                 "store manifest vertex count does not match payload")
    else:
        raise ValueError(
            f"corrupt checkpoint: unknown graph payload mode {mode!r}"
        )
    values = data["values"]
    _require(values.shape[0] == num_vertices if values.ndim else False,
             f"values length {values.shape} != num_vertices "
             f"{num_vertices}")
    _require(data["prev_values"].shape == values.shape,
             "prev_values shape does not match values")
    _require(data["aggregate"].shape[0] == num_vertices
             if data["aggregate"].ndim else False,
             "aggregate length != num_vertices")
    _check_index_array("frontier", data["frontier"], num_vertices)
    _require(int(data["iteration"]) >= 0, "negative iteration")
    _require(data["hist_initial"].shape == values.shape,
             "history initial values shape does not match values")
    hist_len = int(data["hist_len"])
    _require(hist_len >= 0, "negative history length")
    for index in range(hist_len):
        for part in ("g_idx", "g_values", "c_idx", "c_values"):
            _require(f"rec_{index}_{part}" in data,
                     f"history record {index} is missing {part}")
        g_idx = data[f"rec_{index}_g_idx"]
        c_idx = data[f"rec_{index}_c_idx"]
        _check_index_array(f"rec_{index}_g_idx", g_idx, num_vertices)
        _check_index_array(f"rec_{index}_c_idx", c_idx, num_vertices)
        _require(data[f"rec_{index}_g_values"].shape[0] == g_idx.size,
                 f"history record {index} aggregate values do not "
                 f"match indices")
        _require(data[f"rec_{index}_c_values"].shape[0] == c_idx.size,
                 f"history record {index} vertex values do not "
                 f"match indices")


def _restore_graph(data, store_root: Optional[str]) -> CSRGraph:
    """Rebuild the snapshot from either payload mode, with zero sorts."""
    num_vertices = int(data["num_vertices"])
    if str(data["graph_mode"]) == "manifest":
        reference = _parse_store_manifest(str(data["store_manifest"]))
        return open_snapshot_reference(reference, store_root=store_root)
    return CSRGraph.from_canonical(
        num_vertices,
        *(np.ascontiguousarray(data[name]) for name in _GRAPH_ARRAYS),
    )


def load_engine(
    path: str,
    algorithm: IncrementalAlgorithm,
    pruning: Optional[PruningPolicy] = None,
    store_root: Optional[str] = None,
    **engine_kwargs,
) -> GraphBoltEngine:
    """Reconstruct an engine from a checkpoint.

    ``algorithm`` must be configured identically to the one that was
    checkpointed (same class, shapes and aggregation); a fingerprint
    mismatch raises ``ValueError`` rather than corrupting results.  The
    payload checksum and array shapes/ranges are verified first, so a
    corrupted file fails loudly.

    ``store_root`` only matters for manifest-mode checkpoints: it
    overrides the snapshot-store root recorded at save time (replicas
    restore from their own spool directory, not the writer's).
    """
    with _checkpoint_data(path) as data:
        _verify_payload(data, path)
        stored = str(data["fingerprint"])
        actual = _fingerprint(algorithm)
        if stored != actual:
            raise ValueError(
                f"algorithm mismatch: checkpoint was {stored!r}, "
                f"got {actual!r}"
            )
        graph = _restore_graph(data, store_root)
        engine = GraphBoltEngine(
            algorithm,
            num_iterations=int(data["num_iterations"]),
            until_convergence=bool(data["until_convergence"]),
            pruning=pruning,
            **engine_kwargs,
        )
        engine._streaming = engine.streaming_factory(graph)
        engine._state = DeltaState(
            values=data["values"].copy(),
            prev_values=data["prev_values"].copy(),
            aggregate=data["aggregate"].copy(),
            frontier=data["frontier"].copy(),
            iteration=int(data["iteration"]),
        )
        history = DependencyHistory(data["hist_initial"],
                                    data["hist_identity"])
        for index in range(int(data["hist_len"])):
            history.record(
                data[f"rec_{index}_g_idx"],
                data[f"rec_{index}_g_values"],
                data[f"rec_{index}_c_idx"],
                data[f"rec_{index}_c_values"],
            )
        engine._history = history
        return engine


def read_store_manifest(path: str) -> Optional[dict]:
    """The store manifest reference a checkpoint records, or ``None``.

    Replication uses this to discover which snapshot-store segment
    files a manifest-mode checkpoint depends on, so they can be
    shipped to replicas ahead of the checkpoint itself."""
    with _checkpoint_data(path) as data:
        _verify_payload(data, path)
        if str(data["graph_mode"]) != "manifest":
            return None
        return _parse_store_manifest(str(data["store_manifest"]))


def read_checkpoint_extra(path: str) -> Dict[str, np.ndarray]:
    """Checksum-verified ``extra`` metadata stored by :func:`save_engine`."""
    with _checkpoint_data(path) as data:
        _verify_payload(data, path)
        return {
            key[len(_EXTRA_PREFIX):]: data[key]
            for key in data.files if key.startswith(_EXTRA_PREFIX)
        }
