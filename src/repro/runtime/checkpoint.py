"""Engine checkpointing.

Streaming deployments run for days; losing the tracked dependency
history to a crash would force a full re-run on the next mutation.
:func:`save_engine` persists a :class:`~repro.core.engine.GraphBoltEngine`'s
complete processing state -- graph snapshot, rolling values/aggregate,
frontier, and the per-iteration dependency history -- to a single
``.npz`` file; :func:`load_engine` reconstructs an engine that continues
exactly where the saved one stopped (same values, same refinement
behaviour on the next batch).

The algorithm itself is *not* serialised (closures and potentials do
not round-trip safely through arrays); the caller supplies an equally
configured algorithm instance at load time, and a fingerprint check
rejects obvious mismatches.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.engine import GraphBoltEngine
from repro.core.history import DependencyHistory
from repro.core.model import IncrementalAlgorithm
from repro.core.pruning import PruningPolicy
from repro.graph.csr import CSRGraph
from repro.ligra.delta import DeltaState

__all__ = ["save_engine", "load_engine"]

_FORMAT_VERSION = 1


def _fingerprint(algorithm: IncrementalAlgorithm) -> str:
    return (
        f"{type(algorithm).__name__}|{algorithm.name}|"
        f"{algorithm.value_shape}|{algorithm.aggregation_shape}|"
        f"{algorithm.aggregation.name}"
    )


def save_engine(engine: GraphBoltEngine, path: str) -> str:
    """Persist a run engine's state; returns the path written."""
    engine._require_run()
    graph = engine.graph
    if not isinstance(graph, CSRGraph):
        graph = graph.to_csr()
    src, dst, weight = graph.all_edges()
    state = engine._state
    history = engine._history

    payload = {
        "format_version": np.int64(_FORMAT_VERSION),
        "fingerprint": np.array(_fingerprint(engine.algorithm)),
        "num_vertices": np.int64(graph.num_vertices),
        "src": src,
        "dst": dst,
        "weight": weight,
        "values": state.values,
        "prev_values": state.prev_values,
        "aggregate": state.aggregate,
        "frontier": state.frontier,
        "iteration": np.int64(state.iteration),
        "num_iterations": np.int64(engine.num_iterations),
        "until_convergence": np.bool_(engine.until_convergence),
        "hist_initial": history.initial_values,
        "hist_identity": history.identity_aggregate,
        "hist_len": np.int64(history.horizon),
    }
    for index, record in enumerate(history.records):
        payload[f"rec_{index}_g_idx"] = record.g_idx
        payload[f"rec_{index}_g_values"] = record.g_values
        payload[f"rec_{index}_c_idx"] = record.c_idx
        payload[f"rec_{index}_c_values"] = record.c_values
    np.savez_compressed(path, **payload)
    return path


def load_engine(
    path: str,
    algorithm: IncrementalAlgorithm,
    pruning: Optional[PruningPolicy] = None,
    **engine_kwargs,
) -> GraphBoltEngine:
    """Reconstruct an engine from a checkpoint.

    ``algorithm`` must be configured identically to the one that was
    checkpointed (same class, shapes and aggregation); a fingerprint
    mismatch raises ``ValueError`` rather than corrupting results.
    """
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version}")
        stored = str(data["fingerprint"])
        actual = _fingerprint(algorithm)
        if stored != actual:
            raise ValueError(
                f"algorithm mismatch: checkpoint was {stored!r}, "
                f"got {actual!r}"
            )
        graph = CSRGraph(
            int(data["num_vertices"]), data["src"], data["dst"],
            data["weight"],
        )
        engine = GraphBoltEngine(
            algorithm,
            num_iterations=int(data["num_iterations"]),
            until_convergence=bool(data["until_convergence"]),
            pruning=pruning,
            **engine_kwargs,
        )
        engine._streaming = engine.streaming_factory(graph)
        engine._state = DeltaState(
            values=data["values"].copy(),
            prev_values=data["prev_values"].copy(),
            aggregate=data["aggregate"].copy(),
            frontier=data["frontier"].copy(),
            iteration=int(data["iteration"]),
        )
        history = DependencyHistory(data["hist_initial"],
                                    data["hist_identity"])
        for index in range(int(data["hist_len"])):
            history.record(
                data[f"rec_{index}_g_idx"],
                data[f"rec_{index}_g_values"],
                data[f"rec_{index}_c_idx"],
                data[f"rec_{index}_c_values"],
            )
        engine._history = history
        return engine
