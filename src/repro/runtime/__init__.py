"""Shared runtime services: metrics, parallel cost model, validation."""

from repro.runtime.metrics import EngineMetrics, MemoryReport, Timer
from repro.runtime.parallel import ParallelModel

__all__ = ["EngineMetrics", "MemoryReport", "ParallelModel", "Timer"]
