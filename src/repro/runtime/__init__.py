"""Shared runtime services: metrics, execution backends, cost models."""

from repro.runtime.exec import (
    ExecutionBackend,
    PartitionedCSR,
    SerialBackend,
    ShardedBackend,
    get_backend,
    load_imbalance,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.runtime.metrics import EngineMetrics, MemoryReport, Timer
from repro.runtime.parallel import (
    MakespanModel,
    ParallelModel,
    lpt_makespan,
)

__all__ = [
    "EngineMetrics",
    "ExecutionBackend",
    "MakespanModel",
    "MemoryReport",
    "ParallelModel",
    "PartitionedCSR",
    "SerialBackend",
    "ShardedBackend",
    "Timer",
    "get_backend",
    "load_imbalance",
    "lpt_makespan",
    "resolve_backend",
    "set_backend",
    "use_backend",
]
