"""Deadline budgets for bounded-latency queries.

A deadline is an object with one question -- :meth:`Deadline.expired` --
consulted by :func:`repro.core.hybrid.hybrid_forward` before each
synchronous iteration (iteration granularity: a started iteration always
completes, so the state handed back is a *valid* BSP state, merely a
shallower one).  Two implementations:

- :class:`WallClockDeadline` -- the production budget, seconds of
  ``time.perf_counter``;
- :class:`StepDeadline` -- expires after a fixed number of checks.
  Deterministic, which is what lets the test suite pin the acceptance
  property "deadline results are bit-for-bit a truncated run" without
  racing the clock.
"""

from __future__ import annotations

import time

__all__ = ["Deadline", "StepDeadline", "WallClockDeadline"]


class Deadline:
    """Interface: anything with ``expired() -> bool``."""

    def expired(self) -> bool:  # pragma: no cover - interface
        raise NotImplementedError


class WallClockDeadline(Deadline):
    """Expires ``budget_s`` seconds after construction."""

    def __init__(self, budget_s: float) -> None:
        if budget_s < 0:
            raise ValueError("deadline budget must be non-negative")
        self.budget_s = float(budget_s)
        self._expires_at = time.perf_counter() + self.budget_s

    def expired(self) -> bool:
        return time.perf_counter() >= self._expires_at

    def remaining(self) -> float:
        return max(0.0, self._expires_at - time.perf_counter())

    def __repr__(self) -> str:
        return f"WallClockDeadline(budget_s={self.budget_s})"


class StepDeadline(Deadline):
    """Expires on the ``steps``-th expiry check (0 allows no iteration).

    The deterministic stand-in for tests: a query under
    ``StepDeadline(k)`` completes exactly ``min(k, full_window)``
    forward iterations, every time.
    """

    def __init__(self, steps: int) -> None:
        if steps < 0:
            raise ValueError("step budget must be non-negative")
        self.steps = int(steps)
        self.checks = 0

    def expired(self) -> bool:
        self.checks += 1
        return self.checks > self.steps

    def __repr__(self) -> str:
        return f"StepDeadline(steps={self.steps}, checks={self.checks})"
