"""Execution metrics.

The paper reports three machine-facing measurements alongside wall-clock:

- **edge computations** -- how many edges each engine actually processed
  (Figure 6, Table 7).  This is the machine-independent signal that
  dependency-driven refinement eliminates redundant work, and it is the
  primary quantity our counters track.
- **vertex computations** -- vertex_map/apply invocations.
- **tracked memory** -- bytes of dependency information GraphBolt keeps
  beyond what GB-Reset keeps (Table 9).

Every engine in this repository threads an :class:`EngineMetrics` through
its kernels; counting happens at the vectorised gather sites so it adds
one integer addition per kernel call, not per edge.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields
from typing import Dict, Optional

__all__ = ["EngineMetrics", "MemoryReport", "Timer"]


@dataclass
class EngineMetrics:
    """Work counters for one engine run or one mutation batch."""

    edge_computations: int = 0
    vertex_computations: int = 0
    iterations: int = 0
    refinement_iterations: int = 0
    hybrid_iterations: int = 0
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Measured work per execution shard (keyed by shard index as a
    #: string), recorded by the backends of :mod:`repro.runtime.exec`;
    #: the makespan scaling model consumes this vector directly.
    shard_loads: Dict[str, float] = field(default_factory=dict)

    def count_edges(self, n: int) -> None:
        self.edge_computations += int(n)

    def count_vertices(self, n: int) -> None:
        self.vertex_computations += int(n)

    def count_shard_load(self, shard: str, n: float) -> None:
        self.shard_loads[shard] = self.shard_loads.get(shard, 0.0) + n

    def add_phase_time(self, phase: str, seconds: float) -> None:
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    # Every method below iterates ``dataclasses.fields`` instead of
    # naming fields, so adding a counter (here or in a subclass) can
    # never silently drop it from snapshots, deltas, or merges.
    # Numeric fields add/subtract; dict fields (phase_seconds, or any
    # future str->number map) combine per key.
    def merge(self, other: "EngineMetrics") -> None:
        for spec in fields(self):
            value = getattr(other, spec.name)
            if isinstance(value, dict):
                mine = getattr(self, spec.name)
                for key, amount in value.items():
                    mine[key] = mine.get(key, 0.0) + amount
            else:
                setattr(self, spec.name, getattr(self, spec.name) + value)

    def snapshot(self) -> "EngineMetrics":
        copy = type(self)()
        for spec in fields(self):
            value = getattr(self, spec.name)
            setattr(copy, spec.name,
                    dict(value) if isinstance(value, dict) else value)
        return copy

    def delta_since(self, earlier: "EngineMetrics") -> "EngineMetrics":
        """Metrics accumulated since an earlier :meth:`snapshot`."""
        delta = type(self)()
        for spec in fields(self):
            value = getattr(self, spec.name)
            before = getattr(earlier, spec.name)
            if isinstance(value, dict):
                setattr(delta, spec.name, {
                    key: amount - before.get(key, 0.0)
                    for key, amount in value.items()
                })
            else:
                setattr(delta, spec.name, value - before)
        return delta

    def reset(self) -> None:
        blank = type(self)()
        for spec in fields(self):
            current = getattr(self, spec.name)
            if isinstance(current, dict):
                current.clear()
            else:
                setattr(self, spec.name, getattr(blank, spec.name))


@dataclass
class MemoryReport:
    """Byte accounting of engine state (paper Table 9)."""

    baseline_bytes: int
    dependency_bytes: int

    @property
    def overhead_fraction(self) -> float:
        """Extra memory as a fraction of the baseline (0.13 == +13%)."""
        if self.baseline_bytes == 0:
            return 0.0 if self.dependency_bytes == 0 else float("inf")
        return self.dependency_bytes / self.baseline_bytes

    @property
    def overhead_percent(self) -> float:
        return 100.0 * self.overhead_fraction


class Timer:
    """Context-manager stopwatch feeding :class:`EngineMetrics` phases.

    >>> metrics = EngineMetrics()
    >>> with Timer(metrics, "refine"):
    ...     pass
    >>> "refine" in metrics.phase_seconds
    True
    """

    def __init__(self, metrics: Optional[EngineMetrics], phase: str) -> None:
        self._metrics = metrics
        self._phase = phase
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start
        if self._metrics is not None:
            self._metrics.add_phase_time(self._phase, self.elapsed)
