"""Execution metrics.

The paper reports three machine-facing measurements alongside wall-clock:

- **edge computations** -- how many edges each engine actually processed
  (Figure 6, Table 7).  This is the machine-independent signal that
  dependency-driven refinement eliminates redundant work, and it is the
  primary quantity our counters track.
- **vertex computations** -- vertex_map/apply invocations.
- **tracked memory** -- bytes of dependency information GraphBolt keeps
  beyond what GB-Reset keeps (Table 9).

Every engine in this repository threads an :class:`EngineMetrics` through
its kernels; counting happens at the vectorised gather sites so it adds
one integer addition per kernel call, not per edge.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["EngineMetrics", "MemoryReport", "Timer"]


@dataclass
class EngineMetrics:
    """Work counters for one engine run or one mutation batch."""

    edge_computations: int = 0
    vertex_computations: int = 0
    iterations: int = 0
    refinement_iterations: int = 0
    hybrid_iterations: int = 0
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    def count_edges(self, n: int) -> None:
        self.edge_computations += int(n)

    def count_vertices(self, n: int) -> None:
        self.vertex_computations += int(n)

    def add_phase_time(self, phase: str, seconds: float) -> None:
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    def merge(self, other: "EngineMetrics") -> None:
        self.edge_computations += other.edge_computations
        self.vertex_computations += other.vertex_computations
        self.iterations += other.iterations
        self.refinement_iterations += other.refinement_iterations
        self.hybrid_iterations += other.hybrid_iterations
        for phase, seconds in other.phase_seconds.items():
            self.add_phase_time(phase, seconds)

    def snapshot(self) -> "EngineMetrics":
        copy = EngineMetrics(
            edge_computations=self.edge_computations,
            vertex_computations=self.vertex_computations,
            iterations=self.iterations,
            refinement_iterations=self.refinement_iterations,
            hybrid_iterations=self.hybrid_iterations,
        )
        copy.phase_seconds = dict(self.phase_seconds)
        return copy

    def delta_since(self, earlier: "EngineMetrics") -> "EngineMetrics":
        """Metrics accumulated since an earlier :meth:`snapshot`."""
        delta = EngineMetrics(
            edge_computations=self.edge_computations - earlier.edge_computations,
            vertex_computations=(
                self.vertex_computations - earlier.vertex_computations
            ),
            iterations=self.iterations - earlier.iterations,
            refinement_iterations=(
                self.refinement_iterations - earlier.refinement_iterations
            ),
            hybrid_iterations=self.hybrid_iterations - earlier.hybrid_iterations,
        )
        for phase, seconds in self.phase_seconds.items():
            delta.phase_seconds[phase] = seconds - earlier.phase_seconds.get(
                phase, 0.0
            )
        return delta

    def reset(self) -> None:
        self.edge_computations = 0
        self.vertex_computations = 0
        self.iterations = 0
        self.refinement_iterations = 0
        self.hybrid_iterations = 0
        self.phase_seconds.clear()


@dataclass
class MemoryReport:
    """Byte accounting of engine state (paper Table 9)."""

    baseline_bytes: int
    dependency_bytes: int

    @property
    def overhead_fraction(self) -> float:
        """Extra memory as a fraction of the baseline (0.13 == +13%)."""
        if self.baseline_bytes == 0:
            return 0.0 if self.dependency_bytes == 0 else float("inf")
        return self.dependency_bytes / self.baseline_bytes

    @property
    def overhead_percent(self) -> float:
        return 100.0 * self.overhead_fraction


class Timer:
    """Context-manager stopwatch feeding :class:`EngineMetrics` phases.

    >>> metrics = EngineMetrics()
    >>> with Timer(metrics, "refine"):
    ...     pass
    >>> "refine" in metrics.phase_seconds
    True
    """

    def __init__(self, metrics: Optional[EngineMetrics], phase: str) -> None:
        self._metrics = metrics
        self._phase = phase
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start
        if self._metrics is not None:
            self._metrics.add_phase_time(self._phase, self.elapsed)
