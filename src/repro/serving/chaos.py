"""A hostile network for replication: seeded, deterministic chaos.

:class:`ChaosTransport` wraps any
:class:`~repro.serving.replication.ReplicationTransport` and applies a
seed-scheduled fault plan to every shipment that passes through it:

- **drop** -- the shipment is swallowed at send time (the writer
  believes it sent);
- **duplicate** -- the shipment is enqueued twice (the replica's
  sequence deduplication and idempotent store-segment copies must make
  the second delivery a no-op);
- **corrupt** -- one payload byte is flipped in transit
  (:func:`~repro.serving.replication.corrupt_shipment`), which the
  replica's end-to-end CRC re-verification must reject with a NACK;
- **reorder** -- the shipment is held back so the next one is
  delivered first (surfacing as a gap the cluster heals by resync);
- **delay** -- the shipment delivers only after ``delay_polls``
  consecutive ``peek`` calls see it (planted lag the retry loop must
  outwait).

Every decision comes from a :class:`numpy.random.Generator` seeded with
``(config.seed, crc32(link_name))``: the same seed replays the same
fault schedule bit-for-bit, which is what lets the chaos fuzzer
(``repro fuzz --crash --chaos``) assert oracle-exact convergence run
after run.  The applied schedule is recorded on
:attr:`ChaosTransport.schedule` so CI can upload it as an artifact.

None of these faults require new recovery machinery -- they exercise
the paths the replication layer already guarantees: at-least-once
delivery with exactly-once effects, gap detection + resync, CRC NACK +
re-ship, and the bounded :class:`~repro.serving.replication.RetryPolicy`
with its dead-letter ledger.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs.registry import get_registry
from repro.serving.replication import (
    ReplicationCluster,
    ReplicationTransport,
    Shipment,
    corrupt_shipment,
)

__all__ = [
    "ChaosConfig",
    "ChaosTransport",
    "wrap_cluster",
]


@dataclass(frozen=True)
class ChaosConfig:
    """Per-fault-kind probabilities (independent draws, fixed order).

    Rates are probabilities in ``[0, 1]`` evaluated per send (drop,
    duplicate, corrupt, reorder) or per shipment (delay, decided at
    send, enforced at peek).  ``delay_polls`` is how many ``peek``
    calls a delayed shipment stays invisible for.
    """

    seed: int = 0
    drop: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    reorder: float = 0.0
    delay: float = 0.0
    delay_polls: int = 2

    @classmethod
    def all_faults(cls, seed: int = 0, rate: float = 0.1,
                   delay_polls: int = 2) -> "ChaosConfig":
        """All five fault kinds enabled at the same rate -- the
        acceptance configuration of the chaos fuzzer."""
        return cls(seed=seed, drop=rate, duplicate=rate, corrupt=rate,
                   reorder=rate, delay=rate, delay_polls=delay_polls)

    def any_enabled(self) -> bool:
        return any(rate > 0 for rate in (
            self.drop, self.duplicate, self.corrupt, self.reorder,
            self.delay,
        ))


class ChaosTransport(ReplicationTransport):
    """Wraps ``inner`` with a deterministic lossy-network fault plan.

    The wrapper is transparent to both endpoints: the writer keeps
    calling ``send`` and the replica keeps ``peek``/``ack``-ing; only
    the weather between them changes.
    """

    def __init__(self, inner: ReplicationTransport, config: ChaosConfig,
                 name: str = "") -> None:
        self.inner = inner
        self.config = config
        self.name = name
        self._rng = np.random.default_rng(
            (config.seed, zlib.crc32(name.encode("utf-8")))
        )
        #: Shipment held back by a pending reorder decision.
        self._reordered: Optional[Shipment] = None
        #: ``(epoch, index) -> remaining peeks`` for delayed shipments.
        self._delay_plan: Dict[Tuple[int, int], int] = {}
        #: Applied-fault log (uploaded as a CI artifact).
        self.schedule: List[Dict] = []
        self.counts: Dict[str, int] = {
            "drop": 0, "duplicate": 0, "corrupt": 0, "reorder": 0,
            "delay": 0, "sent": 0,
        }

    # ------------------------------------------------------------------
    def _record(self, fault: str, shipment: Shipment) -> None:
        self.counts[fault] += 1
        self.schedule.append({
            "link": self.name,
            "fault": fault,
            "kind": shipment.kind,
            "epoch": shipment.epoch,
            "index": shipment.index,
            "first_seq": shipment.first_seq,
            "end_seq": shipment.end_seq,
        })
        get_registry().counter(f"chaos.{fault}").inc()

    def send(self, shipment: Shipment) -> None:
        # Fixed draw order keeps the schedule a pure function of the
        # seed and the send sequence, independent of which faults are
        # enabled downstream of each other.
        draws = self._rng.random(5)
        config = self.config
        self.counts["sent"] += 1
        if draws[0] < config.drop:
            self._record("drop", shipment)
            return
        if draws[2] < config.corrupt:
            shipment = corrupt_shipment(shipment)
            self._record("corrupt", shipment)
        if draws[4] < config.delay:
            self._delay_plan[(shipment.epoch, shipment.index)] = (
                config.delay_polls
            )
            self._record("delay", shipment)
        if draws[3] < config.reorder and self._reordered is None:
            # Hold this one back; it follows the next send (a held
            # shipment is flushed below, so at most one is in limbo).
            self._reordered = shipment
            self._record("reorder", shipment)
            return
        self.inner.send(shipment)
        if draws[1] < config.duplicate:
            self._record("duplicate", shipment)
            self.inner.send(shipment)
        held, self._reordered = self._reordered, None
        if held is not None:
            self.inner.send(held)

    def peek(self) -> Optional[Shipment]:
        shipment = self.inner.peek()
        if shipment is None:
            return None
        key = (shipment.epoch, shipment.index)
        remaining = self._delay_plan.get(key)
        if remaining:
            self._delay_plan[key] = remaining - 1
            return None  # still "in flight": planted lag
        self._delay_plan.pop(key, None)
        return shipment

    def ack(self) -> None:
        self.inner.ack()

    def pending(self) -> int:
        return self.inner.pending() + (1 if self._reordered else 0)

    def flush(self) -> None:
        """Deliver any shipment still held by a reorder decision.

        The reorder fault holds a shipment until the *next* send; on a
        quiescing link there may be no next send, so final syncs flush
        explicitly -- a real network eventually delivers or a retry
        re-sends; limbo forever is not one of the modelled faults.
        """
        held, self._reordered = self._reordered, None
        if held is not None:
            self.inner.send(held)


def wrap_cluster(cluster: ReplicationCluster,
                 config: ChaosConfig) -> List[ChaosTransport]:
    """Put a :class:`ChaosTransport` on every replica link of a live
    cluster (writer side and replica side see the same wrapper).

    Returns the wrappers so tests can inspect schedules and counts.
    """
    wrappers = []
    for name in sorted(cluster.replicas):
        replica = cluster.replicas[name]
        wrapper = ChaosTransport(replica.inbox, config, name=name)
        replica.inbox = wrapper
        link = cluster.writer_node._links[name]
        link.transport = wrapper
        wrappers.append(wrapper)
    return wrappers
