"""WAL-shipped read replicas with epoch fencing.

One **writer** owns ingestion: it applies batches durably through the
PR-3 recovery stack (segmented WAL + atomic checkpoints) and ships two
kinds of immutable artifacts to N **read replicas** over a transport
abstraction:

- **sealed WAL segments** -- once a segment is full (or force-sealed
  for a final sync) it never gains records, so a segment is shipped as
  its raw CRC-guarded lines and the replica re-verifies every record
  end-to-end with the WAL's own decoder;
- **checkpoints** -- the writer's atomic ``ckpt-<seq>.npz`` archives,
  adopted byte-for-byte, which is both how a fresh replica bootstraps
  and how a lagging replica heals past garbage-collected history;
- **store segments** -- when the writer's graph lives in an mmap
  :class:`~repro.graph.storage.MmapStore`, its checkpoints record a
  *manifest reference* instead of inlining the edge arrays, so before
  such a checkpoint ships, the CRC-guarded segment files it references
  are shipped through the same transport and copied into the replica's
  own store spool.  Replica bootstrap is then a file copy plus a WAL
  *tail* replay -- never a replay of the full history.

Each replica replays into its own state directory (a WAL *mirror* plus
adopted checkpoints) that is structurally identical to a writer's --
which is exactly what makes promotion possible: failover recovers a new
writer from a replica directory with the ordinary
:meth:`~repro.recovery.manager.RecoveryManager.recover` path.

Replica replay is sequence-driven and idempotent: records below the
replica's position are deduplicated, a record *above* it raises
:class:`ReplicationGapError` (never silently skipped -- see
:meth:`~repro.recovery.manager.RecoveryManager.sealed_segments`), and
the cluster heals a gap by asking the writer to **resync** from the
replica's position (re-shipping segments, or the newest checkpoint when
the history was GC'd).

**Fencing**: every shipment carries the writer's *epoch*.  Promotion
advances the cluster epoch (:class:`EpochAuthority`) and fences every
surviving replica; a deposed writer's late shipments arrive with a
stale epoch and are rejected into a durable ``fence_ledger.jsonl`` --
the ledger the replicated crash fuzzer checks to prove a fenced
writer's segments were provably rejected, not silently dropped.

The writer's durable skip-marks (poison quarantine, admission sheds,
coalesce supersedes) ship alongside segments, so replica replay skips
exactly the records the writer skipped and converges bit-for-bit --
``json`` round-trips IEEE-754 doubles exactly, so shipped records
reconstruct the writer's batches to the bit.

Failpoints (:mod:`repro.testing.faults`): ``replication.ship`` (crash =
writer dies mid-ship; fault = shipment lost in transit; corrupt = one
payload byte flipped in transit), ``replication.reorder`` (fault =
delivery order swapped), ``replication.receive`` (crash = replica dies
mid-apply; fault = delivery deferred one round -- planted lag),
``replica.query`` (fault = replica fails mid-query, driving router
failover).

**Hostile transports**: every shipment's payload is CRC-guarded end to
end (WAL record CRCs, store-segment headers), so a replica detects a
corrupt delivery at apply time and raises
:class:`ShipmentIntegrityError` -- a NACK.  The cluster answers a NACK
the same way it answers a gap: discard the bad shipment, rewind the
link, re-ship.  Retries are bounded by a :class:`RetryPolicy`
(deterministic-jitter exponential backoff, per-link attempt budget);
a link that exhausts its budget has its undelivered range recorded on
the durable :class:`DeadLetterLedger` instead of hanging the writer.
:class:`~repro.serving.chaos.ChaosTransport` wraps any transport with
a seeded drop/duplicate/reorder/delay/corrupt schedule to prove all of
this converges.
"""

from __future__ import annotations

import base64
import json
import os
import shutil
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field, replace as dc_replace
from typing import Callable, Deque, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.graph.mutation import MutationBatch
from repro.graph.storage import StoreError, verify_segment_blob
from repro.obs import trace
from repro.obs.registry import get_registry
from repro.recovery.manager import (
    RecoveryError,
    RecoveryManager,
    SegmentGapError,
)
from repro.recovery.wal import SealedSegment, payload_to_batch
from repro.recovery.wal import _decode_record  # CRC-checked end-to-end
from repro.runtime.checkpoint import (
    read_store_manifest,
    verify_checkpoint_blob,
)
from repro.runtime.deadline import Deadline
from repro.serving.resilience import ResilientAnalyticsServer
from repro.serving.server import QueryResult, StreamingAnalyticsServer
from repro.testing import faults
from repro.testing.faults import InjectedFault

__all__ = [
    "DeadLetterLedger",
    "DirectoryTransport",
    "EpochAuthority",
    "InProcessTransport",
    "ReadReplica",
    "ReplicaUnavailableError",
    "ReplicationCluster",
    "ReplicationError",
    "ReplicationGapError",
    "ReplicationWriter",
    "RetryPolicy",
    "Shipment",
    "ShipmentIntegrityError",
    "corrupt_shipment",
    "replication_status",
]

#: Replicas never self-checkpoint -- they adopt the writer's -- so
#: their manager cadence is effectively "never".
_REPLICA_CHECKPOINT_EVERY = 10 ** 9


class ReplicationError(RuntimeError):
    """A replication-protocol violation (not a transport fault)."""


class ReplicationGapError(ReplicationError):
    """A delivered shipment starts past the replica's position."""


class ShipmentIntegrityError(ReplicationError):
    """A delivered shipment failed CRC re-verification (bit-rot in
    transit).  The cluster treats it as a NACK: discard, rewind the
    link, re-ship under the retry policy."""


class ReplicaUnavailableError(ConnectionError):
    """The addressed replica is dead or not yet bootstrapped.

    Derives from ``ConnectionError`` (an ``OSError``) so callers that
    absorb transport-ish failures -- the query router's failover path
    above all -- treat a dead replica like any other connection error.
    """


# ----------------------------------------------------------------------
# The wire format
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Shipment:
    """One immutable unit shipped writer -> replica.

    ``kind`` is ``"segment"`` (raw encoded WAL lines for records
    ``[first_seq, end_seq)`` plus the writer's skip-mark ledger),
    ``"checkpoint"`` (the atomic archive covering ``[0, first_seq)``,
    byte-for-byte in ``blob``), or ``"store"`` (one snapshot-store
    segment file a manifest-mode checkpoint references, byte-for-byte
    in ``blob``, with its snapshot id and file name in ``meta``).
    ``epoch`` fences deposed writers; ``index`` is the per-link send
    counter, which makes ``(epoch, index)`` a unique delivery id
    replicas use to deduplicate ledger entries on redelivery.
    """

    kind: str
    epoch: int
    index: int
    first_seq: int
    end_seq: int
    lines: Tuple[str, ...] = ()
    blob: bytes = b""
    skip: Mapping[int, str] = field(default_factory=dict)
    meta: Mapping[str, str] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps({
            "kind": self.kind,
            "epoch": self.epoch,
            "index": self.index,
            "first_seq": self.first_seq,
            "end_seq": self.end_seq,
            "lines": list(self.lines),
            "blob_b64": base64.b64encode(self.blob).decode("ascii"),
            "skip": {str(seq): reason
                     for seq, reason in self.skip.items()},
            "meta": dict(self.meta),
        }, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Shipment":
        payload = json.loads(text)
        return cls(
            kind=payload["kind"],
            epoch=payload["epoch"],
            index=payload["index"],
            first_seq=payload["first_seq"],
            end_seq=payload["end_seq"],
            lines=tuple(payload["lines"]),
            blob=base64.b64decode(payload["blob_b64"]),
            skip={int(seq): reason
                  for seq, reason in payload["skip"].items()},
            meta=dict(payload.get("meta", {})),
        )


def corrupt_shipment(shipment: Shipment) -> Shipment:
    """``shipment`` with one payload byte flipped -- transit bit-rot.

    The flip lands *inside* the CRC-guarded payload (the middle WAL
    line, or the blob), never in the JSON envelope: a corrupt shipment
    still parses and routes, and only the replica's end-to-end CRC
    re-verification can catch it.  WAL lines are ASCII, and XOR 0x01
    keeps ASCII ASCII, so the flipped line survives JSON transport
    intact.  A shipment with no payload is returned unchanged.
    """
    if shipment.lines:
        lines = list(shipment.lines)
        middle = len(lines) // 2
        raw = lines[middle].encode("utf-8")
        lines[middle] = faults.flip_byte(raw).decode(
            "utf-8", errors="surrogateescape"
        )
        return dc_replace(shipment, lines=tuple(lines))
    if shipment.blob:
        return dc_replace(shipment, blob=faults.flip_byte(shipment.blob))
    return shipment


# ----------------------------------------------------------------------
# Transports (one point-to-point link per replica)
# ----------------------------------------------------------------------
class ReplicationTransport:
    """A single-consumer, in-order shipment channel.

    Consumption is two-phase (``peek`` then ``ack``) so a replica that
    dies mid-apply leaves the in-flight shipment queued: redelivery
    plus sequence-deduplication gives at-least-once semantics with
    exactly-once effects.
    """

    def send(self, shipment: Shipment) -> None:
        raise NotImplementedError

    def peek(self) -> Optional[Shipment]:
        raise NotImplementedError

    def ack(self) -> None:
        raise NotImplementedError

    def pending(self) -> int:
        raise NotImplementedError

    def _reorder_gate(self, shipment: Shipment,
                      enqueue: Callable[[Shipment], None]) -> None:
        """Shared send path: the ``replication.reorder`` fault holds a
        shipment back so the next one is delivered first."""
        try:
            faults.hit("replication.reorder")
        except InjectedFault:
            self._held = shipment
            get_registry().counter("replication.reorders_planted").inc()
            return
        enqueue(shipment)
        held = getattr(self, "_held", None)
        if held is not None:
            self._held = None
            enqueue(held)


class InProcessTransport(ReplicationTransport):
    """A deque link for single-process clusters and tests.

    The queue belongs to the *link*, not the replica object, so killed
    replicas can be restarted against the same inbox with unacked
    shipments intact -- exactly like a mailbox on a surviving broker.
    """

    def __init__(self) -> None:
        self._queue: Deque[Shipment] = deque()
        self._held: Optional[Shipment] = None

    def send(self, shipment: Shipment) -> None:
        self._reorder_gate(shipment, self._queue.append)

    def peek(self) -> Optional[Shipment]:
        return self._queue[0] if self._queue else None

    def ack(self) -> None:
        self._queue.popleft()

    def pending(self) -> int:
        return len(self._queue)


class DirectoryTransport(ReplicationTransport):
    """A spool-directory link (``ship-<n>.json``) for cross-process use.

    Files are written atomically (temp + ``os.replace``); the consumer
    cursor is persisted (``cursor.json``) so a restarted replica resumes
    at its first unacked shipment.
    """

    #: Consecutive failed decodes of the same spool file before it is
    #: sidelined (renamed to ``*.torn``) instead of retried forever.
    TORN_RETRIES = 3

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._held: Optional[Shipment] = None
        self._cursor_path = os.path.join(directory, "cursor.json")
        self._cursor = self._load_cursor()
        self._send_count = len(self._spool())
        self._torn_name: Optional[str] = None
        self._torn_streak = 0

    def _load_cursor(self) -> int:
        if not os.path.exists(self._cursor_path):
            return 0
        with open(self._cursor_path, encoding="utf-8") as stream:
            return int(json.load(stream)["acked"])

    def _spool(self) -> List[str]:
        names = [name for name in os.listdir(self.directory)
                 if name.startswith("ship-") and name.endswith(".json")]
        names.sort(key=lambda name: int(name[5:-5]))
        return names

    def send(self, shipment: Shipment) -> None:
        self._reorder_gate(shipment, self._write)

    def _write(self, shipment: Shipment) -> None:
        name = f"ship-{self._send_count:012d}.json"
        self._send_count += 1
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as stream:
                stream.write(shipment.to_json())
            os.replace(tmp, os.path.join(self.directory, name))
        except BaseException:
            if os.path.exists(tmp):
                os.remove(tmp)
            raise

    def peek(self) -> Optional[Shipment]:
        for name in self._spool():
            if int(name[5:-5]) < self._cursor:
                continue
            path = os.path.join(self.directory, name)
            try:
                with open(path, encoding="utf-8") as stream:
                    shipment = Shipment.from_json(stream.read())
            except (OSError, ValueError, KeyError, TypeError):
                # A torn or partially-written spool file (a producer
                # without our atomic temp+replace discipline, or a
                # filesystem that tore the write).  Skip-and-retry: the
                # poll loop sees an empty inbox this round and comes
                # back; after TORN_RETRIES consecutive failures the
                # file is sidelined as ``*.torn`` so later shipments
                # can flow (the resulting gap heals via resync).
                if name == self._torn_name:
                    self._torn_streak += 1
                else:
                    self._torn_name, self._torn_streak = name, 1
                get_registry().counter(
                    "replication.torn_spool_skips").inc()
                if self._torn_streak >= self.TORN_RETRIES:
                    os.replace(path, path + ".torn")
                    self._torn_name, self._torn_streak = None, 0
                    get_registry().counter(
                        "replication.torn_spool_dropped").inc()
                    continue
                return None
            self._torn_name, self._torn_streak = None, 0
            return shipment
        return None

    def ack(self) -> None:
        spool = [name for name in self._spool()
                 if int(name[5:-5]) >= self._cursor]
        if not spool:
            raise ReplicationError("ack with no pending shipment")
        acked = os.path.join(self.directory, spool[0])
        self._cursor = int(spool[0][5:-5]) + 1
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as stream:
                json.dump({"acked": self._cursor}, stream)
            os.replace(tmp, self._cursor_path)
        except BaseException:
            if os.path.exists(tmp):
                os.remove(tmp)
            raise
        os.remove(acked)

    def pending(self) -> int:
        return len([name for name in self._spool()
                    if int(name[5:-5]) >= self._cursor])


# ----------------------------------------------------------------------
# Epochs
# ----------------------------------------------------------------------
class EpochAuthority:
    """The cluster's monotonic epoch counter (the fencing token source).

    With a ``path`` the epoch survives process restarts
    (``epoch.json``); without one it is in-memory, which is what the
    single-process fuzzer scenarios use.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self._path = path
        self._epoch = 1
        if path is not None and os.path.exists(path):
            with open(path, encoding="utf-8") as stream:
                self._epoch = int(json.load(stream)["epoch"])
        elif path is not None:
            self._persist()

    @property
    def epoch(self) -> int:
        return self._epoch

    def advance(self) -> int:
        self._epoch += 1
        self._persist()
        get_registry().gauge("replication.epoch").set(self._epoch)
        return self._epoch

    def _persist(self) -> None:
        if self._path is None:
            return
        directory = os.path.dirname(os.path.abspath(self._path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as stream:
                json.dump({"epoch": self._epoch}, stream)
            os.replace(tmp, self._path)
        except BaseException:
            if os.path.exists(tmp):
                os.remove(tmp)
            raise


# ----------------------------------------------------------------------
# Retry budget + dead letters
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retransmission budget for one replica link.

    The cluster's :meth:`ReplicationCluster.sync` treats a delivery
    round in which a lagging link made no progress as one consumed
    attempt -- the deterministic stand-in for an ack timeout (real time
    never enters the decision, so fuzz runs replay bit-for-bit).  The
    backoff between attempts is real wall-clock sleep, exponential with
    deterministic jitter: ``jitter_seed`` fully determines the
    schedule, so two runs of the same seed back off identically.
    """

    max_attempts: int = 8
    backoff_base: float = 0.001
    backoff_factor: float = 2.0
    backoff_cap: float = 0.05
    jitter_seed: int = 0

    def backoff(self, attempt: int) -> float:
        """Sleep budget (seconds) before retry ``attempt`` (1-based)."""
        if attempt <= 1:
            return 0.0
        raw = self.backoff_base * self.backoff_factor ** (attempt - 2)
        rng = np.random.default_rng((self.jitter_seed, attempt))
        return min(raw, self.backoff_cap) * (0.5 + 0.5 * rng.random())


class DeadLetterLedger:
    """Durable JSONL record of deliveries that exhausted their budget.

    One entry per abandoned range: the link name, the undelivered
    ``[first_seq, end_seq)`` span, why it was given up on, and how many
    attempts were burned.  The ledger is append-only and survives
    restarts -- ``repro replication-status`` surfaces its size so an
    operator can triage (see docs/operations.md, "Chaos, retry, and
    repair").
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._count = len(self.entries())

    def record(self, link: str, first_seq: int, end_seq: int,
               reason: str, attempts: int) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as stream:
            stream.write(json.dumps({
                "link": link,
                "first_seq": first_seq,
                "end_seq": end_seq,
                "reason": reason,
                "attempts": attempts,
            }, sort_keys=True) + "\n")
            stream.flush()
            os.fsync(stream.fileno())
        self._count += 1
        get_registry().counter("replication.dead_letters").inc()

    def entries(self) -> List[Dict]:
        if not os.path.exists(self.path):
            return []
        with open(self.path, encoding="utf-8") as stream:
            return [json.loads(line) for line in stream if line.strip()]

    def __len__(self) -> int:
        return self._count


# ----------------------------------------------------------------------
# The writer role
# ----------------------------------------------------------------------
@dataclass
class _Link:
    name: str
    transport: ReplicationTransport
    next_to_ship: int = 0
    checkpoint_shipped: int = -1
    sent: int = 0
    lost: int = 0
    #: Snapshot ids whose store segment files were already shipped on
    #: this link (manifest-mode checkpoints only).
    store_shipped: set = field(default_factory=set)


class ReplicationWriter:
    """Ships a durable writer's sealed segments + checkpoints to links.

    Wraps a :class:`ResilientAnalyticsServer` whose server holds a
    :class:`RecoveryManager` -- the writer role *is* the PR-5 resilient
    ingest path; this class adds only the shipping side.
    """

    def __init__(self, resilient: ResilientAnalyticsServer,
                 epoch: int = 1) -> None:
        if resilient.server.recovery is None:
            raise ReplicationError(
                "a replication writer must be durable (recovery manager "
                "attached): replicas replay its WAL"
            )
        self.resilient = resilient
        self.epoch = epoch
        self._links: Dict[str, _Link] = {}
        self.resyncs = 0

    @property
    def manager(self) -> RecoveryManager:
        return self.resilient.server.recovery

    @property
    def next_seq(self) -> int:
        return self.manager.wal.next_seq

    def links(self) -> List[str]:
        return sorted(self._links)

    def attach(self, name: str, transport: ReplicationTransport,
               start_seq: int = 0) -> None:
        """Register one replica link, shipping from ``start_seq``."""
        if name in self._links:
            raise ReplicationError(f"link {name!r} already attached")
        self._links[name] = _Link(name=name, transport=transport,
                                  next_to_ship=start_seq)

    def seal_tail(self) -> bool:
        """Force-seal the open WAL segment so the tail ships too."""
        return self.manager.seal_active_segment()

    def shipped_through(self, name: str) -> int:
        """The seq this link's replica has been shipped up to."""
        link = self._links.get(name)
        return link.next_to_ship if link is not None else 0

    def ship(self) -> int:
        """Ship everything new to every link; returns shipments sent."""
        sent = 0
        for name in sorted(self._links):
            sent += self._ship_link(self._links[name])
        return sent

    def resync(self, name: str, from_seq: int) -> int:
        """Heal one link after the replica reported a gap.

        Rewinds the link to the replica's position and re-offers the
        newest checkpoint (in case the missing range was GC'd from the
        WAL); sequence-deduplication on the replica makes any overlap
        harmless.
        """
        link = self._links[name]
        link.next_to_ship = min(link.next_to_ship, from_seq)
        link.checkpoint_shipped = -1
        # A gap may mean store segments were lost in transit too;
        # re-offer them with the checkpoint (the replica's file writes
        # are idempotent, so redelivered segments are harmless).
        link.store_shipped.clear()
        self.resyncs += 1
        get_registry().counter("replication.resyncs").inc()
        return self._ship_link(link)

    # ------------------------------------------------------------------
    def _ship_link(self, link: _Link) -> int:
        manager = self.manager
        sealed = manager.sealed_segments()  # gap-checked
        generations = manager.checkpoints()
        newest = generations[-1] if generations else None
        # Records at/above the stable boundary are still queued on the
        # writer (breaker open, burst): shed-oldest could yet skip
        # them, so they must not reach a replica until resolved.
        stable = self.resilient.stable_seq()
        sent = 0
        if newest is not None and link.checkpoint_shipped < 0:
            # A link that has never seen a checkpoint (fresh replica,
            # or post-gap resync) bootstraps from one first: segments
            # hold mutations, not the initial graph.  Prefer the
            # newest checkpoint at-or-below the link position; fall
            # back to the newest overall when that history was GC'd.
            behind = [generation for generation in generations
                      if generation[0] <= link.next_to_ship]
            base = behind[-1] if behind else newest
            sent += self._ship_checkpoint(link, base[0], base[1])
            link.next_to_ship = max(link.next_to_ship, base[0])
        earliest = (sealed[0].first_seq if sealed
                    else (newest[0] if newest else 0))
        if (newest is not None and earliest > link.next_to_ship
                and newest[0] > link.checkpoint_shipped):
            # The history below the earliest sealed segment was GC'd:
            # the replica can only heal by adopting a checkpoint.
            sent += self._ship_checkpoint(link, newest[0], newest[1])
            link.next_to_ship = max(link.next_to_ship, newest[0])
        for segment in sealed:
            if segment.end_seq <= link.next_to_ship:
                continue
            if segment.first_seq >= stable:
                break
            end = min(segment.end_seq, stable)
            sent += self._ship_segment(link, segment, end)
            link.next_to_ship = max(link.next_to_ship, end)
        if (newest is not None and newest[0] > link.checkpoint_shipped
                and newest[0] <= link.next_to_ship):
            # Periodic checkpoint the replica adopts in place, so its
            # own restart never replays the whole history.
            sent += self._ship_checkpoint(link, newest[0], newest[1])
        return sent

    def _ship_segment(self, link: _Link, segment: SealedSegment,
                      end_seq: int) -> int:
        lines = tuple(
            line for line in segment.lines()
            if json.loads(line)["seq"] < end_seq
        )
        shipment = Shipment(
            kind="segment", epoch=self.epoch, index=link.sent,
            first_seq=segment.first_seq, end_seq=end_seq,
            lines=lines,
            skip=self.manager.quarantine_reasons(),
        )
        return self._send(link, shipment, "replication.segments_shipped")

    def _ship_checkpoint(self, link: _Link, seq: int, path: str) -> int:
        sent = self._ship_store_segments(link, seq, path)
        with open(path, "rb") as stream:
            blob = stream.read()
        shipment = Shipment(
            kind="checkpoint", epoch=self.epoch, index=link.sent,
            first_seq=seq, end_seq=seq, blob=blob,
            skip=self.manager.quarantine_reasons(),
        )
        link.checkpoint_shipped = seq
        return sent + self._send(link, shipment,
                                 "replication.checkpoints_shipped")

    def _ship_store_segments(self, link: _Link, seq: int,
                             path: str) -> int:
        """Ship the snapshot-store files a manifest-mode checkpoint
        references, ahead of the checkpoint itself.

        The replica copies each file into its own store spool, so its
        bootstrap opens them as local memmaps instead of replaying the
        writer's whole WAL.  Files for an already-shipped snapshot id
        are not re-sent (structure adjustment mints a fresh id per
        batch, so ids never mutate in place).
        """
        try:
            reference = read_store_manifest(path)
        except ValueError:
            return 0  # a corrupt checkpoint is rejected on the replica
        if reference is None:  # inline payload: arrays travel inside
            return 0
        snapshot = reference["snapshot"]
        if snapshot in link.store_shipped:
            return 0
        sent = 0
        root = reference["root"]
        for name in sorted(reference["arrays"]):
            file_name = reference["arrays"][name]["file"]
            with open(os.path.join(root, file_name), "rb") as stream:
                blob = stream.read()
            shipment = Shipment(
                kind="store", epoch=self.epoch, index=link.sent,
                first_seq=seq, end_seq=seq, blob=blob,
                meta={"snapshot": snapshot, "file": file_name},
            )
            sent += self._send(link, shipment,
                               "replication.store_segments_shipped")
        link.store_shipped.add(snapshot)
        return sent

    def _send(self, link: _Link, shipment: Shipment,
              counter: str) -> int:
        link.sent += 1
        with trace.span("replication.ship", link=link.name,
                        kind=shipment.kind, first=shipment.first_seq,
                        end=shipment.end_seq):
            try:
                corrupted = faults.hit_corruptible("replication.ship")
            except InjectedFault:
                # Lost in transit: the writer believes it sent, the
                # replica never sees it -- the planted segment drop.
                link.lost += 1
                get_registry().counter(
                    "replication.shipments_lost").inc()
                return 0
            if corrupted:
                # Planted transit bit-rot: the payload CRC no longer
                # matches, so the replica must NACK at apply time.
                shipment = corrupt_shipment(shipment)
                get_registry().counter(
                    "replication.shipments_corrupted").inc()
            link.transport.send(shipment)
        get_registry().counter(counter).inc()
        return 1

    def __repr__(self) -> str:
        return (
            f"ReplicationWriter(epoch={self.epoch}, "
            f"links={self.links()}, next_seq={self.next_seq})"
        )


# ----------------------------------------------------------------------
# The replica role
# ----------------------------------------------------------------------
class ReadReplica:
    """One read replica: WAL mirror + adopted checkpoints + BSP state.

    Construction doubles as restart: if the directory already holds an
    adopted checkpoint the replica restores engine state from
    checkpoint + mirror tail (the ordinary recovery path) and resumes
    at its durable position; a fresh directory waits for the writer's
    first checkpoint shipment to bootstrap.
    """

    def __init__(
        self,
        name: str,
        directory: str,
        algorithm_factory: Callable,
        inbox: ReplicationTransport,
        *,
        exact_iterations: Optional[int] = None,
        until_convergence: bool = False,
        max_iterations: int = 1000,
        segment_records: int = 256,
    ) -> None:
        self.name = name
        self.directory = directory
        self.algorithm_factory = algorithm_factory
        self.inbox = inbox
        self.alive = True
        self._query_kwargs = dict(
            exact_iterations=exact_iterations,
            until_convergence=until_convergence,
            max_iterations=max_iterations,
        )
        self.manager = RecoveryManager(
            directory, checkpoint_every=_REPLICA_CHECKPOINT_EVERY,
            retain=2, segment_records=segment_records,
        )
        #: Where shipped snapshot-store segment files land; manifest-
        #: mode checkpoints are restored against this root, so the
        #: replica never touches the writer's store directory.
        self.store_root = os.path.join(directory, "store")
        self._fence_path = os.path.join(directory, "fence.json")
        self._ledger_path = os.path.join(directory, "fence_ledger.jsonl")
        self.fence_epoch = self._load_fence()
        self._ledger_seen = {
            (entry["epoch"], entry["index"])
            for entry in self.fence_ledger()
        }
        self.server: Optional[StreamingAnalyticsServer] = None
        if self.manager.checkpoints():
            self._load_from_disk()

    # ------------------------------------------------------------------
    # Positions
    # ------------------------------------------------------------------
    @property
    def next_seq(self) -> int:
        """The replica's durable position: the next record it needs."""
        generations = self.manager.checkpoints()
        base = generations[-1][0] if generations else 0
        return max(self.manager.wal.next_seq, base)

    def lag_behind(self, writer_next_seq: int) -> int:
        return max(0, writer_next_seq - self.next_seq)

    # ------------------------------------------------------------------
    # Fencing
    # ------------------------------------------------------------------
    def _load_fence(self) -> int:
        if not os.path.exists(self._fence_path):
            return 0
        with open(self._fence_path, encoding="utf-8") as stream:
            return int(json.load(stream)["epoch"])

    def fence(self, epoch: int) -> None:
        """Raise the fence: shipments below ``epoch`` are now rejected."""
        if epoch <= self.fence_epoch:
            return
        self.fence_epoch = epoch
        directory = os.path.dirname(os.path.abspath(self._fence_path))
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as stream:
                json.dump({"epoch": epoch}, stream)
            os.replace(tmp, self._fence_path)
        except BaseException:
            if os.path.exists(tmp):
                os.remove(tmp)
            raise

    def fence_ledger(self) -> List[Dict]:
        """Every durably rejected stale-epoch shipment."""
        if not os.path.exists(self._ledger_path):
            return []
        entries = []
        with open(self._ledger_path, encoding="utf-8") as stream:
            for line in stream:
                if line.strip():
                    entries.append(json.loads(line))
        return entries

    @property
    def fence_rejections(self) -> int:
        return len(self._ledger_seen)

    def _reject_fenced(self, shipment: Shipment) -> None:
        key = (shipment.epoch, shipment.index)
        if key in self._ledger_seen:
            return  # redelivered duplicate, already on the ledger
        self._ledger_seen.add(key)
        with open(self._ledger_path, "a", encoding="utf-8") as stream:
            stream.write(json.dumps({
                "epoch": shipment.epoch,
                "index": shipment.index,
                "kind": shipment.kind,
                "first_seq": shipment.first_seq,
                "end_seq": shipment.end_seq,
                "fence_epoch": self.fence_epoch,
            }, sort_keys=True) + "\n")
        get_registry().counter("replication.fence_rejections").inc()

    # ------------------------------------------------------------------
    # Applying shipments
    # ------------------------------------------------------------------
    def poll(self) -> int:
        """Drain the inbox; returns shipments consumed.

        Raises :class:`ReplicationGapError` when a shipment starts past
        this replica's position (the offending shipment stays peeked so
        the cluster can discard it and request a resync), and lets
        injected crashes/faults propagate -- the cluster layer decides
        whether that means a dead replica or a deferred delivery.
        """
        consumed = 0
        while True:
            shipment = self.inbox.peek()
            if shipment is None:
                return consumed
            self._apply_shipment(shipment)
            self.inbox.ack()
            consumed += 1

    def discard_pending(self) -> None:
        """Drop the unusable head shipment (out-of-order delivery)."""
        if self.inbox.peek() is not None:
            self.inbox.ack()

    def _require_alive(self) -> None:
        if not self.alive:
            raise ReplicaUnavailableError(
                f"replica {self.name!r} is down"
            )

    def _apply_shipment(self, shipment: Shipment) -> None:
        self._require_alive()
        faults.hit("replication.receive")
        if shipment.epoch < self.fence_epoch:
            self._reject_fenced(shipment)
            return
        if shipment.epoch > self.fence_epoch:
            self.fence(shipment.epoch)
        with trace.span("replication.apply", replica=self.name,
                        kind=shipment.kind, first=shipment.first_seq,
                        end=shipment.end_seq):
            if shipment.skip:
                self.manager.import_skip_marks(dict(shipment.skip))
            if shipment.kind == "store":
                self._receive_store_segment(shipment)
            elif shipment.kind == "checkpoint":
                self._adopt_checkpoint(shipment)
            else:
                self._apply_segment(shipment)

    def _receive_store_segment(self, shipment: Shipment) -> None:
        """Copy one shipped snapshot-store file into the local spool.

        Atomic (temp + ``os.replace``) and idempotent: redelivery
        rewrites identical bytes.  The blob's CRC-guarded header is
        verified *before* the bytes land: a segment corrupted in
        transit is NACKed here instead of poisoning the local spool.
        """
        file_name = shipment.meta["file"]
        try:
            verify_segment_blob(shipment.blob, context=file_name)
        except StoreError as exc:
            raise ShipmentIntegrityError(
                f"replica {self.name!r} rejected store segment "
                f"{file_name!r}: {exc}"
            ) from exc
        os.makedirs(self.store_root, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.store_root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as stream:
                stream.write(shipment.blob)
            os.replace(tmp, os.path.join(self.store_root, file_name))
        except BaseException:
            if os.path.exists(tmp):
                os.remove(tmp)
            raise
        get_registry().counter(
            "replication.store_segments_received").inc()

    def _adopt_checkpoint(self, shipment: Shipment) -> None:
        seq = shipment.first_seq
        # Verify BEFORE the blob lands: a checkpoint corrupted in
        # transit must never reach disk, where it would silently
        # poison the local generation ladder -- a later reload would
        # fall back past it and regress the engine while the WAL
        # position stayed forward.
        try:
            verify_checkpoint_blob(
                shipment.blob, context=f"checkpoint seq {seq}"
            )
        except ValueError as exc:
            raise ShipmentIntegrityError(
                f"replica {self.name!r} rejected checkpoint at seq "
                f"{seq}: {exc}"
            ) from exc
        reload_needed = self.server is None or seq > self.next_seq
        self.manager.adopt_checkpoint(seq, shipment.blob)
        if reload_needed:
            # Bootstrapping, or healing past GC'd history: the mirror
            # below the checkpoint is superseded, so reset it to the
            # checkpoint's position and reload the engine.
            wal = self.manager.wal
            wal.seal_active()
            wal.gc(seq)
            if not wal.segments() and wal.next_seq < seq:
                wal.fast_forward(seq)
            try:
                self._load_from_disk()
            except RecoveryError as exc:
                # A manifest-mode checkpoint whose store segments were
                # lost in transit is unloadable; surface it as a gap so
                # the cluster requests a resync (which re-ships the
                # segment files along with the checkpoint).
                raise ReplicationGapError(
                    f"replica {self.name!r} adopted checkpoint at seq "
                    f"{seq} but cannot restore from it: {exc}"
                ) from exc

    def _apply_segment(self, shipment: Shipment) -> None:
        if self.server is None:
            # No checkpoint adopted yet: segments cannot bootstrap a
            # replica (the WAL holds mutations, not the initial graph).
            raise ReplicationGapError(
                f"replica {self.name!r} received segment "
                f"[{shipment.first_seq}, {shipment.end_seq}) before "
                f"any checkpoint"
            )
        position = self.next_seq
        records = []
        for line in shipment.lines:
            try:
                seq, payload = _decode_record(line)  # CRC re-verified
            except ValueError as exc:
                # Transit bit-rot: the record no longer matches its
                # CRC (or no longer parses at all).  NACK the whole
                # shipment -- nothing from it has been applied yet.
                raise ShipmentIntegrityError(
                    f"replica {self.name!r} rejected segment "
                    f"[{shipment.first_seq}, {shipment.end_seq}): {exc}"
                ) from exc
            if seq >= position:
                records.append((seq, payload))
        if not records:
            return  # fully deduplicated redelivery
        if records[0][0] > position:
            raise ReplicationGapError(
                f"replica {self.name!r} is at seq {position} but the "
                f"shipment's first fresh record is {records[0][0]}: "
                f"records [{position}, {records[0][0]}) were lost or "
                f"reordered in transit"
            )
        for seq, payload in records:
            batch = payload_to_batch(payload)
            mirrored = self.manager.log_batch(batch)
            if mirrored != seq:
                raise ReplicationError(
                    f"mirror desync on {self.name!r}: appended at "
                    f"{mirrored}, record says {seq}"
                )
            if seq in self.manager.quarantined:
                continue  # the writer durably skipped it; so do we
            self.server.ingest(batch, logged_seq=seq)

    def _load_from_disk(self) -> None:
        engine, seq = self.manager.restore_engine(
            self.algorithm_factory, store_root=self.store_root,
        )
        self.server = StreamingAnalyticsServer.from_engine(
            engine, self.algorithm_factory,
            batches_ingested=seq, recovery=self.manager,
            **self._query_kwargs,
        )

    # ------------------------------------------------------------------
    # Queries (snapshot-isolated: the branch loop copies state)
    # ------------------------------------------------------------------
    def query(
        self,
        until_convergence: Optional[bool] = None,
        deadline_s: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> QueryResult:
        self._require_alive()
        if self.server is None:
            raise ReplicaUnavailableError(
                f"replica {self.name!r} has not bootstrapped yet"
            )
        faults.hit("replica.query")
        return self.server.query(
            until_convergence=until_convergence,
            deadline_s=deadline_s, deadline=deadline,
        )

    @property
    def approximate_values(self) -> Optional[np.ndarray]:
        return None if self.server is None else (
            self.server.approximate_values
        )

    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Simulate process death (state stays on disk, inbox queues)."""
        self.alive = False
        self.manager.close()

    def close(self) -> None:
        self.alive = False
        self.manager.close()

    def __repr__(self) -> str:
        return (
            f"ReadReplica(name={self.name!r}, alive={self.alive}, "
            f"next_seq={self.next_seq}, fence={self.fence_epoch})"
        )


# ----------------------------------------------------------------------
# The cluster (writer + replicas + authority + links)
# ----------------------------------------------------------------------
class ReplicationCluster:
    """One writer, N read replicas, and the glue between them.

    ``transport="inproc"`` wires deque links (single process);
    ``"directory"`` spools shipments under each replica's directory so
    tests can exercise the at-least-once redelivery path across
    simulated process boundaries.
    """

    def __init__(
        self,
        resilient: ResilientAnalyticsServer,
        algorithm_factory: Callable,
        root: str,
        replicas: int = 2,
        transport: str = "inproc",
        authority: Optional[EpochAuthority] = None,
        replica_names: Optional[List[str]] = None,
        exact_iterations: Optional[int] = None,
        until_convergence: bool = False,
        max_iterations: int = 1000,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if transport not in ("inproc", "directory"):
            raise ReplicationError(
                f"transport must be 'inproc' or 'directory', "
                f"got {transport!r}"
            )
        self.root = root
        self.algorithm_factory = algorithm_factory
        self.transport_kind = transport
        self.retry_policy = (retry_policy if retry_policy is not None
                             else RetryPolicy())
        self.dead_letters = DeadLetterLedger(
            os.path.join(root, "dead_letter.jsonl")
        )
        #: Replica name -> finding detail while a scrub has its local
        #: state quarantined; the query router skips these replicas.
        self.integrity_quarantine: Dict[str, str] = {}
        self.integrity_rejections = 0
        self._replica_kwargs = dict(
            exact_iterations=exact_iterations,
            until_convergence=until_convergence,
            max_iterations=max_iterations,
        )
        # Validate the writer BEFORE touching disk: a non-durable
        # server must not leave an epoch.json behind.
        self.writer_node = ReplicationWriter(resilient)
        self.authority = authority if authority is not None else (
            EpochAuthority(os.path.join(root, "epoch.json"))
        )
        self.writer_node.epoch = self.authority.epoch
        self.replicas: Dict[str, ReadReplica] = {}
        self.deposed: List[ReplicationWriter] = []
        self.gap_resyncs = 0
        self.deferred_deliveries = 0
        self._delivering: Optional[str] = None
        names = replica_names if replica_names is not None else [
            f"r{index}" for index in range(replicas)
        ]
        for name in names:
            self._add_replica(name)

    # ------------------------------------------------------------------
    def _replica_dir(self, name: str) -> str:
        return os.path.join(self.root, "replicas", name)

    def _make_inbox(self, name: str) -> ReplicationTransport:
        if self.transport_kind == "directory":
            return DirectoryTransport(
                os.path.join(self._replica_dir(name), "inbox")
            )
        return InProcessTransport()

    def _add_replica(self, name: str) -> ReadReplica:
        inbox = self._make_inbox(name)
        replica = ReadReplica(
            name, self._replica_dir(name), self.algorithm_factory,
            inbox, **self._replica_kwargs,
        )
        replica.fence(self.authority.epoch)
        self.replicas[name] = replica
        self.writer_node.attach(name, inbox,
                                start_seq=replica.next_seq)
        return replica

    # ------------------------------------------------------------------
    @property
    def writer(self) -> ResilientAnalyticsServer:
        return self.writer_node.resilient

    def submit(self, batch: MutationBatch, pump: bool = True) -> int:
        """Submit one batch to the writer; returns the read-your-writes
        token (the writer's durable record count after logging)."""
        self.writer.submit(batch, pump=pump)
        return self.writer_node.next_seq

    def replicate(self, final: bool = False) -> None:
        """Ship everything new and deliver it to live replicas.

        ``final=True`` force-seals the WAL tail first so replicas
        converge to the writer's exact position (promotion, shutdown,
        end-of-soak).
        """
        if final:
            self.writer_node.seal_tail()
        self.writer_node.ship()
        self.deliver()
        self.publish_gauges()

    def sync(self) -> bool:
        """Final sync: seal, ship, deliver, then retransmit under the
        cluster's :class:`RetryPolicy` until no live replica lags.

        A delivery round in which a lagging link made no progress
        consumes one retry attempt for that link (the deterministic
        ack-timeout stand-in: a shipment lost in transit advanced the
        writer's watermark but never landed, and if it was the *last*
        shipment no later delivery ever reveals the gap).  Attempts
        reset whenever the link advances, so a slow-but-moving replica
        is never abandoned.  A link that burns its whole budget has
        its undelivered range recorded on the durable dead-letter
        ledger and is left behind -- the writer never hangs on an
        undeliverable replica.  Returns ``True`` when every live
        replica converged.
        """
        self.replicate(final=True)
        policy = self.retry_policy
        attempts: Dict[str, int] = {}
        abandoned: set = set()
        while True:
            writer_next = self.writer_node.next_seq
            lagging = [
                (name, replica)
                for name, replica in sorted(self.replicas.items())
                if replica.alive and name not in abandoned
                and replica.lag_behind(writer_next) > 0
            ]
            if not lagging:
                return not abandoned
            before = {name: replica.next_seq
                      for name, replica in lagging}
            for name, replica in lagging:
                attempt = attempts.get(name, 0) + 1
                if attempt > policy.max_attempts:
                    self.dead_letters.record(
                        link=name, first_seq=replica.next_seq,
                        end_seq=writer_next,
                        reason="retry budget exhausted",
                        attempts=attempt - 1,
                    )
                    abandoned.add(name)
                    continue
                attempts[name] = attempt
                delay = policy.backoff(attempt)
                if delay:
                    time.sleep(delay)
                self.writer_node.resync(name, replica.next_seq)
            self.deliver()
            self.publish_gauges()
            for name, replica in lagging:
                if name not in abandoned and replica.next_seq > before[name]:
                    attempts[name] = 0

    def deliver(self) -> None:
        for name in sorted(self.replicas):
            replica = self.replicas[name]
            if not replica.alive:
                continue
            # Deliberately NOT cleared on an exception: when an
            # injected crash kills a replica mid-apply, the driver
            # reads ``delivering`` to learn which one died.
            self._delivering = name
            self._deliver(replica)
            self._delivering = None

    @property
    def delivering(self) -> Optional[str]:
        """The replica last (or currently) being delivered to.

        Stays set when delivery died mid-apply -- the crash-fuzzer
        driver's way of identifying the casualty."""
        return self._delivering

    def _deliver(self, replica: ReadReplica) -> None:
        attempts = 0
        while True:
            try:
                replica.poll()
                return
            except InjectedFault:
                # Deferred delivery: the shipment stays queued and the
                # replica simply lags this round -- planted lag.
                self.deferred_deliveries += 1
                get_registry().counter(
                    "replication.deliveries_deferred").inc()
                return
            except ShipmentIntegrityError as exc:
                # NACK: the shipment failed its CRC re-check.  Drop it
                # and re-request the range from the writer; a link that
                # keeps delivering garbage past the retry budget is
                # dead-lettered instead of spinning forever.
                attempts += 1
                self.integrity_rejections += 1
                get_registry().counter(
                    "replication.shipments_rejected").inc()
                if attempts > self.retry_policy.max_attempts:
                    self.dead_letters.record(
                        link=replica.name, first_seq=replica.next_seq,
                        end_seq=self.writer_node.next_seq,
                        reason=f"integrity budget exhausted: {exc}",
                        attempts=attempts - 1,
                    )
                    raise
                replica.discard_pending()
                self.writer_node.resync(replica.name, replica.next_seq)
            except (ReplicationGapError, SegmentGapError):
                attempts += 1
                if attempts > self.retry_policy.max_attempts:
                    raise
                replica.discard_pending()
                self.gap_resyncs += 1
                self.writer_node.resync(replica.name, replica.next_seq)

    # ------------------------------------------------------------------
    # Failure / failover choreography
    # ------------------------------------------------------------------
    def kill_replica(self, name: str) -> None:
        self.replicas[name].kill()

    def restart_replica(self, name: str) -> ReadReplica:
        """Restart a dead replica from its directory + surviving inbox."""
        old = self.replicas[name]
        if old.alive:
            old.close()
        replica = ReadReplica(
            name, old.directory, self.algorithm_factory, old.inbox,
            **self._replica_kwargs,
        )
        replica.fence(max(self.authority.epoch, old.fence_epoch))
        self.replicas[name] = replica
        return replica

    def restart_writer(self, **resilient_kwargs) -> ResilientAnalyticsServer:
        """Rebuild the writer from its state directory after a crash.

        The recovered writer re-handshakes every link at the replica's
        durable position -- watermarks died with the process, the
        replicas' positions did not.
        """
        manager = self.writer_node.manager
        directory = manager.directory
        settings = dict(
            checkpoint_every=manager.checkpoint_every,
            retain=manager.retain,
            segment_records=manager.wal.segment_records,
        )
        try:
            manager.close()
        except OSError:
            pass
        fresh = RecoveryManager(directory, **settings)
        for key, value in self._replica_kwargs.items():
            resilient_kwargs.setdefault(key, value)
        resilient = ResilientAnalyticsServer.recover(
            fresh, self.algorithm_factory, **resilient_kwargs
        )
        self.writer_node = ReplicationWriter(
            resilient, epoch=self.authority.epoch
        )
        for name, replica in self.replicas.items():
            self.writer_node.attach(name, replica.inbox,
                                    start_seq=replica.next_seq)
        return resilient

    def promote(self, name: str, **resilient_kwargs
                ) -> ResilientAnalyticsServer:
        """Fail over: make replica ``name`` the writer.

        Advances the epoch, fences every surviving replica, recovers a
        full writer from the replica's directory (checkpoint + mirror
        tail -- the directories are structurally identical by design),
        and re-attaches the remaining replicas.  The deposed writer
        object is kept on :attr:`deposed`; any late shipments it sends
        carry the old epoch and land on the replicas' fence ledgers.
        """
        replica = self.replicas.pop(name)
        if not replica.alive:
            self.replicas[name] = replica
            raise ReplicationError(
                f"cannot promote dead replica {name!r}"
            )
        epoch = self.authority.advance()
        for survivor in self.replicas.values():
            if survivor.alive:
                survivor.fence(epoch)
        replica.close()
        manager = RecoveryManager(
            replica.directory,
            checkpoint_every=self.writer_node.manager.checkpoint_every,
            retain=self.writer_node.manager.retain,
            segment_records=(
                self.writer_node.manager.wal.segment_records
            ),
        )
        for key, value in self._replica_kwargs.items():
            resilient_kwargs.setdefault(key, value)
        # Manifest-mode checkpoints record the old writer's store root;
        # the promoted node owns copies in its own spool, shipped ahead
        # of the checkpoints it adopted.
        resilient_kwargs.setdefault("store_root", replica.store_root)
        resilient = ResilientAnalyticsServer.recover(
            manager, self.algorithm_factory, **resilient_kwargs
        )
        self.deposed.append(self.writer_node)
        self.writer_node = ReplicationWriter(resilient, epoch=epoch)
        for other_name, other in self.replicas.items():
            self.writer_node.attach(other_name, other.inbox,
                                    start_seq=other.next_seq)
        get_registry().counter("replication.promotions").inc()
        return resilient

    # ------------------------------------------------------------------
    # Integrity scrubbing (cluster mode)
    # ------------------------------------------------------------------
    def scrub(self, repair: bool = False) -> Dict:
        """Scrub the writer's and every live replica's durable state.

        ``repair=False`` detects and *quarantines*: a replica with any
        finding is pulled from query routing
        (:attr:`integrity_quarantine`) until a repair pass clears it.
        ``repair=True`` heals: standalone repairs first (bit-for-bit
        direction rebuild, covered-WAL garbage collection, checkpoint
        sidelining -- :class:`~repro.recovery.scrub.IntegrityScrubber`),
        then re-ships sidelined store generations from the writer, and
        -- for damage only a fresh bootstrap can fix -- rebuilds the
        replica from the writer wholesale.  Returns
        ``{"writer": ScrubReport, "<replica>": ScrubReport, ...}``.
        """
        from repro.recovery.scrub import IntegrityScrubber

        reports: Dict = {}
        writer_scrubber = IntegrityScrubber(
            self.writer_node.manager.directory
        )
        reports["writer"] = (writer_scrubber.repair() if repair
                             else writer_scrubber.scan())
        for name in sorted(self.replicas):
            replica = self.replicas[name]
            if not replica.alive:
                continue
            if repair:
                report = self._repair_replica(name)
            else:
                report = IntegrityScrubber(
                    replica.directory, store_root=replica.store_root
                ).scan()
            if report.ok or report.repaired:
                self.integrity_quarantine.pop(name, None)
            elif name not in self.integrity_quarantine:
                unhealed = [finding for finding in report.findings
                            if not finding.repaired]
                self.integrity_quarantine[name] = unhealed[0].detail
                get_registry().counter(
                    "scrub.replicas_quarantined").inc()
            reports[name] = report
        self.publish_gauges()
        return reports

    def _repair_replica(self, name: str):
        """Heal one replica, escalating through three repair tiers.

        1. Standalone scrubber repair (direction rebuild works on a
           replica's store spool exactly as on a writer's).
        2. Re-ship from the writer: sidelined store generations are
           restored by a resync -- the writer re-offers the newest
           checkpoint plus its store files, and the replica's
           idempotent file copies overwrite in place (the same-seq
           checkpoint re-adopts without an engine reload).
        3. Full rebuild: a corrupt record in the replica's WAL mirror
           *above* its newest checkpoint cannot be repaired by
           truncation -- that would rewind ``next_seq`` and re-apply
           history into the live engine -- so the replica is wiped and
           re-bootstrapped from the writer.
        """
        from repro.recovery.scrub import IntegrityScrubber

        replica = self.replicas[name]
        scrubber = IntegrityScrubber(replica.directory,
                                     store_root=replica.store_root)
        report = scrubber.repair()
        if report.repaired:
            return report
        unrepaired = [finding for finding in report.findings
                      if not finding.repaired]
        if all(finding.kind == "store" for finding in unrepaired):
            self.writer_node.resync(name, replica.next_seq)
            self.deliver()
            verify = IntegrityScrubber(
                replica.directory, store_root=replica.store_root
            ).scan(write_report=False)
            if verify.ok:
                for finding in unrepaired:
                    finding.repaired = True
                    finding.repair = (
                        (finding.repair + "; " if finding.repair else "")
                        + "re-shipped from writer"
                    )
                scrubber.write_report(report)
                return report
        self._rebuild_replica(name)
        rebuilt = self.replicas[name]
        verify = IntegrityScrubber(
            rebuilt.directory, store_root=rebuilt.store_root
        ).scan(write_report=False)
        if verify.ok:
            for finding in report.findings:
                if not finding.repaired:
                    finding.repaired = True
                    finding.repair = "replica rebuilt from writer"
        scrubber.write_report(report)
        return report

    def _rebuild_replica(self, name: str) -> ReadReplica:
        """Wipe a replica's directory and re-bootstrap it from the
        writer -- the repair of last resort.

        The inbox transport object is retained (spool cursors and any
        chaos wrapper survive); shipments still queued for the old
        incarnation are drained first, bounded by ``pending()`` because
        a chaos delay plan may keep returning ``None`` for a shipment
        that is still queued.
        """
        old = self.replicas[name]
        inbox = old.inbox
        if old.alive:
            old.close()
        for _ in range(inbox.pending()):
            if inbox.peek() is None:
                break
            inbox.ack()
        shutil.rmtree(old.directory, ignore_errors=True)
        replica = ReadReplica(
            name, old.directory, self.algorithm_factory, inbox,
            **self._replica_kwargs,
        )
        replica.fence(self.authority.epoch)
        self.replicas[name] = replica
        self.writer_node.resync(name, 0)
        self.deliver()
        get_registry().counter("replication.replicas_rebuilt").inc()
        return replica

    # ------------------------------------------------------------------
    # Observation surface
    # ------------------------------------------------------------------
    def max_lag(self) -> int:
        """Worst replica staleness in batches (dead replicas count --
        a down replica *is* stale, which is what pages the SLO)."""
        writer_next = self.writer_node.next_seq
        if not self.replicas:
            return 0
        return max(replica.lag_behind(writer_next)
                   for replica in self.replicas.values())

    def staleness(self) -> int:
        """Worst shipped-but-unapplied backlog, in WAL records.

        A healthy replica drains every shipment at the next delivery
        round, so this sits at zero in steady state regardless of the
        seal/checkpoint cadence -- unlike :meth:`max_lag`, whose
        sawtooth tracks the shipping pipeline itself.  It grows only
        when a replica stops applying what it was sent (dead, wedged,
        or planted-lag) or a shipment was lost in transit, which is
        exactly what the ``replica_staleness`` SLO should page on.
        """
        worst = 0
        for name, replica in self.replicas.items():
            shipped = self.writer_node.shipped_through(name)
            worst = max(worst, shipped - replica.next_seq)
        return worst

    def status(self) -> Dict:
        writer_next = self.writer_node.next_seq
        return {
            "epoch": self.authority.epoch,
            "writer": {
                "directory": self.writer_node.manager.directory,
                "next_seq": writer_next,
                "links": self.writer_node.links(),
            },
            "dead_letters": len(self.dead_letters),
            "integrity_rejections": self.integrity_rejections,
            "integrity_quarantine": dict(self.integrity_quarantine),
            "replicas": {
                name: {
                    "alive": replica.alive,
                    "next_seq": replica.next_seq,
                    "lag_batches": replica.lag_behind(writer_next),
                    "fence_epoch": replica.fence_epoch,
                    "fence_rejections": replica.fence_rejections,
                    "inbox_pending": replica.inbox.pending(),
                    "quarantined": name in self.integrity_quarantine,
                }
                for name, replica in sorted(self.replicas.items())
            },
        }

    def publish_gauges(self) -> None:
        registry = get_registry()
        writer_next = self.writer_node.next_seq
        for name, replica in self.replicas.items():
            registry.gauge(f"replication.{name}.applied_seq").set(
                replica.next_seq
            )
            registry.gauge(f"replication.{name}.lag_batches").set(
                replica.lag_behind(writer_next)
            )
        registry.gauge("replication.max_lag_batches").set(
            self.max_lag()
        )
        registry.gauge("replication.epoch").set(self.authority.epoch)
        registry.gauge("replication.dead_letter").set(
            len(self.dead_letters)
        )
        registry.gauge("replication.integrity_rejections").set(
            self.integrity_rejections
        )
        registry.gauge("replication.quarantined_replicas").set(
            len(self.integrity_quarantine)
        )

    def observe_replicas(self, emitter) -> None:
        """One wide event per replica (kind ``replica``) per call."""
        writer_next = self.writer_node.next_seq
        for name, replica in sorted(self.replicas.items()):
            emitter.emit(
                "replica",
                name=name,
                alive=replica.alive,
                applied_seq=replica.next_seq,
                lag_batches=replica.lag_behind(writer_next),
                fence_epoch=replica.fence_epoch,
                fence_rejections=replica.fence_rejections,
                inbox_pending=replica.inbox.pending(),
                epoch=self.authority.epoch,
                dead_letters=len(self.dead_letters),
                shipments_rejected=self.integrity_rejections,
                quarantined=name in self.integrity_quarantine,
            )

    def close(self) -> None:
        for replica in self.replicas.values():
            if replica.alive:
                replica.close()
        self.writer_node.manager.close()

    def __repr__(self) -> str:
        return (
            f"ReplicationCluster(epoch={self.authority.epoch}, "
            f"replicas={sorted(self.replicas)}, "
            f"writer_next={self.writer_node.next_seq})"
        )


# ----------------------------------------------------------------------
# Offline inspection (`repro replication-status`)
# ----------------------------------------------------------------------
def replication_status(root: str) -> Dict:
    """Inspect a replicated state directory tree without serving it.

    Reads the writer's WAL position, the cluster epoch, and each
    replica's durable position, fence epoch, and fence-ledger size from
    disk alone -- usable while nothing is running.
    """
    from repro.recovery.wal import WriteAheadLog

    if not os.path.isdir(root):
        raise ReplicationError(f"{root} is not a directory")

    def position(directory: str) -> Dict:
        wal_dir = os.path.join(directory, "wal")
        next_seq = 0
        if os.path.isdir(wal_dir):
            log = WriteAheadLog(wal_dir)
            next_seq = log.next_seq
            log.close()
        ckpt_dir = os.path.join(directory, "checkpoints")
        newest = -1
        if os.path.isdir(ckpt_dir):
            for entry in os.listdir(ckpt_dir):
                if entry.startswith("ckpt-") and entry.endswith(".npz"):
                    newest = max(newest, int(entry[5:-4]))
        return {
            "next_seq": max(next_seq, max(newest, 0)),
            "newest_checkpoint": newest,
        }

    def jsonl_count(path: str) -> int:
        if not os.path.exists(path):
            return 0
        with open(path, encoding="utf-8") as stream:
            return sum(1 for line in stream if line.strip())

    def scrub_summary(directory: str) -> Optional[Dict]:
        path = os.path.join(directory, "scrub-report.json")
        if not os.path.exists(path):
            return None
        try:
            with open(path, encoding="utf-8") as stream:
                data = json.load(stream)
        except (OSError, json.JSONDecodeError) as exc:
            return {"ok": False, "error": f"unreadable scrub report: {exc}"}
        return {
            "ok": bool(data.get("ok")),
            "repaired": bool(data.get("repaired")),
            "findings": len(data.get("findings", [])),
        }

    epoch_path = os.path.join(root, "epoch.json")
    epoch = None
    if os.path.exists(epoch_path):
        with open(epoch_path, encoding="utf-8") as stream:
            epoch = int(json.load(stream)["epoch"])
    writer = position(root)
    writer["scrub"] = scrub_summary(root)
    replicas = {}
    replicas_root = os.path.join(root, "replicas")
    if os.path.isdir(replicas_root):
        for name in sorted(os.listdir(replicas_root)):
            directory = os.path.join(replicas_root, name)
            if not os.path.isdir(directory):
                continue
            info = position(directory)
            fence_path = os.path.join(directory, "fence.json")
            if os.path.exists(fence_path):
                with open(fence_path, encoding="utf-8") as stream:
                    info["fence_epoch"] = int(json.load(stream)["epoch"])
            else:
                info["fence_epoch"] = 0
            info["fence_rejections"] = jsonl_count(
                os.path.join(directory, "fence_ledger.jsonl")
            )
            info["lag_batches"] = max(
                0, writer["next_seq"] - info["next_seq"]
            )
            info["scrub"] = scrub_summary(directory)
            replicas[name] = info
    return {"root": root, "epoch": epoch, "writer": writer,
            "replicas": replicas,
            "dead_letters": jsonl_count(
                os.path.join(root, "dead_letter.jsonl")
            )}
