"""Tornado-style approximate/exact query serving over streaming graphs.

Tornado (SIGMOD'16, discussed in the paper's related work) serves
real-time analytics with a *main loop* that cheaply maintains
approximate results as the graph evolves and *branch loops* that, on a
user query, fork off the current state and iterate it to an exact
answer.  :class:`~repro.serving.server.StreamingAnalyticsServer`
realises that architecture on GraphBolt: the main loop is a
GraphBolt engine running a short BSP window (kept exact-for-its-window
by dependency-driven refinement), and a query branches the rolling
state forward to the full window or to convergence without disturbing
ingestion.
"""

from repro.serving.server import QueryResult, StreamingAnalyticsServer
from repro.serving.suite import AnalyticsSuite

__all__ = ["AnalyticsSuite", "QueryResult", "StreamingAnalyticsServer"]
