"""Tornado-style approximate/exact query serving over streaming graphs.

Tornado (SIGMOD'16, discussed in the paper's related work) serves
real-time analytics with a *main loop* that cheaply maintains
approximate results as the graph evolves and *branch loops* that, on a
user query, fork off the current state and iterate it to an exact
answer.  :class:`~repro.serving.server.StreamingAnalyticsServer`
realises that architecture on GraphBolt: the main loop is a
GraphBolt engine running a short BSP window (kept exact-for-its-window
by dependency-driven refinement), and a query branches the rolling
state forward to the full window or to convergence without disturbing
ingestion.

:mod:`repro.serving.resilience` wraps the server in an overload layer:
bounded-queue admission control, deadline-budgeted queries, and a
degradation circuit breaker over the recovery path.
:mod:`repro.serving.observe` attaches the observability layer: a
:class:`~repro.serving.observe.ServingObserver` turns every applied
batch and served query into a wide event and an SLO evaluator tick.
:mod:`repro.serving.replication` ships the durable writer's sealed WAL
segments and checkpoints to read replicas (with epoch fencing and
promotion), and :mod:`repro.serving.router` routes deadline-budgeted
queries across them with lag-aware candidate selection and
deadline-preserving failover.  :mod:`repro.serving.chaos` turns the
transport hostile on demand -- seeded drop/duplicate/reorder/delay/
corrupt fault plans -- which the bounded
:class:`~repro.serving.replication.RetryPolicy`, CRC NACKs, and the
durable dead-letter ledger are proven against.
"""

from repro.serving.chaos import ChaosConfig, ChaosTransport, wrap_cluster
from repro.serving.observe import PlantedLatency, ServingObserver
from repro.serving.replication import (
    DeadLetterLedger,
    DirectoryTransport,
    EpochAuthority,
    InProcessTransport,
    ReadReplica,
    ReplicaUnavailableError,
    ReplicationCluster,
    ReplicationError,
    ReplicationGapError,
    ReplicationWriter,
    RetryPolicy,
    Shipment,
    ShipmentIntegrityError,
    corrupt_shipment,
    replication_status,
)
from repro.serving.resilience import (
    ADMISSION_POLICIES,
    BreakerConfig,
    CircuitBreaker,
    HealthSnapshot,
    ResilientAnalyticsServer,
)
from repro.serving.router import (
    NoReplicaAvailableError,
    QueryRouter,
    RoutedResult,
    StalenessError,
)
from repro.serving.server import QueryResult, StreamingAnalyticsServer
from repro.serving.suite import AnalyticsSuite, SuiteRecovery

__all__ = [
    "ADMISSION_POLICIES",
    "AnalyticsSuite",
    "BreakerConfig",
    "ChaosConfig",
    "ChaosTransport",
    "CircuitBreaker",
    "DeadLetterLedger",
    "DirectoryTransport",
    "EpochAuthority",
    "HealthSnapshot",
    "InProcessTransport",
    "NoReplicaAvailableError",
    "PlantedLatency",
    "QueryResult",
    "QueryRouter",
    "ReadReplica",
    "ReplicaUnavailableError",
    "ReplicationCluster",
    "ReplicationError",
    "ReplicationGapError",
    "ReplicationWriter",
    "ResilientAnalyticsServer",
    "RetryPolicy",
    "RoutedResult",
    "ServingObserver",
    "Shipment",
    "ShipmentIntegrityError",
    "StalenessError",
    "StreamingAnalyticsServer",
    "SuiteRecovery",
    "corrupt_shipment",
    "wrap_cluster",
]
