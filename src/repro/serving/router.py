"""Lag-aware query routing over a replication cluster.

The router answers deadline-budgeted queries from read replicas and
hides individual replica failures behind **deadline-preserving
failover**: the budget is materialized as ONE
:class:`~repro.runtime.deadline.Deadline` object before the first
attempt and the *same* object rides along every retry, so a query that
fails over still answers within its original budget -- and comes back
``degraded`` only when that budget is truly exhausted, never because a
retry silently restarted the clock.

Consistency knobs:

- ``max_staleness_batches`` -- bounded-staleness reads: a replica
  lagging the writer by more than this many records is not a
  candidate;
- ``min_applied_batch`` -- read-your-writes: pass the token returned
  by :meth:`~repro.serving.replication.ReplicationCluster.submit` and
  the router only considers replicas that have applied at least that
  much, nudging the cluster to replicate once before giving up.

A replica that raises any ``OSError`` flavour mid-query (a dead
replica's :class:`~repro.serving.replication.ReplicaUnavailableError`,
an injected ``replica.query`` fault, a real connection error) is
marked unhealthy and skipped until a health probe restores it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs import trace
from repro.obs.registry import get_registry
from repro.runtime.deadline import Deadline, WallClockDeadline
from repro.serving.replication import ReplicationCluster, ReplicationError
from repro.serving.server import QueryResult

__all__ = [
    "NoReplicaAvailableError",
    "QueryRouter",
    "RoutedResult",
    "StalenessError",
]


class StalenessError(ReplicationError):
    """No replica satisfies the read-your-writes / staleness bound."""


class NoReplicaAvailableError(ReplicationError):
    """Every candidate replica failed and writer fallback is off."""


@dataclass
class RoutedResult:
    """A :class:`QueryResult` plus where and how it was served."""

    result: QueryResult
    served_by: str
    attempts: int
    failovers: int
    staleness_batches: int

    @property
    def degraded(self) -> bool:
        return self.result.degraded

    @property
    def values(self):
        return self.result.values


class QueryRouter:
    """Routes queries to the freshest healthy replica, then the writer.

    Candidates are the alive, bootstrapped, healthy replicas ordered by
    (lag, name) -- freshest first, name as the deterministic
    tie-breaker.  ``writer_fallback=True`` (the default) serves from
    the writer when no replica can answer: reads degrade to the primary
    rather than failing outright.
    """

    def __init__(
        self,
        cluster: ReplicationCluster,
        max_staleness_batches: Optional[int] = None,
        writer_fallback: bool = True,
    ) -> None:
        self.cluster = cluster
        self.max_staleness_batches = max_staleness_batches
        self.writer_fallback = writer_fallback
        self._unhealthy: Dict[str, str] = {}
        self.queries_routed = 0
        self.failovers = 0
        self.writer_fallbacks = 0

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def unhealthy(self) -> Dict[str, str]:
        return dict(self._unhealthy)

    def mark_unhealthy(self, name: str, reason: str) -> None:
        self._unhealthy[name] = reason
        get_registry().counter("router.marked_unhealthy").inc()

    def probe(self) -> List[str]:
        """Re-admit replicas that answer a zero-budget health probe.

        A transiently-failed replica (injected fault, brief outage)
        comes back; a dead or unbootstrapped one stays quarantined
        until it is restarted and catches up.
        """
        restored = []
        for name in sorted(self._unhealthy):
            replica = self.cluster.replicas.get(name)
            if replica is None:
                del self._unhealthy[name]
                continue
            if replica.alive and replica.server is not None:
                del self._unhealthy[name]
                restored.append(name)
        if restored:
            get_registry().counter("router.probes_restored").inc(
                len(restored)
            )
        return restored

    # ------------------------------------------------------------------
    # Candidate selection
    # ------------------------------------------------------------------
    def candidates(
        self, min_applied_batch: Optional[int] = None
    ) -> List[str]:
        writer_next = self.cluster.writer_node.next_seq
        ranked = []
        for name, replica in self.cluster.replicas.items():
            if name in self._unhealthy:
                continue
            if name in self.cluster.integrity_quarantine:
                # A scrub found damage in this replica's durable state;
                # it must not serve reads until a repair pass clears it.
                get_registry().counter("router.quarantine_skips").inc()
                continue
            if not replica.alive or replica.server is None:
                continue
            lag = replica.lag_behind(writer_next)
            if (self.max_staleness_batches is not None
                    and lag > self.max_staleness_batches):
                continue
            if (min_applied_batch is not None
                    and replica.next_seq < min_applied_batch):
                continue
            ranked.append((lag, name))
        ranked.sort()
        return [name for _, name in ranked]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def query(
        self,
        until_convergence: Optional[bool] = None,
        deadline_s: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        min_applied_batch: Optional[int] = None,
    ) -> RoutedResult:
        # The budget is materialized exactly once, before the first
        # attempt: every failover retry shares this object, so the
        # original deadline spans the whole routed query.
        if deadline is None and deadline_s is not None:
            deadline = WallClockDeadline(deadline_s)
        self.queries_routed += 1
        get_registry().counter("router.queries").inc()

        names = self.candidates(min_applied_batch)
        if not names and min_applied_batch is not None:
            # The token outruns every replica: replicate once -- the
            # writer may simply not have shipped yet -- and re-select.
            self.cluster.replicate()
            names = self.candidates(min_applied_batch)
            if not names and not self.writer_fallback:
                raise StalenessError(
                    f"no replica has applied batch {min_applied_batch} "
                    f"(writer is at "
                    f"{self.cluster.writer_node.next_seq})"
                )

        writer_next = self.cluster.writer_node.next_seq
        attempts = 0
        failovers = 0
        with trace.span("router.query",
                        candidates=len(names)) as span:
            for name in names:
                replica = self.cluster.replicas[name]
                lag = replica.lag_behind(writer_next)
                attempts += 1
                try:
                    result = replica.query(
                        until_convergence=until_convergence,
                        deadline=deadline,
                    )
                except OSError as exc:
                    # Dead replica, injected replica.query fault, or a
                    # real transport error: fail over within the SAME
                    # deadline object.
                    self.mark_unhealthy(name, str(exc))
                    failovers += 1
                    self.failovers += 1
                    get_registry().counter("router.failovers").inc()
                    continue
                span.tag(served_by=name, failovers=failovers)
                return RoutedResult(
                    result=result, served_by=name, attempts=attempts,
                    failovers=failovers, staleness_batches=lag,
                )
            if not self.writer_fallback:
                raise NoReplicaAvailableError(
                    f"all {attempts} candidate replica(s) failed and "
                    f"writer fallback is disabled"
                )
            attempts += 1
            self.writer_fallbacks += 1
            get_registry().counter("router.writer_fallbacks").inc()
            result = self.cluster.writer.query(
                until_convergence=until_convergence,
                deadline=deadline,
            )
            span.tag(served_by="writer", failovers=failovers)
        return RoutedResult(
            result=result, served_by="writer", attempts=attempts,
            failovers=failovers, staleness_batches=0,
        )

    def __repr__(self) -> str:
        return (
            f"QueryRouter(replicas={sorted(self.cluster.replicas)}, "
            f"unhealthy={sorted(self._unhealthy)}, "
            f"routed={self.queries_routed}, failovers={self.failovers})"
        )
