"""Overload-resilient serving: admission, deadlines, circuit breaking.

PR 3 made the serving loop crash-safe; this layer makes it *load*-safe.
Three pressures threaten a streaming deployment and each gets a
first-class mechanism here:

- **Ingest bursts** -- an :class:`AdmissionController`-style bounded
  queue inside :class:`ResilientAnalyticsServer`.  Batches are
  validated, WAL-logged (durable servers), then queued; when the queue
  exceeds capacity a pluggable policy relieves the pressure: ``block``
  applies synchronously until the queue fits (backpressure), ``shed-
  oldest`` drops the oldest queued batches with a durable skip-mark so
  crash replay agrees with the live loop, and ``coalesce`` folds the
  whole queue into one semantically equivalent batch via
  :meth:`repro.graph.mutation.MutationBatch.merge` (lossless: the
  merged batch applies to the graph exactly as the sequence would, and
  refinement makes served values a function of the latest snapshot, not
  of batch granularity).

- **Slow queries** -- deadline budgets.  ``query(deadline_s=...)``
  threads a :class:`repro.runtime.deadline.Deadline` through
  ``hybrid_forward`` at iteration granularity; an expired budget
  returns the best-so-far BSP state tagged ``degraded=True`` (see
  :meth:`repro.serving.server.StreamingAnalyticsServer.query`).

- **Fault pressure** -- a :class:`CircuitBreaker` over the recovery
  path.  Consecutive quarantines (a flapping poison source) or ingest
  latency SLO violations trip the breaker OPEN: applies are deferred
  (queries keep serving from the last good state, reported as
  staleness), admission switches to the configured degraded policy,
  and after a cooldown the breaker goes HALF_OPEN and sends a single
  *probe* batch through the full path -- success restores full
  service, failure re-opens.  Restores are thereby bounded by the trip
  threshold plus one per probe, where the unprotected loop restores
  once per poison batch, without bound.

Every transition is traced and gauged through :mod:`repro.obs`, and
:meth:`ResilientAnalyticsServer.health` exposes the whole surface as
one snapshot for ``repro serve --status`` and the JSONL journal.

The state machine is deliberately *count*-based, never clock-based:
the same fault/latency sequence produces the same transition sequence,
which is what lets the breaker tests be property-style instead of
sleep-and-hope.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import asdict, dataclass
from typing import Callable, Deque, List, Optional, Tuple

from repro.graph.mutation import MutationBatch
from repro.graph.stream import coalesce_batches
from repro.obs import trace
from repro.obs.registry import get_registry
from repro.runtime.deadline import Deadline
from repro.serving.server import QueryResult, StreamingAnalyticsServer
from repro.testing import faults

__all__ = [
    "ADMISSION_POLICIES",
    "BreakerConfig",
    "BreakerTransition",
    "CircuitBreaker",
    "HealthSnapshot",
    "ResilientAnalyticsServer",
]

#: The pluggable pressure policies of the admission controller.
ADMISSION_POLICIES = ("block", "shed-oldest", "coalesce")

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Numeric encoding for the ``serving.breaker_state`` gauge.
_STATE_CODES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}


@dataclass
class BreakerConfig:
    """Tuning for the degradation circuit breaker.

    ``quarantine_threshold``
        consecutive quarantines that trip CLOSED -> OPEN.
    ``latency_slo_s`` / ``slo_threshold``
        optional ingest-latency SLO; that many *consecutive* violations
        also trip the breaker (``None`` disables the latency signal).
    ``cooldown_submits``
        deferred submissions the breaker sits OPEN before going
        HALF_OPEN (count-based, so transitions are deterministic).
    ``degraded_admission``
        admission policy substituted while the breaker is not CLOSED
        (the configured policy may be ``block``, which cannot apply
        backpressure when applies are suspended).
    ``degraded_approx_iterations``
        main-loop window used for probe applies while degraded;
        ``None`` keeps the full window.  Note that dependency-driven
        refinement still replays the tracked history, so this shrinks
        only the forward-extension work (see ``docs/operations.md``).
    ``enabled``
        ``False`` turns the breaker into a pass-through that never
        trips -- the regression-pinned "unbounded restores" posture.
    """

    quarantine_threshold: int = 3
    latency_slo_s: Optional[float] = None
    slo_threshold: int = 3
    cooldown_submits: int = 4
    degraded_admission: str = "coalesce"
    degraded_approx_iterations: Optional[int] = 1
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.quarantine_threshold < 1:
            raise ValueError("quarantine_threshold must be >= 1")
        if self.slo_threshold < 1:
            raise ValueError("slo_threshold must be >= 1")
        if self.cooldown_submits < 1:
            raise ValueError("cooldown_submits must be >= 1")
        if self.degraded_admission not in ("shed-oldest", "coalesce"):
            raise ValueError(
                "degraded_admission must be 'shed-oldest' or 'coalesce' "
                "(block cannot backpressure while applies are suspended)"
            )
        if (self.degraded_approx_iterations is not None
                and self.degraded_approx_iterations < 1):
            raise ValueError("degraded window needs at least one iteration")


@dataclass(frozen=True)
class BreakerTransition:
    """One recorded state change, for post-mortem assertions."""

    from_state: str
    to_state: str
    reason: str


class CircuitBreaker:
    """Deterministic count-based closed/open/half-open state machine.

    Inputs are discrete events (:meth:`record_success`,
    :meth:`record_quarantine`, :meth:`record_latency`,
    :meth:`note_deferred`, probe outcomes); the resulting transition
    sequence is a pure function of the event sequence.
    """

    def __init__(
        self,
        config: Optional[BreakerConfig] = None,
        on_transition: Optional[Callable[[str, str, str], None]] = None,
    ) -> None:
        self.config = config if config is not None else BreakerConfig()
        self._state = CLOSED
        self._consecutive_quarantines = 0
        self._consecutive_slo_violations = 0
        self._deferred_since_open = 0
        self.transitions: List[BreakerTransition] = []
        self.probes_sent = 0
        self._on_transition = on_transition
        self._publish_state()

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        return self._state

    @property
    def closed(self) -> bool:
        return self._state == CLOSED

    def allows_apply(self) -> bool:
        """May a non-probe batch flow through to the engine?"""
        return not self.config.enabled or self._state == CLOSED

    def wants_probe(self) -> bool:
        return self.config.enabled and self._state == HALF_OPEN

    def watch_transitions(
        self, callback: Optional[Callable[[str, str, str], None]],
    ) -> Optional[Callable[[str, str, str], None]]:
        """Register the transition listener; returns the previous one.

        The callback fires after the state has changed, so reading
        :attr:`state` (or journaling a health snapshot) from inside it
        sees the post-transition world.  One listener at a time: this
        is a wiring point for the health journal, not an event bus.
        """
        previous, self._on_transition = self._on_transition, callback
        return previous

    # ------------------------------------------------------------------
    def _transition(self, to_state: str, reason: str) -> None:
        from_state = self._state
        if from_state == to_state:
            return
        self._state = to_state
        self.transitions.append(
            BreakerTransition(from_state, to_state, reason)
        )
        with trace.span("breaker.transition", from_state=from_state,
                        to_state=to_state, reason=reason):
            pass
        get_registry().counter("serving.breaker_transitions").inc()
        self._publish_state()
        if self._on_transition is not None:
            self._on_transition(from_state, to_state, reason)

    def _publish_state(self) -> None:
        get_registry().gauge("serving.breaker_state").set(
            _STATE_CODES[self._state]
        )

    # ------------------------------------------------------------------
    # Event inputs
    # ------------------------------------------------------------------
    def record_success(self) -> None:
        """A batch applied cleanly within SLO."""
        self._consecutive_quarantines = 0
        self._consecutive_slo_violations = 0

    def record_quarantine(self) -> None:
        """A batch was quarantined (one restore happened)."""
        if not self.config.enabled:
            return
        self._consecutive_slo_violations = 0
        self._consecutive_quarantines += 1
        if (self._state == CLOSED and self._consecutive_quarantines
                >= self.config.quarantine_threshold):
            self.trip(
                f"{self._consecutive_quarantines} consecutive quarantines"
            )

    def record_latency(self, seconds: float) -> None:
        """An ingest latency observation (SLO signal, if configured)."""
        slo = self.config.latency_slo_s
        if not self.config.enabled or slo is None:
            return
        if seconds <= slo:
            self._consecutive_slo_violations = 0
            return
        self._consecutive_quarantines = 0
        self._consecutive_slo_violations += 1
        get_registry().counter("serving.slo_violations").inc()
        if (self._state == CLOSED and self._consecutive_slo_violations
                >= self.config.slo_threshold):
            self.trip(
                f"{self._consecutive_slo_violations} consecutive "
                f"ingest SLO violations (> {slo}s)"
            )

    def note_deferred(self) -> None:
        """A submission arrived while OPEN (cooldown progress)."""
        if self._state != OPEN:
            return
        self._deferred_since_open += 1
        if self._deferred_since_open >= self.config.cooldown_submits:
            self._transition(HALF_OPEN, "cooldown elapsed")

    def record_probe(self, ok: bool) -> None:
        """Outcome of a half-open trial batch."""
        self.probes_sent += 1
        if ok:
            self._consecutive_quarantines = 0
            self._consecutive_slo_violations = 0
            self._transition(CLOSED, "probe succeeded")
        else:
            self._deferred_since_open = 0
            self._transition(OPEN, "probe failed")

    def trip(self, reason: str = "manual trip") -> None:
        """Force OPEN (threshold crossing, or operator action)."""
        if not self.config.enabled:
            return
        self._deferred_since_open = 0
        self._transition(OPEN, reason)

    # ------------------------------------------------------------------
    def restore_budget(self, total_submits: int) -> int:
        """Upper bound on restore invocations over ``total_submits``
        all-poison submissions: the trip threshold, plus one per probe
        the cooldown cadence allows.  The flapping-poison test pins the
        unprotected loop above this bound and the protected loop under
        it.
        """
        cfg = self.config
        if not cfg.enabled:
            return total_submits
        remaining = max(0, total_submits - cfg.quarantine_threshold)
        # Each OPEN period absorbs cooldown_submits submissions, then
        # exactly one probe may restore.
        probes = remaining // cfg.cooldown_submits + 1
        return cfg.quarantine_threshold + probes

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self._state}, "
            f"quarantines={self._consecutive_quarantines}, "
            f"transitions={len(self.transitions)})"
        )


@dataclass
class HealthSnapshot:
    """One observation of the serving surface (``repro serve --status``).

    ``staleness_batches`` counts *submitted constituent batches* not yet
    reflected in served values (a queued coalesced batch counts every
    batch folded into it); ``queue_depth`` counts queue entries.  The
    two differ exactly when coalescing has merged entries.

    ``seq`` numbers snapshots 0, 1, 2, ... per server, so a journal of
    snapshots is checkable for holes: ``repro dash --from-journal``
    warns when journaled health ``seq`` values are non-contiguous
    (records lost, reordered, or snapshotted without journaling).
    """

    seq: int
    queue_depth: int
    staleness_batches: int
    breaker_state: str
    quarantine_count: int
    submitted: int
    applied: int
    shed: int
    coalesced: int
    deferred: int
    restores: int
    queries_served: int
    queries_degraded: int
    admission_policy: str

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)


class ResilientAnalyticsServer:
    """Admission control + circuit breaking around a streaming server.

    Wraps a :class:`~repro.serving.server.StreamingAnalyticsServer`
    (durable or not) and owns the ingest path: callers ``submit``
    batches instead of calling ``ingest`` directly, and ``query``
    passes deadline budgets through.

    ``submit(batch, pump=False)`` models asynchronous arrival -- the
    batch is admitted (validated, logged, queued) without applying, so
    bursts build real queue pressure; ``pump()``/``drain()`` then play
    the main loop.  The default ``pump=True`` applies synchronously,
    which is the ordinary serving posture.
    """

    def __init__(
        self,
        server: StreamingAnalyticsServer,
        queue_capacity: int = 8,
        admission: str = "block",
        breaker: Optional[BreakerConfig] = None,
        max_growth: Optional[int] = None,
        observer=None,
    ) -> None:
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if admission not in ADMISSION_POLICIES:
            raise ValueError(
                f"admission must be one of {ADMISSION_POLICIES}, "
                f"got {admission!r}"
            )
        self.server = server
        self.queue_capacity = queue_capacity
        self.admission = admission
        self.max_growth = max_growth
        self.breaker = CircuitBreaker(breaker)
        # A ServingObserver (or anything with batch_applied /
        # query_served); None keeps the hot path at one `is None`
        # check per batch -- the disabled-overhead posture.
        self.observer = observer
        self._health_seq = 0
        # (wal_seq_or_None, batch, constituent_count)
        self._queue: Deque[Tuple[Optional[int], MutationBatch, int]] = (
            deque()
        )
        self.submitted = 0
        self.applied = 0
        self.shed = 0
        self.coalesced = 0
        self.deferred = 0
        self.rejected = 0
        self._resolved_constituents = 0

    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        manager,
        algorithm_factory,
        *,
        queue_capacity: int = 8,
        admission: str = "block",
        breaker: Optional[BreakerConfig] = None,
        max_growth: Optional[int] = None,
        observer=None,
        **server_kwargs,
    ) -> "ResilientAnalyticsServer":
        """Restart from a state directory.

        WAL records that were queued-but-unapplied at crash time are
        replayed by the manager (they were logged at submit time), so
        the recovered state already reflects the whole admitted stream
        minus durably shed/superseded records -- the admission queue
        restarts empty with nothing lost.
        """
        server = manager.recover(algorithm_factory, **server_kwargs)
        return cls(
            server, queue_capacity=queue_capacity, admission=admission,
            breaker=breaker, max_growth=max_growth, observer=observer,
        )

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, batch: MutationBatch, pump: bool = True) -> None:
        """Admit one batch: validate, WAL-log, queue, relieve pressure.

        Raises ``ValueError`` for malformed batches (out-of-range
        deletion endpoints, growth beyond ``max_growth``) *before*
        anything is logged -- a rejected batch leaves no trace in the
        WAL.
        """
        try:
            batch.validate(self.server.graph.num_vertices,
                           max_growth=self.max_growth)
        except ValueError:
            self.rejected += 1
            get_registry().counter("serving.batches_rejected").inc()
            raise
        recovery = self.server.recovery
        seq = None if recovery is None else recovery.log_batch(batch)
        faults.hit("admission.enqueue")
        self._queue.append((seq, batch, 1))
        self.submitted += 1
        if not self.breaker.allows_apply():
            self.deferred += 1
            self.breaker.note_deferred()
        self._relieve_pressure()
        self._publish_queue_gauges()
        if pump:
            self.pump()

    def _effective_policy(self) -> str:
        if self.breaker.config.enabled and not self.breaker.closed:
            return self.breaker.config.degraded_admission
        return self.admission

    def _relieve_pressure(self) -> None:
        if len(self._queue) <= self.queue_capacity:
            return
        policy = self._effective_policy()
        with trace.span("admission.pressure", policy=policy,
                        depth=len(self._queue)):
            if policy == "block":
                # Backpressure: the submitter pays by applying now.
                while (len(self._queue) > self.queue_capacity
                       and self.breaker.allows_apply()):
                    self._apply_head()
            elif policy == "shed-oldest":
                # The queue head is the designated HALF_OPEN probe
                # batch: shedding it spends the cooldown cycle the
                # breaker just paid for on nothing, and the restore
                # budget (one probe -- at most one restore -- per OPEN
                # period) stops matching reality when a fresher,
                # unvetted batch gets probed in its place.  Preserve
                # the head and shed the oldest non-probe entry instead
                # (over capacity implies at least two entries).
                preserve = 1 if self.breaker.wants_probe() else 0
                while len(self._queue) > self.queue_capacity:
                    self._shed_entry(preserve)
            else:  # coalesce
                self._coalesce_queue()

    def _shed_entry(self, position: int = 0) -> None:
        seq, _, constituents = self._queue[position]
        del self._queue[position]
        if seq is not None:
            self.server.recovery.shed(
                seq, f"queue over capacity {self.queue_capacity}"
            )
        self.shed += constituents
        self._resolved_constituents += constituents
        get_registry().counter("serving.batches_shed").inc(constituents)

    def _coalesce_queue(self) -> None:
        """Fold the whole queue into one equivalent batch.

        Durable servers log the merged batch as a fresh WAL record and
        durably mark every constituent superseded, so crash replay
        applies exactly what the live loop will: the merged record,
        once.
        """
        entries = list(self._queue)
        merged = coalesce_batches([entry[1] for entry in entries])
        constituents = sum(entry[2] for entry in entries)
        recovery = self.server.recovery
        merged_seq = None
        if recovery is not None:
            merged_seq = recovery.log_batch(merged)
            for seq, _, _ in entries:
                if seq is not None:
                    recovery.supersede(seq, merged_seq)
        self._queue.clear()
        self._queue.append((merged_seq, merged, constituents))
        self.coalesced += len(entries) - 1
        get_registry().counter("serving.batches_coalesced").inc(
            len(entries) - 1
        )

    # ------------------------------------------------------------------
    # The pump (the main loop's apply side)
    # ------------------------------------------------------------------
    def pump(self) -> int:
        """Apply queued batches as far as the breaker allows.

        Returns the number of queue entries applied.  CLOSED drains the
        queue; OPEN applies nothing; HALF_OPEN sends exactly one probe
        through the full path and then, on success, keeps draining.
        """
        applied = 0
        while self._queue:
            if self.breaker.wants_probe():
                faults.hit("breaker.probe")
                with trace.span("breaker.probe",
                                depth=len(self._queue)):
                    ok = self._apply_head(probe=True)
                self.breaker.record_probe(ok)
                applied += 1
                if not ok:
                    break
                continue
            if not self.breaker.allows_apply():
                break
            self._apply_head()
            applied += 1
        self._publish_queue_gauges()
        return applied

    def drain(self) -> int:
        """Pump until the queue is empty, probing through OPEN periods.

        For orderly shutdown and tests: repeatedly credits the breaker
        cooldown (as idle submissions would) so deferred batches are
        probed through rather than stranded.
        """
        applied = 0
        while self._queue:
            before = len(self._queue)
            applied += self.pump()
            if self._queue and len(self._queue) == before:
                # OPEN with nothing moving: advance the cooldown.
                self.deferred += 1
                self.breaker.note_deferred()
        self._publish_queue_gauges()
        return applied

    def _apply_head(self, probe: bool = False) -> bool:
        """Apply the queue head; returns False iff it was quarantined."""
        seq, batch, constituents = self._queue.popleft()
        server = self.server
        quarantines_before = server.batches_quarantined
        engine = server.engine
        degraded_window = self.breaker.config.degraded_approx_iterations
        saved_window = engine.num_iterations
        if (probe and degraded_window is not None
                and degraded_window < saved_window):
            engine.num_iterations = degraded_window
        # Mark the span-id sequence before applying so the observer can
        # pick this batch's slowest span as its trace exemplar.
        mark = trace.get_tracer().mark()
        start = time.perf_counter()
        try:
            server.ingest(batch, logged_seq=seq)
        finally:
            # The quarantine path may have replaced the engine object;
            # restore the window on whichever engine is now live.
            if probe and degraded_window is not None:
                server.engine.num_iterations = saved_window
        elapsed = time.perf_counter() - start
        self.applied += 1
        self._resolved_constituents += constituents
        ok = server.batches_quarantined == quarantines_before
        if ok:
            self.breaker.record_latency(elapsed)
            if self.breaker.closed:
                self.breaker.record_success()
        elif not probe:
            self.breaker.record_quarantine()
        if self.observer is not None:
            # After the breaker digests the outcome, so the wide event
            # and SLO samples see the post-apply breaker state.
            self.observer.batch_applied(
                self, batch, elapsed, ok, probe, constituents,
                span_mark=mark,
            )
        return ok

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        until_convergence: Optional[bool] = None,
        deadline_s: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> QueryResult:
        """Branch-loop query with an optional deadline budget.

        Always answers -- even with the breaker OPEN, queries serve
        from the last good state (its staleness is visible in
        :meth:`health`).
        """
        mark = trace.get_tracer().mark()
        result = self.server.query(
            until_convergence=until_convergence,
            deadline_s=deadline_s, deadline=deadline,
        )
        if self.observer is not None:
            self.observer.query_served(
                self, result, deadline_s=deadline_s, span_mark=mark,
            )
        return result

    # ------------------------------------------------------------------
    # Health surface
    # ------------------------------------------------------------------
    def health(self) -> HealthSnapshot:
        recovery = self.server.recovery
        quarantine_count = (
            len(recovery.poison_quarantined()) if recovery is not None
            else self.server.batches_quarantined
        )
        registry = get_registry()
        seq = self._health_seq
        self._health_seq += 1
        snapshot = HealthSnapshot(
            seq=seq,
            queue_depth=len(self._queue),
            staleness_batches=(
                self.submitted - self._resolved_constituents
            ),
            breaker_state=self.breaker.state,
            quarantine_count=quarantine_count,
            submitted=self.submitted,
            applied=self.applied,
            shed=self.shed,
            coalesced=self.coalesced,
            deferred=self.deferred,
            restores=self.server.restores,
            queries_served=self.server.queries_served,
            queries_degraded=self.server.queries_degraded,
            admission_policy=self._effective_policy(),
        )
        registry.gauge("serving.staleness_batches").set(
            snapshot.staleness_batches
        )
        return snapshot

    def record_health(self, journal) -> HealthSnapshot:
        """Append one health snapshot to a JSONL journal."""
        snapshot = self.health()
        # "type" is the discriminator every other journal record uses;
        # "event" stays for readers of pre-dashboard journals.
        journal.write({"type": "health", "event": "health",
                       **asdict(snapshot)})
        return snapshot

    def _publish_queue_gauges(self) -> None:
        get_registry().gauge("serving.queue_depth").set(len(self._queue))

    # ------------------------------------------------------------------
    def stable_seq(self) -> int:
        """First WAL sequence whose fate is still *undecided*.

        Every record below this boundary is resolved -- applied, shed,
        or superseded -- so it is safe to ship to a read replica.  A
        queued record is not: shed-oldest could still durably skip it,
        and a replica that had already applied it would fork.  The
        queue is FIFO in sequence order, so the boundary is the first
        queued entry's sequence (or the WAL head when the queue is
        empty).
        """
        for seq, _, _ in self._queue:
            if seq is not None:
                return seq
        recovery = self.server.recovery
        return recovery.wal.next_seq if recovery is not None else (
            self.applied
        )

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def approximate_values(self):
        return self.server.approximate_values

    def __repr__(self) -> str:
        return (
            f"ResilientAnalyticsServer(admission={self.admission}, "
            f"capacity={self.queue_capacity}, "
            f"breaker={self.breaker.state}, "
            f"queued={len(self._queue)}, submitted={self.submitted})"
        )
