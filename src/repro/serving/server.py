"""The main-loop / branch-loop analytics server.

Architecture (after Tornado, adapted to GraphBolt's state):

- **Main loop** -- a :class:`~repro.core.engine.GraphBoltEngine`
  configured with a short iteration window (``approx_iterations``).
  Every ingested batch is processed with dependency-driven refinement,
  so the maintained state is *exactly* the BSP result of the short
  window on the latest snapshot -- an approximation only in the sense
  that the window is short.
- **Branch loop** -- a query copies the main loop's rolling
  :class:`~repro.ligra.delta.DeltaState` and drives it forward with the
  delta engine, either to a longer fixed window or until convergence.
  The copy means ingestion state is untouched; because BSP iterations
  are a pure function of state + graph, the branch result equals a
  from-scratch run of the same depth on the current snapshot.

The branch runs against the snapshot current at query time; batches
ingested afterwards do not retroactively change an answered query
(the buffering semantics of paper section 4.1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.engine import GraphBoltEngine
from repro.core.hybrid import hybrid_forward
from repro.core.model import IncrementalAlgorithm
from repro.graph.csr import CSRGraph
from repro.graph.mutation import MutationBatch
from repro.ligra.delta import DeltaEngine
from repro.obs import trace
from repro.obs.registry import get_registry
from repro.runtime.metrics import EngineMetrics

__all__ = ["QueryResult", "StreamingAnalyticsServer"]


@dataclass
class QueryResult:
    """An exact answer computed by a branch loop."""

    values: np.ndarray
    iterations: int
    seconds: float
    batches_ingested: int
    edge_computations: int


class StreamingAnalyticsServer:
    """Serve approximate results continuously, exact results on demand."""

    def __init__(
        self,
        algorithm_factory: Callable[[], IncrementalAlgorithm],
        graph: CSRGraph,
        approx_iterations: int = 3,
        exact_iterations: Optional[int] = None,
        until_convergence: bool = False,
        max_iterations: int = 1000,
    ) -> None:
        if approx_iterations < 1:
            raise ValueError("the main loop needs at least one iteration")
        algorithm = algorithm_factory()
        if exact_iterations is None:
            exact_iterations = algorithm.default_iterations
        if not until_convergence and exact_iterations < approx_iterations:
            raise ValueError(
                "exact window must extend the approximate window"
            )
        self.algorithm_factory = algorithm_factory
        self.approx_iterations = approx_iterations
        self.exact_iterations = exact_iterations
        self.until_convergence = until_convergence
        self.max_iterations = max_iterations
        self.engine = GraphBoltEngine(
            algorithm, num_iterations=approx_iterations
        )
        self.engine.run(graph)
        self.batches_ingested = 0
        self.queries_served = 0

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    @property
    def graph(self) -> CSRGraph:
        return self.engine.graph

    @property
    def approximate_values(self) -> np.ndarray:
        """The continuously maintained short-window results."""
        return self.engine.values

    def ingest(self, batch: MutationBatch) -> np.ndarray:
        """Apply one mutation batch in the main loop."""
        start = time.perf_counter()
        with trace.span("ingest", loop="main",
                        index=self.batches_ingested,
                        mutations=len(batch)):
            values = self.engine.apply_mutations(batch)
        self.batches_ingested += 1
        registry = get_registry()
        registry.histogram("serving.ingest_seconds").observe(
            time.perf_counter() - start
        )
        registry.gauge("serving.batches_ingested").set(
            self.batches_ingested
        )
        return values

    # ------------------------------------------------------------------
    # Branch loop
    # ------------------------------------------------------------------
    def query(self, until_convergence: Optional[bool] = None) -> QueryResult:
        """Branch the current state forward to an exact answer.

        Does not perturb the main loop: the rolling state is copied and
        iterated by a detached delta engine.
        """
        if until_convergence is None:
            until_convergence = self.until_convergence
        start = time.perf_counter()
        metrics = EngineMetrics()
        branch_engine = DeltaEngine(self.algorithm_factory(), metrics)
        state = self.engine._state.copy()
        with trace.span("query", loop="branch",
                        index=self.queries_served) as span:
            hybrid_forward(
                branch_engine, self.engine.graph, state,
                total_iterations=self.exact_iterations,
                until_convergence=until_convergence,
                max_iterations=self.max_iterations,
            )
            span.tag(iterations=state.iteration)
        self.queries_served += 1
        get_registry().histogram("serving.query_seconds").observe(
            time.perf_counter() - start
        )
        return QueryResult(
            values=state.values,
            iterations=state.iteration,
            seconds=time.perf_counter() - start,
            batches_ingested=self.batches_ingested,
            edge_computations=metrics.edge_computations,
        )

    def __repr__(self) -> str:
        return (
            f"StreamingAnalyticsServer(algorithm="
            f"{self.engine.algorithm.name}, "
            f"approx={self.approx_iterations}, "
            f"exact={self.exact_iterations}, "
            f"ingested={self.batches_ingested}, "
            f"queries={self.queries_served})"
        )
