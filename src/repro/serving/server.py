"""The main-loop / branch-loop analytics server.

Architecture (after Tornado, adapted to GraphBolt's state):

- **Main loop** -- a :class:`~repro.core.engine.GraphBoltEngine`
  configured with a short iteration window (``approx_iterations``).
  Every ingested batch is processed with dependency-driven refinement,
  so the maintained state is *exactly* the BSP result of the short
  window on the latest snapshot -- an approximation only in the sense
  that the window is short.
- **Branch loop** -- a query copies the main loop's rolling
  :class:`~repro.ligra.delta.DeltaState` and drives it forward with the
  delta engine, either to a longer fixed window or until convergence.
  The copy means ingestion state is untouched; because BSP iterations
  are a pure function of state + graph, the branch result equals a
  from-scratch run of the same depth on the current snapshot.

The branch runs against the snapshot current at query time; batches
ingested afterwards do not retroactively change an answered query
(the buffering semantics of paper section 4.1).

Fault tolerance (see ``docs/operations.md``): pass a
:class:`~repro.recovery.manager.RecoveryManager` as ``recovery`` and the
server becomes durable and self-healing -- every batch is write-ahead
logged before it is applied, checkpoints are taken on the manager's
cadence, and a *poison batch* (one whose refinement raises or produces
NaNs) is quarantined: the engine is rolled back from the last checkpoint
plus WAL replay, the batch is durably skipped, and the loop keeps
serving (``serving.batches_quarantined`` counts them).  Without a
manager the server behaves exactly as before: a failing batch
propagates to the caller.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.engine import GraphBoltEngine
from repro.core.hybrid import hybrid_forward
from repro.core.model import IncrementalAlgorithm
from repro.graph.csr import CSRGraph
from repro.graph.mutation import MutationBatch
from repro.ligra.delta import DeltaEngine
from repro.obs import trace
from repro.obs.registry import get_registry
from repro.runtime.deadline import Deadline, WallClockDeadline
from repro.runtime.metrics import EngineMetrics
from repro.testing import faults
from repro.testing.faults import InjectedCrash

__all__ = ["QueryResult", "StreamingAnalyticsServer"]


@dataclass
class QueryResult:
    """An answer computed by a branch loop.

    ``degraded`` is set iff a deadline fired before the requested window
    completed; the values are then still an *exact* BSP state -- the
    same bits a from-scratch run truncated at ``iterations_completed``
    would produce -- just a shallower one, with ``residual_l1``
    reporting how much the last iteration still moved the values.
    """

    values: np.ndarray
    iterations: int
    seconds: float
    batches_ingested: int
    edge_computations: int
    degraded: bool = False
    iterations_completed: int = 0
    residual_l1: float = 0.0


class StreamingAnalyticsServer:
    """Serve approximate results continuously, exact results on demand."""

    def __init__(
        self,
        algorithm_factory: Callable[[], IncrementalAlgorithm],
        graph: CSRGraph,
        approx_iterations: int = 3,
        exact_iterations: Optional[int] = None,
        until_convergence: bool = False,
        max_iterations: int = 1000,
        recovery=None,
        backend=None,
    ) -> None:
        algorithm = algorithm_factory()
        self._configure(
            algorithm_factory, algorithm,
            approx_iterations=approx_iterations,
            exact_iterations=exact_iterations,
            until_convergence=until_convergence,
            max_iterations=max_iterations,
        )
        self.engine = GraphBoltEngine(
            algorithm, num_iterations=approx_iterations, backend=backend
        )
        self.engine.run(graph)
        self.batches_ingested = 0
        self.queries_served = 0
        self.queries_degraded = 0
        self.batches_quarantined = 0
        self.restores = 0
        self.last_ingest_seconds = 0.0
        self.last_query_seconds = 0.0
        self.recovery = recovery
        if recovery is not None:
            # Generation zero: the WAL holds mutations, not the initial
            # graph, so recovery always needs a base checkpoint.
            recovery.ensure_initial_checkpoint(self.engine)

    def _configure(self, algorithm_factory, algorithm, *,
                   approx_iterations, exact_iterations,
                   until_convergence, max_iterations) -> None:
        if approx_iterations < 1:
            raise ValueError("the main loop needs at least one iteration")
        if exact_iterations is None:
            exact_iterations = algorithm.default_iterations
        if not until_convergence and exact_iterations < approx_iterations:
            raise ValueError(
                "exact window must extend the approximate window"
            )
        self.algorithm_factory = algorithm_factory
        self.approx_iterations = approx_iterations
        self.exact_iterations = exact_iterations
        self.until_convergence = until_convergence
        self.max_iterations = max_iterations

    @classmethod
    def from_engine(
        cls,
        engine: GraphBoltEngine,
        algorithm_factory: Callable[[], IncrementalAlgorithm],
        *,
        exact_iterations: Optional[int] = None,
        until_convergence: bool = False,
        max_iterations: int = 1000,
        batches_ingested: int = 0,
        recovery=None,
    ) -> "StreamingAnalyticsServer":
        """Wrap an already-run engine (a recovered checkpoint) without
        re-running the initial snapshot."""
        engine._require_run()
        server = cls.__new__(cls)
        server._configure(
            algorithm_factory, engine.algorithm,
            approx_iterations=engine.num_iterations,
            exact_iterations=exact_iterations,
            until_convergence=until_convergence,
            max_iterations=max_iterations,
        )
        server.engine = engine
        server.batches_ingested = batches_ingested
        server.queries_served = 0
        server.queries_degraded = 0
        server.batches_quarantined = 0
        server.restores = 0
        server.last_ingest_seconds = 0.0
        server.last_query_seconds = 0.0
        server.recovery = recovery
        return server

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    @property
    def graph(self) -> CSRGraph:
        return self.engine.graph

    @property
    def approximate_values(self) -> np.ndarray:
        """The continuously maintained short-window results."""
        return self.engine.values

    def ingest(self, batch: MutationBatch,
               logged_seq: Optional[int] = None) -> np.ndarray:
        """Apply one mutation batch in the main loop.

        With a recovery manager attached the batch is WAL-logged first
        and a poison batch is quarantined instead of raising; without
        one, failures propagate to the caller unchanged.

        ``logged_seq`` marks a batch the caller already WAL-logged (the
        admission controller logs at submit time, before queueing, so
        queued batches survive a crash); pass its sequence number to
        skip the duplicate append.
        """
        start = time.perf_counter()
        registry = get_registry()
        with trace.span("ingest", loop="main",
                        index=self.batches_ingested,
                        mutations=len(batch)):
            if self.recovery is None:
                faults.hit("engine.refine")
                values = self.engine.apply_mutations(batch)
            else:
                values = self._ingest_durable(batch, logged_seq)
        self.batches_ingested += 1
        if self.recovery is not None:
            self.recovery.maybe_checkpoint(self.engine,
                                           self.batches_ingested)
        self.last_ingest_seconds = time.perf_counter() - start
        registry.histogram("serving.ingest_seconds").observe(
            self.last_ingest_seconds
        )
        registry.gauge("serving.batches_ingested").set(
            self.batches_ingested
        )
        return values

    def _ingest_durable(self, batch: MutationBatch,
                        logged_seq: Optional[int] = None) -> np.ndarray:
        """Write-ahead, apply, and quarantine-on-poison."""
        if logged_seq is None:
            seq = self.recovery.log_batch(batch)
        else:
            seq = logged_seq
        poison: Optional[str] = None
        values: Optional[np.ndarray] = None
        try:
            faults.hit("engine.refine")
            values = self.engine.apply_mutations(batch)
        except InjectedCrash:
            raise
        except Exception as exc:  # noqa: BLE001 -- quarantined below
            poison = f"{type(exc).__name__}: {exc}"
        if poison is None:
            poison = self.recovery.poison_check(values)
        if poison is None:
            return values
        return self._quarantine(seq, poison)

    def _quarantine(self, seq: int, reason: str) -> np.ndarray:
        """Roll the engine back from checkpoint + WAL, skipping ``seq``.

        ``apply_mutations`` may have mutated the graph structure before
        failing, so the in-memory engine is untrusted; the durable state
        (which never applied the batch's *effects*, only logged it) is
        the rollback source.
        """
        self.recovery.quarantine(seq, reason)
        with trace.span("quarantine", seq=seq, reason=reason):
            engine, _ = self.recovery.restore_engine(
                self.algorithm_factory
            )
        self.engine = engine
        self.batches_quarantined += 1
        self.restores += 1
        registry = get_registry()
        registry.counter("serving.batches_quarantined").inc()
        registry.counter("serving.restores").inc()
        return self.engine.values

    # ------------------------------------------------------------------
    # Branch loop
    # ------------------------------------------------------------------
    def query(
        self,
        until_convergence: Optional[bool] = None,
        deadline_s: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> QueryResult:
        """Branch the current state forward to an exact answer.

        Does not perturb the main loop: the rolling state is copied and
        iterated by a detached delta engine.

        ``deadline_s`` bounds the branch to a wall-clock budget (or pass
        any :class:`~repro.runtime.deadline.Deadline` as ``deadline``
        for deterministic budgets in tests).  On expiry the best-so-far
        state is returned with ``degraded=True`` -- never an exception:
        a deadline query always produces a usable BSP state, identical
        to a from-scratch run truncated at ``iterations_completed``.
        """
        if until_convergence is None:
            until_convergence = self.until_convergence
        if deadline is None and deadline_s is not None:
            deadline = WallClockDeadline(deadline_s)
        if deadline is not None:
            faults.hit("query.deadline")
        start = time.perf_counter()
        metrics = EngineMetrics()
        branch_engine = DeltaEngine(self.algorithm_factory(), metrics,
                                    backend=self.engine.backend)
        state = self.engine._state.copy()
        with trace.span("query", loop="branch",
                        index=self.queries_served) as span:
            hybrid_forward(
                branch_engine, self.engine.graph, state,
                total_iterations=self.exact_iterations,
                until_convergence=until_convergence,
                max_iterations=self.max_iterations,
                deadline=deadline,
            )
            # The window is incomplete iff iterations remain *and* the
            # frontier is non-empty -- an early fixpoint means further
            # iterations are identity, so the state already equals the
            # full-window answer and is not degraded.
            if until_convergence:
                target = self.max_iterations
            else:
                target = self.exact_iterations
            degraded = bool(
                state.iteration < target and state.frontier.size > 0
            )
            span.tag(iterations=state.iteration, degraded=degraded)
        self.queries_served += 1
        # One measurement: the recorded histogram and the reported
        # latency must agree.
        seconds = time.perf_counter() - start
        self.last_query_seconds = seconds
        registry = get_registry()
        registry.histogram("serving.query_seconds").observe(seconds)
        if degraded:
            self.queries_degraded += 1
            registry.counter("serving.queries_degraded").inc()
        return QueryResult(
            values=state.values,
            iterations=state.iteration,
            seconds=seconds,
            batches_ingested=self.batches_ingested,
            edge_computations=metrics.edge_computations,
            degraded=degraded,
            iterations_completed=state.iteration,
            residual_l1=state.residual_l1(),
        )

    def __repr__(self) -> str:
        return (
            f"StreamingAnalyticsServer(algorithm="
            f"{self.engine.algorithm.name}, "
            f"approx={self.approx_iterations}, "
            f"exact={self.exact_iterations}, "
            f"ingested={self.batches_ingested}, "
            f"queries={self.queries_served})"
        )
