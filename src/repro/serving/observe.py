"""Glue between the serving loop and the observability layer.

:class:`ServingObserver` is the single attachment point: hand one to
:class:`~repro.serving.resilience.ResilientAnalyticsServer` and every
applied batch and served query produces

- one **wide event** through a
  :class:`~repro.obs.events.WideEventEmitter` (all dimensions of the
  unit of work, plus the trace exemplar -- the id of the slowest span
  recorded while it ran, when tracing is on), and
- one **SLO tick** through an
  :class:`~repro.obs.slo.SLOEvaluator` (batches only: queries fold
  their latency into the *next* batch tick, so the tick index is
  exactly the applied-batch index and alert indices are pinnable).

With no observer attached (the default) the serving hot path pays one
``is None`` check per batch -- the same zero-cost-when-off posture as
the tracer, which keeps the PR-2 disabled-overhead bound intact.

:class:`PlantedLatency` is the deterministic fault for alerting tests
and the CI smoke job: from a given batch index onward the
``ingest_latency`` *sample* fed to the SLO evaluator is replaced with
a fixed value.  Planting at the sample level (rather than actually
sleeping) keeps the run fast and the firing batch index an exact
number, while exercising the entire alert path -- evaluation, journal,
registry gauges, sinks, dashboard replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.obs import trace
from repro.obs.events import WideEventEmitter
from repro.obs.registry import sample_peak_rss
from repro.obs.slo import Alert, SLOEvaluator

__all__ = ["PlantedLatency", "ServingObserver"]


@dataclass(frozen=True)
class PlantedLatency:
    """Replace the ingest-latency sample from one batch index onward."""

    from_index: int
    seconds: float

    @classmethod
    def parse(cls, spec: str) -> "PlantedLatency":
        """Parse the CLI form ``<index>:<seconds>`` (e.g. ``10:9.9``)."""
        index_text, sep, seconds_text = spec.partition(":")
        if not sep:
            raise ValueError(
                f"plant-latency spec {spec!r} must be <index>:<seconds>"
            )
        return cls(from_index=int(index_text),
                   seconds=float(seconds_text))


class ServingObserver:
    """Emit wide events and tick SLOs for one resilient server.

    ``deterministic=True`` drops wall-clock signals
    (``ingest_latency`` / ``query_latency``) from the SLO samples --
    the experiment matrix uses it so the ``BENCH_*`` payload's SLO
    column is a pure function of the run config, matching the
    count-based-breaker convention of serving-mode runs.
    """

    def __init__(
        self,
        evaluator: Optional[SLOEvaluator] = None,
        emitter: Optional[WideEventEmitter] = None,
        planted_latency: Optional[PlantedLatency] = None,
        deterministic: bool = False,
        staleness_probe: Optional[Callable[[], float]] = None,
    ) -> None:
        self.evaluator = evaluator
        self.emitter = emitter
        self.planted_latency = planted_latency
        self.deterministic = deterministic
        # When serving replicated, a callable returning the worst
        # replica backlog of shipped-but-unapplied WAL records
        # (ReplicationCluster.staleness); feeds the
        # ``replica_staleness`` SLO signal.  Count-based, so it stays
        # in deterministic-mode samples.
        self.staleness_probe = staleness_probe
        self.batches_observed = 0
        self.queries_observed = 0
        self._last_query_seconds: Optional[float] = None

    # ------------------------------------------------------------------
    def _samples(self, resilient, ingest_seconds: float) -> Dict[str, float]:
        server = resilient.server
        health_like = {
            "queue_depth": float(resilient.queue_depth),
            "staleness_batches": float(
                resilient.submitted - resilient._resolved_constituents
            ),
            "quarantine_count": float(server.batches_quarantined),
            "breaker_open": 0.0 if resilient.breaker.closed else 1.0,
            "degraded_query_ratio": (
                server.queries_degraded / server.queries_served
                if server.queries_served else 0.0
            ),
        }
        if self.staleness_probe is not None:
            health_like["replica_staleness"] = float(
                self.staleness_probe()
            )
        if not self.deterministic:
            health_like["ingest_latency"] = ingest_seconds
            if self._last_query_seconds is not None:
                health_like["query_latency"] = self._last_query_seconds
        return health_like

    def _exemplar(self, span_mark: Optional[int]) -> Optional[int]:
        if span_mark is None or not trace.enabled():
            return None
        slowest = trace.get_tracer().slowest_since(span_mark)
        return None if slowest is None else slowest["id"]

    # ------------------------------------------------------------------
    def batch_applied(
        self,
        resilient,
        batch,
        seconds: float,
        ok: bool,
        probe: bool,
        constituents: int,
        span_mark: Optional[int] = None,
    ) -> List[Alert]:
        """One applied batch: wide event + SLO tick.

        ``seconds`` is the admission layer's measured apply time;
        the sample fed to the evaluator is the engine's own
        ``last_ingest_seconds`` (or the planted value), so SLOs see
        engine latency, not queue bookkeeping.
        """
        index = self.batches_observed
        self.batches_observed += 1
        ingest_seconds = resilient.server.last_ingest_seconds
        planted = self.planted_latency
        if planted is not None and index >= planted.from_index:
            ingest_seconds = planted.seconds
        samples = self._samples(resilient, ingest_seconds)
        # Memory is a wide-event dimension, not an SLO sample: the RSS
        # high-water mark is environment-dependent, and deterministic
        # mode promises samples that are a pure function of the config.
        peak_rss = sample_peak_rss()
        alerts: List[Alert] = []
        if self.evaluator is not None:
            alerts = self.evaluator.tick(samples, index=index)
        if self.emitter is not None:
            server = resilient.server
            self.emitter.emit(
                "batch",
                index=index,
                peak_rss_bytes=peak_rss,
                engine="graphbolt",
                backend=server.engine.backend.name,
                mutations=len(batch),
                additions=batch.num_additions,
                deletions=batch.num_deletions,
                constituents=constituents,
                probe=probe,
                ok=ok,
                seconds=round(seconds, 6),
                ingest_seconds=round(ingest_seconds, 6),
                queue_depth=resilient.queue_depth,
                breaker_state=resilient.breaker.state,
                admission_policy=resilient._effective_policy(),
                staleness_batches=int(samples["staleness_batches"]),
                quarantined=not ok,
                shard_imbalance=self._shard_imbalance(server),
                samples={key: round(value, 6)
                         for key, value in samples.items()},
                alerts=[alert.slo for alert in alerts
                        if alert.state == "firing"],
                trace_on=trace.enabled(),
                exemplar_span=self._exemplar(span_mark),
            )
        return alerts

    def query_served(
        self,
        resilient,
        result,
        deadline_s: Optional[float] = None,
        span_mark: Optional[int] = None,
    ) -> None:
        """One served query: wide event; latency folds into the next
        batch tick (queries never advance the SLO tick index)."""
        index = self.queries_observed
        self.queries_observed += 1
        self._last_query_seconds = result.seconds
        if self.emitter is None:
            return
        server = resilient.server
        self.emitter.emit(
            "query",
            index=index,
            engine="graphbolt",
            backend=server.engine.backend.name,
            seconds=round(result.seconds, 6),
            iterations=result.iterations_completed,
            degraded=result.degraded,
            residual_l1=round(result.residual_l1, 9),
            deadline_budget=deadline_s,
            batches_ingested=result.batches_ingested,
            queue_depth=resilient.queue_depth,
            breaker_state=resilient.breaker.state,
            trace_on=trace.enabled(),
            exemplar_span=self._exemplar(span_mark),
        )

    @staticmethod
    def _shard_imbalance(server) -> float:
        from repro.runtime.exec import load_imbalance

        loads = getattr(server.engine.metrics, "shard_loads", None)
        if not loads:
            return 1.0
        return round(load_imbalance(loads), 6)
