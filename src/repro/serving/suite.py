"""Multiple analyses over one shared streaming graph.

Production streaming deployments rarely run a single metric: the same
interaction graph feeds ranking, labelling, anomaly counters, and so
on.  Running one :class:`~repro.core.engine.GraphBoltEngine` per
analysis naively would adjust the graph structure once *per engine* per
batch; :class:`AnalyticsSuite` owns the structure, adjusts it exactly
once, and feeds every engine the same
:class:`~repro.graph.mutable.MutationResult` through
:meth:`~repro.core.engine.GraphBoltEngine.apply_mutation_result`.

Triangle counting (not an iterative vertex program) can be attached
alongside the vertex analyses via ``include_triangles=True``.

Durability: pass a :class:`SuiteRecovery` (one
:class:`~repro.recovery.manager.RecoveryManager` per analysis under a
shared root) and every batch is WAL-logged before the structure moves;
a batch that poisons *any* engine is quarantined across the whole
suite -- every engine rolls back to its checkpoint + WAL tail and the
restored engines are re-attached to one shared structure -- so the
analyses never drift onto different snapshots.  The per-analysis WALs
advance in lockstep (same batch, same sequence number everywhere),
which is what makes the cross-engine quarantine a single seq mark.

Execution backends (``repro.runtime.exec``) thread through unchanged:
``backend=`` is applied to every engine in the bundle.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Mapping, Optional

import numpy as np

from repro.algorithms.triangle_counting import (
    TriangleCounts,
    triangle_counts,
)
from repro.core.engine import GraphBoltEngine
from repro.core.model import IncrementalAlgorithm
from repro.graph.csr import CSRGraph
from repro.graph.mutable import StreamingGraph
from repro.graph.mutation import MutationBatch
from repro.obs import trace
from repro.obs.registry import get_registry
from repro.recovery.manager import RecoveryManager
from repro.testing.faults import InjectedCrash

__all__ = ["AnalyticsSuite", "SuiteRecovery"]


class SuiteRecovery:
    """One recovery manager per analysis, under a shared root directory.

    Laid out as ``root/<analysis-name>/{wal,checkpoints,...}`` so each
    manager keeps its own checkpoints (engine states differ per
    algorithm) while the suite coordinates sequence numbers and
    quarantine across all of them.
    """

    def __init__(self, root: str, **manager_kwargs) -> None:
        self.root = root
        self._manager_kwargs = manager_kwargs
        self.managers: Dict[str, RecoveryManager] = {}

    def manager(self, name: str) -> RecoveryManager:
        if name not in self.managers:
            directory = os.path.join(self.root, name)
            os.makedirs(directory, exist_ok=True)
            self.managers[name] = RecoveryManager(
                directory, **self._manager_kwargs
            )
        return self.managers[name]

    def close(self) -> None:
        for manager in self.managers.values():
            manager.close()

    def __repr__(self) -> str:
        return (
            f"SuiteRecovery(root={self.root!r}, "
            f"analyses={sorted(self.managers)})"
        )


class AnalyticsSuite:
    """A bundle of GraphBolt engines sharing one streaming structure."""

    def __init__(
        self,
        graph: CSRGraph,
        analyses: Mapping[str, Callable[[], IncrementalAlgorithm]],
        num_iterations: Optional[int] = None,
        include_triangles: bool = False,
        backend=None,
        recovery: Optional[SuiteRecovery] = None,
        **engine_kwargs,
    ) -> None:
        if not analyses and not include_triangles:
            raise ValueError("the suite needs at least one analysis")
        if recovery is not None and include_triangles:
            raise ValueError(
                "durable suites cannot include triangle counts yet: "
                "they are maintained incrementally outside the "
                "checkpointed engine state, so a rollback would desync "
                "them"
            )
        self._streaming = StreamingGraph(graph)
        self._factories: Dict[str, Callable[[], IncrementalAlgorithm]] = (
            dict(analyses)
        )
        self.recovery = recovery
        self.engines: Dict[str, GraphBoltEngine] = {}
        for name, factory in analyses.items():
            engine = GraphBoltEngine(
                factory(), num_iterations=num_iterations,
                backend=backend, **engine_kwargs
            )
            engine.run(streaming=self._streaming)
            self.engines[name] = engine
            if recovery is not None:
                recovery.manager(name).ensure_initial_checkpoint(engine)
        self._triangles: Optional[TriangleCounts] = None
        if include_triangles:
            self._triangles = triangle_counts(graph)
        self.batches_applied = 0
        self.batches_quarantined = 0

    # ------------------------------------------------------------------
    @property
    def graph(self) -> CSRGraph:
        return self._streaming.graph

    @property
    def names(self):
        return list(self.engines)

    def values(self, name: str) -> np.ndarray:
        return self.engines[name].values

    @property
    def triangle_counts(self) -> Optional[TriangleCounts]:
        return self._triangles

    # ------------------------------------------------------------------
    def apply(self, batch: MutationBatch) -> Dict[str, np.ndarray]:
        """Adjust the structure once; refine every analysis.

        With a :class:`SuiteRecovery` attached the batch is WAL-logged
        to every analysis before anything moves, and a batch that
        poisons any engine rolls the *whole suite* back (see the module
        docstring); without one, failures propagate unchanged.
        """
        if self.recovery is None:
            mutation = self._streaming.apply_batch(batch)
            results = {
                name: engine.apply_mutation_result(mutation)
                for name, engine in self.engines.items()
            }
            if self._triangles is not None:
                self._update_triangles(mutation)
            self.batches_applied += 1
            return results
        return self._apply_durable(batch)

    def _apply_durable(self, batch: MutationBatch) -> Dict[str, np.ndarray]:
        seq: Optional[int] = None
        for name in self.engines:
            # Lockstep WALs: every manager assigns the same seq.
            seq = self.recovery.manager(name).log_batch(batch)
        poison: Optional[str] = None
        results: Dict[str, np.ndarray] = {}
        try:
            mutation = self._streaming.apply_batch(batch)
        except InjectedCrash:
            raise
        except Exception as exc:  # noqa: BLE001 -- quarantined below
            poison = f"structure: {type(exc).__name__}: {exc}"
        if poison is None:
            for name, engine in self.engines.items():
                manager = self.recovery.manager(name)
                try:
                    values = engine.apply_mutation_result(mutation)
                except InjectedCrash:
                    raise
                except Exception as exc:  # noqa: BLE001
                    poison = f"{name}: {type(exc).__name__}: {exc}"
                    break
                reason = manager.poison_check(values)
                if reason is not None:
                    poison = f"{name}: {reason}"
                    break
                results[name] = values
        self.batches_applied += 1
        if poison is None:
            for name, engine in self.engines.items():
                self.recovery.manager(name).maybe_checkpoint(
                    engine, self.batches_applied
                )
            return results
        return self._quarantine(seq, poison)

    def _quarantine(self, seq: int, reason: str) -> Dict[str, np.ndarray]:
        """Quarantine ``seq`` in every analysis and roll all back.

        A poison batch may have refined *some* engines before failing
        in another; partial application would leave the analyses on
        different effective snapshots, so the rollback is suite-wide
        even for the engines that succeeded.
        """
        with trace.span("suite.quarantine", seq=seq, reason=reason):
            for name in self.engines:
                self.recovery.manager(name).quarantine(seq, reason)
            self._restore_all()
        self.batches_quarantined += 1
        get_registry().counter("suite.batches_quarantined").inc()
        return {
            name: engine.values for name, engine in self.engines.items()
        }

    def _restore_all(self) -> None:
        shared: Optional[StreamingGraph] = None
        for name in list(self.engines):
            manager = self.recovery.manager(name)
            engine, _ = manager.restore_engine(self._factories[name])
            if shared is None:
                # All restored graphs are bit-identical (same WAL, same
                # skip set); adopt the first as the shared structure.
                shared = engine._streaming
            else:
                engine._streaming = shared
            self.engines[name] = engine
        self._streaming = shared

    def _update_triangles(self, mutation) -> None:
        from repro.algorithms.triangle_counting import (
            _triangles_through_edges,
        )

        counts = self._triangles
        new_graph = mutation.new_graph
        if new_graph.num_vertices > counts.per_vertex.size:
            grown = np.zeros(new_graph.num_vertices, dtype=np.int64)
            grown[: counts.per_vertex.size] = counts.per_vertex
            counts.per_vertex = grown
        created = _triangles_through_edges(
            new_graph, mutation.add_src, mutation.add_dst, None
        )
        destroyed = _triangles_through_edges(
            mutation.old_graph, mutation.del_src, mutation.del_dst, None
        )
        for triangle in created:
            for vertex in triangle:
                counts.per_vertex[vertex] += 1
        for triangle in destroyed:
            for vertex in triangle:
                counts.per_vertex[vertex] -= 1
        counts.total += len(created) - len(destroyed)

    def __repr__(self) -> str:
        return (
            f"AnalyticsSuite(analyses={sorted(self.engines)}, "
            f"triangles={self._triangles is not None}, "
            f"batches={self.batches_applied})"
        )
