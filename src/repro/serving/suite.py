"""Multiple analyses over one shared streaming graph.

Production streaming deployments rarely run a single metric: the same
interaction graph feeds ranking, labelling, anomaly counters, and so
on.  Running one :class:`~repro.core.engine.GraphBoltEngine` per
analysis naively would adjust the graph structure once *per engine* per
batch; :class:`AnalyticsSuite` owns the structure, adjusts it exactly
once, and feeds every engine the same
:class:`~repro.graph.mutable.MutationResult` through
:meth:`~repro.core.engine.GraphBoltEngine.apply_mutation_result`.

Triangle counting (not an iterative vertex program) can be attached
alongside the vertex analyses via ``include_triangles=True``.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

import numpy as np

from repro.algorithms.triangle_counting import (
    TriangleCounts,
    triangle_counts,
)
from repro.core.engine import GraphBoltEngine
from repro.core.model import IncrementalAlgorithm
from repro.graph.csr import CSRGraph
from repro.graph.mutable import StreamingGraph
from repro.graph.mutation import MutationBatch

__all__ = ["AnalyticsSuite"]


class AnalyticsSuite:
    """A bundle of GraphBolt engines sharing one streaming structure."""

    def __init__(
        self,
        graph: CSRGraph,
        analyses: Mapping[str, Callable[[], IncrementalAlgorithm]],
        num_iterations: Optional[int] = None,
        include_triangles: bool = False,
        **engine_kwargs,
    ) -> None:
        if not analyses and not include_triangles:
            raise ValueError("the suite needs at least one analysis")
        self._streaming = StreamingGraph(graph)
        self.engines: Dict[str, GraphBoltEngine] = {}
        for name, factory in analyses.items():
            engine = GraphBoltEngine(
                factory(), num_iterations=num_iterations, **engine_kwargs
            )
            engine.run(streaming=self._streaming)
            self.engines[name] = engine
        self._triangles: Optional[TriangleCounts] = None
        if include_triangles:
            self._triangles = triangle_counts(graph)
        self.batches_applied = 0

    # ------------------------------------------------------------------
    @property
    def graph(self) -> CSRGraph:
        return self._streaming.graph

    @property
    def names(self):
        return list(self.engines)

    def values(self, name: str) -> np.ndarray:
        return self.engines[name].values

    @property
    def triangle_counts(self) -> Optional[TriangleCounts]:
        return self._triangles

    # ------------------------------------------------------------------
    def apply(self, batch: MutationBatch) -> Dict[str, np.ndarray]:
        """Adjust the structure once; refine every analysis."""
        mutation = self._streaming.apply_batch(batch)
        results = {
            name: engine.apply_mutation_result(mutation)
            for name, engine in self.engines.items()
        }
        if self._triangles is not None:
            self._update_triangles(mutation)
        self.batches_applied += 1
        return results

    def _update_triangles(self, mutation) -> None:
        from repro.algorithms.triangle_counting import (
            _triangles_through_edges,
        )

        counts = self._triangles
        new_graph = mutation.new_graph
        if new_graph.num_vertices > counts.per_vertex.size:
            grown = np.zeros(new_graph.num_vertices, dtype=np.int64)
            grown[: counts.per_vertex.size] = counts.per_vertex
            counts.per_vertex = grown
        created = _triangles_through_edges(
            new_graph, mutation.add_src, mutation.add_dst, None
        )
        destroyed = _triangles_through_edges(
            mutation.old_graph, mutation.del_src, mutation.del_dst, None
        )
        for triangle in created:
            for vertex in triangle:
                counts.per_vertex[vertex] += 1
        for triangle in destroyed:
            for vertex in triangle:
                counts.per_vertex[vertex] -= 1
        counts.total += len(created) - len(destroyed)

    def __repr__(self) -> str:
        return (
            f"AnalyticsSuite(analyses={sorted(self.engines)}, "
            f"triangles={self._triangles is not None}, "
            f"batches={self.batches_applied})"
        )
