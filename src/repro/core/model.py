"""The generalized incremental programming model.

An :class:`IncrementalAlgorithm` expresses a synchronous vertex program
in the decomposed form GraphBolt needs (paper sections 3.2-3.3)::

    g_i(v) = (+)_{(u,v) in E}  contribution( c_{i-1}(u), u, v, weight )
    c_i(v) = apply( g_i(v) )                      # optionally also c_{i-1}(v)

From these two hooks plus the aggregation operator the engines derive:

- the full synchronous execution (Ligra baseline),
- delta/selective-scheduling execution (GB-Reset; the paper's
  ``propagateDelta``),
- the dependency-driven refinement operators (``repropagate``,
  ``retract``, ``propagate`` of the paper's Algorithms 2-3) -- these are
  *not* written per algorithm; the engine composes them from
  ``contributions`` and the aggregation's incremental operators.  This is
  the paper's point that complex aggregations "statically decompose into
  simple sub-aggregations" whose old contributions can be reproduced
  on the fly from tracked values (section 3.3, steps 1-2).

Complex aggregations (CF's pair of sums, BP's per-state product) are
expressed by returning *vector* contributions -- the static decomposition
into sub-aggregations is a choice of value layout, after which each
component is a simple aggregation.

All hooks are vectorised over edges/vertices: ``src``/``dst``/``weight``
are parallel arrays and values are ``(n, *value_shape)`` arrays.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Tuple

import numpy as np

from repro.core.aggregation import Aggregation
from repro.graph.csr import CSRGraph
from repro.graph.mutable import MutationResult

__all__ = ["IncrementalAlgorithm"]


class IncrementalAlgorithm(ABC):
    """A synchronous vertex program in GraphBolt's decomposed form."""

    #: Human-readable short name (used in reports).
    name: str = "algorithm"

    #: Shape of a single vertex value; () for scalars, (S,) for vectors,
    #: etc.  Aggregation values share this shape unless
    #: :attr:`aggregation_shape` says otherwise.
    value_shape: Tuple[int, ...] = ()

    #: Absolute tolerance used for *scheduling* decisions (whether a value
    #: "changed"); exact zero disables selective scheduling savings because
    #: float replay noise never cancels perfectly.
    tolerance: float = 1e-12

    #: Default iteration count (the paper runs 10 iterations; 5 on Yahoo).
    default_iterations: int = 10

    #: True when ``apply`` needs the vertex's own previous value (e.g.
    #: SSSP's self-min).  The engines then re-apply a vertex whenever its
    #: own value changed in the previous iteration.
    uses_previous_value: bool = False

    def __init__(self, aggregation: Aggregation,
                 tolerance: Optional[float] = None) -> None:
        self.aggregation = aggregation
        if tolerance is not None:
            self.tolerance = tolerance

    # ------------------------------------------------------------------
    # Shapes
    # ------------------------------------------------------------------
    @property
    def aggregation_shape(self) -> Tuple[int, ...]:
        """Shape of one aggregation value (defaults to the value shape)."""
        return self.value_shape

    # ------------------------------------------------------------------
    # The vertex program
    # ------------------------------------------------------------------
    @abstractmethod
    def initial_values(self, graph: CSRGraph) -> np.ndarray:
        """The initial vertex values c_0, shape ``(V, *value_shape)``.

        Must be a deterministic function of the vertex *id* (not of the
        vertex count), so that growing the graph extends rather than
        perturbs the initial state.
        """

    @abstractmethod
    def contributions(
        self,
        graph: CSRGraph,
        src_values: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        weight: np.ndarray,
    ) -> np.ndarray:
        """Per-edge contributions, shape ``(E_sel, *aggregation_shape)``.

        ``graph`` identifies which snapshot's contribution parameters to
        use (e.g. out-degrees): during refinement the engine evaluates old
        contributions against the pre-mutation snapshot and new ones
        against the post-mutation snapshot.
        """

    @abstractmethod
    def apply(
        self,
        graph: CSRGraph,
        aggregate_values: np.ndarray,
        vertices: np.ndarray,
        previous_values: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """The ∮ step: map aggregated values to new vertex values.

        ``aggregate_values`` has shape ``(n, *aggregation_shape)`` for the
        given ``vertices``; ``previous_values`` is supplied iff
        :attr:`uses_previous_value` is set.  Must not mutate its inputs.
        """

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def values_changed(self, old_values: np.ndarray,
                       new_values: np.ndarray) -> np.ndarray:
        """Boolean per-vertex mask of meaningful change (selective
        scheduling predicate; paper section 4.2)."""
        diff = np.abs(new_values - old_values) > self.tolerance
        while diff.ndim > 1:
            diff = diff.any(axis=-1)
        return diff

    # ------------------------------------------------------------------
    # Mutation-induced parameter changes
    # ------------------------------------------------------------------
    def contribution_params_changed(self, mutation: MutationResult) -> np.ndarray:
        """Vertices whose *contribution function* changed under a mutation
        even if their value did not (e.g. PageRank sources whose
        out-degree changed).  Sorted unique int64 ids; empty by default.
        """
        return np.empty(0, dtype=np.int64)

    def apply_params_changed(self, mutation: MutationResult) -> np.ndarray:
        """Vertices whose *apply step* changed under a mutation (e.g.
        CoEM's in-weight normaliser).  Sorted unique int64 ids."""
        return np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------
    def identity_aggregate(self, num_vertices: int) -> np.ndarray:
        return self.aggregation.identity(num_vertices, self.aggregation_shape)

    def extend_values(self, values: np.ndarray, graph: CSRGraph) -> np.ndarray:
        """Grow a value array to a larger vertex count, filling new slots
        with initial values (vertex additions)."""
        num_vertices = graph.num_vertices
        if values.shape[0] == num_vertices:
            return values
        if values.shape[0] > num_vertices:
            raise ValueError("value array larger than graph")
        fresh = self.initial_values(graph)
        fresh[: values.shape[0]] = values
        return fresh

    def __repr__(self) -> str:
        return f"{type(self).__name__}(aggregation={self.aggregation.name})"
