"""GraphBolt's core: dependency-driven incremental processing.

The modules here implement the paper's primary contribution:

- :mod:`~repro.core.aggregation` -- the aggregation algebra with the three
  incremental operators (add new contributions, remove old contributions,
  update changed contributions) for decomposable aggregations, and the
  pull-based re-evaluation strategy for non-decomposable ones.
- :mod:`~repro.core.model` -- the generalized incremental programming
  model (:class:`IncrementalAlgorithm`): vertex programs decompose their
  computation into per-edge contributions, an aggregation, and an apply
  step, from which the engine derives incremental versions automatically.
- :mod:`~repro.core.history` -- O(V)-per-iteration dependency tracking as
  aggregation values residing on vertices, with vertical pruning.
- :mod:`~repro.core.pruning` -- horizontal/vertical pruning policies.
- :mod:`~repro.core.refinement` -- iteration-by-iteration dependency-driven
  value refinement.
- :mod:`~repro.core.hybrid` -- computation-aware hybrid execution beyond
  the pruning horizon.
- :mod:`~repro.core.engine` -- :class:`GraphBoltEngine`, the streaming
  engine tying the above together.
"""

from repro.core.aggregation import (
    Aggregation,
    LogProductAggregation,
    MaxAggregation,
    MinAggregation,
    ProductAggregation,
    SumAggregation,
)
from repro.core.engine import GraphBoltEngine
from repro.core.history import DependencyHistory
from repro.core.model import IncrementalAlgorithm
from repro.core.pruning import PruningPolicy
from repro.core.tagreset import TagResetEngine

__all__ = [
    "Aggregation",
    "DependencyHistory",
    "GraphBoltEngine",
    "IncrementalAlgorithm",
    "LogProductAggregation",
    "MaxAggregation",
    "MinAggregation",
    "ProductAggregation",
    "PruningPolicy",
    "SumAggregation",
    "TagResetEngine",
]
