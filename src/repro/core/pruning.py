"""Pruning policies for dependency tracking.

GraphBolt prunes the dependence graph conservatively along two axes
(paper section 3.2, Figure 4):

- **Horizontal pruning** stops tracking aggregation values after a cut-off
  iteration.  The cut-off can be fixed, or adaptive: once the fraction of
  vertices still changing per iteration drops below a threshold, further
  iterations are not worth tracking because incremental refinement there
  saves little over forward recomputation.
- **Vertical pruning** skips vertices whose values have stabilised: an
  unchanged value is simply not stored for that iteration.  Our
  :class:`~repro.core.history.DependencyHistory` does this by storing
  per-iteration *changed* sets, so vertical pruning is the storage
  default; disabling it stores dense per-iteration snapshots, matching
  the paper's "with vertical pruning disabled, allocations are done
  per-iteration across all vertices".

Both prunings are conservative: refinement never needs backpropagation to
recover pruned values, it just falls back to hybrid forward execution
past the horizontal cut-off (section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["PruningPolicy"]


@dataclass
class PruningPolicy:
    """Configuration of horizontal and vertical pruning.

    Parameters
    ----------
    horizon:
        Fixed horizontal cut-off: track at most this many iterations of
        dependency information.  ``None`` means no fixed cut-off.
    adaptive_fraction:
        Adaptive horizontal cut-off: stop tracking once fewer than this
        fraction of vertices changed in an iteration.  ``None`` disables
        adaptive cutting.
    vertical:
        Store only changed vertices per iteration (True, the default) or
        dense per-iteration snapshots (False).
    """

    horizon: Optional[int] = None
    adaptive_fraction: Optional[float] = None
    vertical: bool = True

    def __post_init__(self) -> None:
        if self.horizon is not None and self.horizon < 0:
            raise ValueError("horizon must be non-negative")
        if self.adaptive_fraction is not None and not (
            0.0 <= self.adaptive_fraction <= 1.0
        ):
            raise ValueError("adaptive_fraction must be within [0, 1]")

    @classmethod
    def track_everything(cls) -> "PruningPolicy":
        """No pruning at all (maximal memory, maximal reuse)."""
        return cls(horizon=None, adaptive_fraction=None, vertical=True)

    def should_track(self, iteration: int, changed_count: int,
                     num_vertices: int, tracking_stopped: bool) -> bool:
        """Decide whether iteration ``iteration`` (1-based) is tracked.

        Horizontal pruning is a *cut-off*: once tracking stops it never
        resumes (resuming would leave a hole that refinement cannot roll
        across).
        """
        if tracking_stopped:
            return False
        if self.horizon is not None and iteration > self.horizon:
            return False
        if (
            self.adaptive_fraction is not None
            and num_vertices > 0
            and changed_count / num_vertices < self.adaptive_fraction
        ):
            return False
        return True
