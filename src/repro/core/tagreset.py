"""A GraphIn-style tag-and-recompute corrector (the paper's "straight-
forward Z^S", section 2.2).

GraphIn-like systems make intermediate results consistent with the
mutated graph by *tagging* the value subset that could be affected --
everything downstream of the mutation points -- and recomputing it,
reusing untagged values as boundary conditions.  This is BSP-correct
when the tag set over-approximates reachability within the iteration
window, but section 2.2 argues (and :mod:`repro.core.tagging` measures)
that the tag set is usually the majority of the graph, so the reuse is
marginal.

:class:`TagResetEngine` implements the corrector faithfully so it can
be compared head-to-head with dependency-driven refinement:

- the tag set is the downstream closure of the mutated endpoints within
  the iteration window, plus parameter-changed vertices;
- every tagged vertex is recomputed at *every* iteration by pulling its
  full in-edge set (tagged sources use recomputed values, untagged ones
  the tracked history's values);
- untagged vertices replay their recorded trajectory untouched.

It reuses GraphBolt's :class:`~repro.core.history.DependencyHistory`
for the boundary values (tag-reset needs per-iteration untagged values
just as refinement does -- the history is not optional for *any*
BSP-correct corrector, which is itself a point worth demonstrating)
and therefore requires full-horizon tracking.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.history import DependencyHistory
from repro.core.model import IncrementalAlgorithm
from repro.core.tagging import downstream_tagged
from repro.graph.csr import CSRGraph
from repro.graph.mutable import StreamingGraph
from repro.graph.mutation import MutationBatch
from repro.ligra.delta import DeltaEngine
from repro.runtime.exec import ExecutionBackend, resolve_backend
from repro.runtime.metrics import EngineMetrics, Timer

__all__ = ["TagResetEngine"]


class TagResetEngine:
    """Streaming engine correcting BSP results by tag + recompute."""

    name = "TagReset"

    def __init__(self, algorithm: IncrementalAlgorithm,
                 num_iterations: Optional[int] = None,
                 metrics: Optional[EngineMetrics] = None,
                 backend: Optional[ExecutionBackend] = None) -> None:
        self.algorithm = algorithm
        self.num_iterations = (
            algorithm.default_iterations if num_iterations is None
            else num_iterations
        )
        self.metrics = metrics if metrics is not None else EngineMetrics()
        self.backend = resolve_backend(backend)
        self._delta = DeltaEngine(algorithm, self.metrics,
                                  backend=self.backend)
        self._streaming: Optional[StreamingGraph] = None
        self._history: Optional[DependencyHistory] = None
        self._values: Optional[np.ndarray] = None
        #: Tag-set size of the last batch (for reporting).
        self.last_tagged = 0

    # ------------------------------------------------------------------
    @property
    def graph(self) -> CSRGraph:
        return self._streaming.graph

    @property
    def values(self) -> np.ndarray:
        return self._values

    def run(self, graph: CSRGraph) -> np.ndarray:
        """Initial run with full-horizon tracking (see module docstring)."""
        self._streaming = StreamingGraph(graph)
        state = self._delta.initial_state(graph)
        history = DependencyHistory(state.values, state.aggregate)
        with Timer(self.metrics, "initial_run"):
            for _ in range(self.num_iterations):
                record = self._delta.step(graph, state, record_changes=True)
                history.record(record.g_idx, record.g_values,
                               record.c_idx, record.c_values)
        self._history = history
        self._values = state.values
        return state.values

    # ------------------------------------------------------------------
    def apply_mutations(self, batch: MutationBatch) -> np.ndarray:
        """Tag the affected region; recompute it for every iteration."""
        if self._streaming is None:
            raise RuntimeError("call run() before applying mutations")
        with Timer(self.metrics, "adjust_structure"):
            mutation = self._streaming.apply_batch(batch)
        graph = mutation.new_graph
        algorithm = self.algorithm

        seeds = np.concatenate([
            mutation.add_src, mutation.add_dst,
            mutation.del_src, mutation.del_dst,
            algorithm.contribution_params_changed(mutation),
            algorithm.apply_params_changed(mutation),
            np.arange(mutation.old_graph.num_vertices, graph.num_vertices,
                      dtype=np.int64),
        ])
        with Timer(self.metrics, "tag"):
            tagged_mask = downstream_tagged(graph, seeds,
                                            max_hops=self.num_iterations)
        tagged = np.flatnonzero(tagged_mask)
        self.last_tagged = int(tagged.size)

        with Timer(self.metrics, "recompute"):
            values = self._recompute(graph, mutation, tagged, tagged_mask)
        self._values = values
        return values

    def _recompute(self, graph, mutation, tagged, tagged_mask):
        algorithm = self.algorithm
        initial = algorithm.initial_values(graph)
        identity = algorithm.identity_aggregate(graph.num_vertices)
        old_roll = self._history.rolling(extended_initial=initial,
                                         extended_identity=identity)
        new_history = DependencyHistory(initial, identity)

        c_prev = initial.copy()
        uses_prev = algorithm.uses_previous_value
        # One-time structural gather, reused every iteration; the per-
        # iteration edge work is charged inside the loop below.
        in_src, in_dst, in_weight = self.backend.gather_in(
            graph, tagged, self.metrics, count=False
        )
        for _ in range(self.num_iterations):
            old_roll.advance()
            self.metrics.refinement_iterations += 1
            c_cur = old_roll.c.copy()
            if tagged.size:
                # Recompute every tagged vertex from its full in-edge
                # set -- the wasteful part tag-reset cannot avoid.
                self.metrics.count_edges(in_src.size)
                self.backend.count_vertices(graph, tagged, self.metrics)
                aggregate = identity.copy()
                if in_src.size:
                    contribs = algorithm.contributions(
                        graph, c_prev[in_src], in_src, in_dst, in_weight
                    )
                    self.backend.scatter(graph, algorithm.aggregation,
                                         aggregate, in_dst, contribs,
                                         self.metrics)
                previous = c_prev[tagged] if uses_prev else None
                c_cur[tagged] = algorithm.apply(
                    graph, aggregate[tagged], tagged, previous
                )
            changed = np.flatnonzero(
                _rows_differ(c_prev, c_cur)
            )
            new_history.record(changed, identity[changed],  # g untracked
                               changed, c_cur[changed])
            c_prev = c_cur

        # Tag-reset keeps only vertex values across batches; rebuild the
        # value history (g history is not maintained by this corrector,
        # so subsequent batches must re-tag from scratch, as GraphIn's
        # fixed-size-batch model does).
        self._history = self._rebuild_value_history(graph, c_prev,
                                                    new_history)
        return c_prev

    def _rebuild_value_history(self, graph, final_values, new_history):
        """Re-run tracking cheaply: replay the recomputed run's value
        records; aggregation slots are reconstructed on demand by the
        next batch's recomputation (which pulls, never reads g)."""
        return new_history

    def __repr__(self) -> str:
        return (
            f"TagResetEngine(algorithm={self.algorithm.name}, "
            f"last_tagged={self.last_tagged})"
        )


def _rows_differ(old: np.ndarray, new: np.ndarray) -> np.ndarray:
    diff = old != new
    while diff.ndim > 1:
        diff = diff.any(axis=-1)
    return diff
