"""Dependency information as per-vertex aggregation value history.

The paper's key memory insight (section 3.2): instead of recording every
value that flowed along every edge -- O(|E| * iterations) -- record only
the *aggregated* values g_i(v) residing on vertices, because the structure
of dependencies (which value impacts which) is recoverable from the input
graph itself.  This brings tracking down to O(|V| * iterations), and
vertical pruning reduces it further by storing a vertex's value for an
iteration only when it changed in that iteration.

:class:`DependencyHistory` stores, per iteration, the sparse set of
vertices whose aggregation value and/or vertex value changed, together
with the new values.  The contiguity invariant from section 4.1 holds by
construction: a vertex's value at iteration i is the value stored at the
*latest* iteration <= i that recorded it, so "holes" never need explicit
representation.  :class:`RollingState` replays the history forward,
materialising dense g_i / c_i arrays one iteration at a time -- exactly
the access pattern of dependency-driven refinement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

__all__ = ["DependencyHistory", "IterationRecord", "RollingState"]


@dataclass
class IterationRecord:
    """Sparse per-iteration dependency information.

    ``g_idx``/``g_values``: vertices whose aggregation value changed in
    this iteration relative to the previous one, with the new values.
    ``c_idx``/``c_values``: likewise for vertex values; ``c_idx`` doubles
    as the iteration's changed-vertex frontier (the bit-vector of paper
    section 4.2's hybrid execution).
    """

    g_idx: np.ndarray
    g_values: np.ndarray
    c_idx: np.ndarray
    c_values: np.ndarray

    @property
    def nbytes(self) -> int:
        return (
            self.g_idx.nbytes
            + self.g_values.nbytes
            + self.c_idx.nbytes
            + self.c_values.nbytes
        )


class DependencyHistory:
    """Aggregation-value dependency information for one tracked run."""

    def __init__(self, initial_values: np.ndarray,
                 identity_aggregate: np.ndarray) -> None:
        if initial_values.shape[0] != identity_aggregate.shape[0]:
            raise ValueError("initial values and aggregate must align")
        self.initial_values = initial_values.copy()
        self.identity_aggregate = identity_aggregate.copy()
        self.records: List[IterationRecord] = []

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return int(self.initial_values.shape[0])

    @property
    def horizon(self) -> int:
        """Number of iterations with tracked dependency information."""
        return len(self.records)

    @property
    def nbytes(self) -> int:
        """Bytes of *tracked dependency information* (Table 9 accounting).

        The initial values and identity template are state every engine
        (including GB-Reset) holds, so only the per-iteration records
        count as dependency overhead.
        """
        return sum(record.nbytes for record in self.records)

    def record(self, g_idx: np.ndarray, g_values: np.ndarray,
               c_idx: np.ndarray, c_values: np.ndarray) -> None:
        """Append one iteration's sparse changes (values are copied)."""
        self.records.append(
            IterationRecord(
                g_idx=np.asarray(g_idx, dtype=np.int64).copy(),
                g_values=np.asarray(g_values, dtype=np.float64).copy(),
                c_idx=np.asarray(c_idx, dtype=np.int64).copy(),
                c_values=np.asarray(c_values, dtype=np.float64).copy(),
            )
        )

    def changed_frontier(self, iteration: int) -> np.ndarray:
        """Vertices whose value changed in ``iteration`` (1-based)."""
        return self.records[iteration - 1].c_idx

    def rolling(self, extended_initial: Optional[np.ndarray] = None,
                extended_identity: Optional[np.ndarray] = None) -> "RollingState":
        """A replay cursor over this history.

        When the graph grew, pass value/aggregate arrays already extended
        to the new vertex count; new vertices replay as never-changing
        (they did not exist in the recorded run).
        """
        return RollingState(self, extended_initial, extended_identity)

    def stored_entries(self) -> int:
        """Total number of (vertex, iteration) aggregation entries stored;
        the quantity vertical pruning minimises."""
        return sum(int(r.g_idx.size) for r in self.records)

    def __repr__(self) -> str:
        return (
            f"DependencyHistory(V={self.num_vertices}, "
            f"horizon={self.horizon}, bytes={self.nbytes})"
        )


class RollingState:
    """Forward replay of a :class:`DependencyHistory`.

    Maintains dense ``g`` (aggregation) and ``c`` (vertex value) arrays
    for the current iteration; :meth:`advance` overlays the next
    iteration's sparse record.  The previous iteration's vertex values
    remain available as :attr:`c_prev`, which is what contribution
    retraction evaluates against.
    """

    def __init__(self, history: DependencyHistory,
                 extended_initial: Optional[np.ndarray] = None,
                 extended_identity: Optional[np.ndarray] = None) -> None:
        self._history = history
        base_c = (history.initial_values if extended_initial is None
                  else extended_initial)
        base_g = (history.identity_aggregate if extended_identity is None
                  else extended_identity)
        if base_c.shape[0] < history.num_vertices:
            raise ValueError("extended arrays must not shrink the run")
        self.c = base_c.copy()
        self.c_prev = base_c.copy()
        self.g = base_g.copy()
        self.iteration = 0

    @property
    def horizon(self) -> int:
        return self._history.horizon

    def advance(self) -> IterationRecord:
        """Move to the next iteration, overlaying its record; returns it."""
        if self.iteration >= self._history.horizon:
            raise IndexError("advanced past the tracked horizon")
        record = self._history.records[self.iteration]
        np.copyto(self.c_prev, self.c)
        if record.g_idx.size:
            self.g[record.g_idx] = record.g_values
        if record.c_idx.size:
            self.c[record.c_idx] = record.c_values
        self.iteration += 1
        return record
