"""Tag-propagation analysis: why naive resetting fails.

Sections 1 and 2.2 of the paper dismiss the "straightforward Z^S" --
identify the subset of values affected by a mutation by propagating
tags downstream from the mutation points, reset them, and recompute --
with the KickStarter observation that "such tagging based approach ends
up tagging majority of vertex values to be thrown out, hence limiting
reuse of values to a very small fraction of vertices".

This module quantifies that claim so the motivation experiment can be
run rather than cited: :func:`tagged_fraction` computes, for a mutation
batch, the fraction of vertices a tag-based corrector would have to
reset -- every vertex reachable from a mutated edge's endpoints within
the iteration window (a value at iteration i is value-dependent on
anything within i hops upstream; conversely a mutation at iteration 0
taints everything within k hops downstream of its endpoints by
iteration k).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.mutable import MutationResult

__all__ = ["downstream_tagged", "tagged_fraction"]


def downstream_tagged(
    graph: CSRGraph,
    seeds: np.ndarray,
    max_hops: Optional[int] = None,
) -> np.ndarray:
    """Boolean mask of vertices within ``max_hops`` of ``seeds``
    (inclusive), following out-edges -- the set a tag-based corrector
    resets.  ``None`` means unbounded (full downstream closure)."""
    tagged = np.zeros(graph.num_vertices, dtype=bool)
    frontier = np.unique(np.asarray(seeds, dtype=np.int64))
    frontier = frontier[frontier < graph.num_vertices]
    tagged[frontier] = True
    hops = 0
    while frontier.size and (max_hops is None or hops < max_hops):
        _, dst, _ = graph.out_edges_of(frontier)
        fresh = np.unique(dst)
        fresh = fresh[~tagged[fresh]]
        tagged[fresh] = True
        frontier = fresh
        hops += 1
    return tagged


def tagged_fraction(
    mutation: MutationResult,
    num_iterations: int,
) -> float:
    """Fraction of vertices a tag-based Z^S resets for this mutation.

    Seeds are every mutated edge's endpoints (additions and deletions
    both invalidate their targets, and sources whose contribution
    parameters changed); tags spread ``num_iterations`` hops downstream
    in the new snapshot.
    """
    graph = mutation.new_graph
    seeds = np.concatenate([
        mutation.add_dst, mutation.del_dst,
        mutation.add_src, mutation.del_src,
    ])
    if seeds.size == 0:
        return 0.0
    tagged = downstream_tagged(graph, seeds, max_hops=num_iterations)
    return float(tagged.sum()) / max(graph.num_vertices, 1)
