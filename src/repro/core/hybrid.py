"""Computation-aware hybrid execution (paper section 4.2).

Horizontal pruning means dependency information exists only up to some
iteration ``k``.  Past it, GraphBolt switches from dependency-driven
refinement to plain incremental (delta) computation: the refined rolling
state at ``k`` -- values, previous values, aggregate, and the frontier of
vertices whose value moved between iterations ``k-1`` and ``k`` -- is
exactly a :class:`~repro.ligra.delta.DeltaState`, so forward execution
is the GB-Reset stepping core continued from refined state.

The paper's bit-vector of values that changed at iteration ``k`` in the
original computation is subsumed here: the refined run's dense
``prev_values``/``values`` arrays carry both the original run's changes
and the refinement's, so the frontier computed from them seeds forward
propagation with the full set the paper requires.
"""

from __future__ import annotations

from typing import Optional

from repro.graph.csr import CSRGraph
from repro.ligra.delta import DeltaEngine, DeltaState
from repro.obs import trace
from repro.runtime.deadline import Deadline
from repro.runtime.metrics import Timer

__all__ = ["hybrid_forward"]


def hybrid_forward(
    engine: DeltaEngine,
    graph: CSRGraph,
    state: DeltaState,
    total_iterations: Optional[int],
    until_convergence: bool,
    max_iterations: int = 1000,
    deadline: Optional[Deadline] = None,
) -> DeltaState:
    """Continue delta execution from refined state to the run's end.

    ``total_iterations`` is the target iteration count of the whole run
    (refined + forward); in convergence mode the loop instead runs until
    the frontier empties (capped at ``max_iterations``).

    ``deadline`` bounds the loop at iteration granularity: it is
    consulted *before* each step, so a started iteration always
    completes and the returned state is exactly the BSP state after
    ``state.iteration`` iterations -- a valid result truncated early,
    never a torn one.  The caller learns a deadline fired by comparing
    ``state.iteration`` against its target (see
    ``StreamingAnalyticsServer.query``).
    """
    metrics = engine.metrics
    with trace.span("forward", start_iteration=state.iteration) as span, \
            Timer(metrics, "hybrid"):
        if until_convergence:
            budget = max_iterations - state.iteration
        else:
            if total_iterations is None:
                total_iterations = engine.algorithm.default_iterations
            budget = total_iterations - state.iteration
        steps = 0
        expired = False
        for _ in range(max(budget, 0)):
            if state.iteration > 0 and state.frontier.size == 0:
                break
            if deadline is not None and deadline.expired():
                expired = True
                break
            with trace.span("iteration", index=state.iteration + 1,
                            frontier=int(state.frontier.size)):
                engine.step(graph, state)
            metrics.hybrid_iterations += 1
            steps += 1
        span.tag(iterations=steps, deadline_expired=expired)
    return state
