"""The aggregation algebra.

GraphBolt models a synchronous vertex computation as::

    c_i(v) = apply( (+)_{(u,v) in E} contribution(c_{i-1}(u), u, v, w) )

where ``(+)`` is a commutative, associative aggregation operator (paper
section 3.2).  Incremental processing needs three additional operators
(section 3.3):

- ``scatter``        -- add new contributions        (the paper's  ⊎ )
- ``scatter_retract``-- remove old contributions      (the paper's  ⋃– )
- ``scatter_delta``  -- update changed contributions  (the paper's  ⋃△ ),
  fused as a single pass when the aggregation admits a direct "change in
  contribution" (e.g. sums), or expressed as retract followed by scatter
  otherwise.

**Decomposable** aggregations (sum, count, product) can incorporate the
impact of a change from a single edge into the final aggregate value, so
all three operators work on the stored aggregate alone.  **Non-
decomposable** aggregations (min, max) cannot undo a contribution from
the final value only; the engine handles them with the paper's
re-evaluation strategy, pulling the full updated input set from incoming
neighbours (section 3.3, "Aggregation Properties & Extensions").

All operators are vectorised: ``dst`` is an int64 index array and
``contributions`` a parallel array (possibly 2-D for vector-valued
algorithms); scattering uses NumPy's unbuffered ``ufunc.at``, the
sequential stand-in for the paper's atomic read-modify-write updates.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Tuple, Union

import numpy as np

__all__ = [
    "Aggregation",
    "SumAggregation",
    "CountAggregation",
    "ProductAggregation",
    "LogProductAggregation",
    "MinAggregation",
    "MaxAggregation",
]

Shape = Union[int, Tuple[int, ...]]


class Aggregation(ABC):
    """A commutative, associative aggregation with incremental operators."""

    #: Whether single-edge changes can be incorporated into the stored
    #: aggregate (paper's decomposable/non-decomposable classification).
    decomposable: bool = True

    @abstractmethod
    def identity_value(self) -> float:
        """The identity element of the operator."""

    def identity(self, num_vertices: int, value_shape: Tuple[int, ...] = ()) -> np.ndarray:
        """A fresh dense aggregate array filled with the identity."""
        return np.full((num_vertices, *value_shape), self.identity_value(),
                       dtype=np.float64)

    @abstractmethod
    def scatter(self, aggregate: np.ndarray, dst: np.ndarray,
                contributions: np.ndarray) -> None:
        """``aggregate[dst] (+)= contributions`` in place (the ⊎ operator)."""

    @abstractmethod
    def scatter_retract(self, aggregate: np.ndarray, dst: np.ndarray,
                        contributions: np.ndarray) -> None:
        """Remove previously-made contributions in place (the ⋃– operator)."""

    def scatter_delta(self, aggregate: np.ndarray, dst: np.ndarray,
                      new_contributions: np.ndarray,
                      old_contributions: np.ndarray) -> None:
        """Replace old contributions with new ones (the ⋃△ operator).

        The default fuses both directions into one pass using
        :meth:`delta`; subclasses without a direct delta fall back to
        retract + scatter.
        """
        self.scatter(aggregate, dst,
                     self.delta(new_contributions, old_contributions))

    @abstractmethod
    def delta(self, new_contributions: np.ndarray,
              old_contributions: np.ndarray) -> np.ndarray:
        """The per-edge change in contribution for a fused ⋃△ pass."""

    def reduce(self, contributions: np.ndarray, axis: int = 0) -> np.ndarray:
        """Direct reduction (used by pull-based re-evaluation)."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__.replace("Aggregation", "").lower()


class SumAggregation(Aggregation):
    """Addition; the aggregation of PR, LP, CoEM and (component-wise) CF."""

    decomposable = True

    def identity_value(self) -> float:
        return 0.0

    def scatter(self, aggregate, dst, contributions) -> None:
        np.add.at(aggregate, dst, contributions)

    def scatter_retract(self, aggregate, dst, contributions) -> None:
        np.subtract.at(aggregate, dst, contributions)

    def delta(self, new_contributions, old_contributions) -> np.ndarray:
        return new_contributions - old_contributions

    def reduce(self, contributions, axis: int = 0) -> np.ndarray:
        return contributions.sum(axis=axis)


class CountAggregation(SumAggregation):
    """Counting = summing ones; kept as a named operator for clarity."""


class ProductAggregation(Aggregation):
    """Multiplication; the aggregation of Belief Propagation.

    Retraction divides out old contributions (the paper's
    ``atomicDivide``), which requires contributions to be non-zero -- BP's
    potentials and normalised messages are strictly positive, satisfying
    this.  For deep products over high-degree vertices prefer
    :class:`LogProductAggregation`, which is the same operator computed in
    log space.
    """

    decomposable = True

    def identity_value(self) -> float:
        return 1.0

    def scatter(self, aggregate, dst, contributions) -> None:
        np.multiply.at(aggregate, dst, contributions)

    def scatter_retract(self, aggregate, dst, contributions) -> None:
        np.divide.at(aggregate, dst, contributions)

    def delta(self, new_contributions, old_contributions) -> np.ndarray:
        return new_contributions / old_contributions

    def reduce(self, contributions, axis: int = 0) -> np.ndarray:
        return contributions.prod(axis=axis)


class LogProductAggregation(Aggregation):
    """Product aggregation computed in log space for numerical stability.

    Semantically identical to :class:`ProductAggregation` (the aggregate
    stores ``log`` of the product); algorithms using it must exponentiate
    in their ``apply``.  Contributions passed to the operators are the
    *logs* of the multiplicative contributions, so ⊎ is addition and ⋃–
    subtraction, exactly mirroring the multiplicative operators.
    """

    decomposable = True

    def identity_value(self) -> float:
        return 0.0  # log 1

    def scatter(self, aggregate, dst, contributions) -> None:
        np.add.at(aggregate, dst, contributions)

    def scatter_retract(self, aggregate, dst, contributions) -> None:
        np.subtract.at(aggregate, dst, contributions)

    def delta(self, new_contributions, old_contributions) -> np.ndarray:
        return new_contributions - old_contributions

    def reduce(self, contributions, axis: int = 0) -> np.ndarray:
        return contributions.sum(axis=axis)


class _SelectionAggregation(Aggregation):
    """Shared base for min/max: monotone insert, no retraction."""

    decomposable = False

    def scatter_retract(self, aggregate, dst, contributions) -> None:
        raise NotImplementedError(
            f"{self.name} is non-decomposable: a contribution cannot be "
            "removed from the final aggregate alone (paper section 3.3); "
            "the engine re-evaluates by pulling from incoming neighbours"
        )

    def delta(self, new_contributions, old_contributions) -> np.ndarray:
        raise NotImplementedError(
            f"{self.name} has no direct change-in-contribution form"
        )


class MinAggregation(_SelectionAggregation):
    """Minimum; the aggregation of SSSP/BFS.  Non-decomposable."""

    def identity_value(self) -> float:
        return np.inf

    def scatter(self, aggregate, dst, contributions) -> None:
        np.minimum.at(aggregate, dst, contributions)

    def reduce(self, contributions, axis: int = 0) -> np.ndarray:
        return contributions.min(axis=axis)


class MaxAggregation(_SelectionAggregation):
    """Maximum (e.g. widest-path style algorithms).  Non-decomposable."""

    def identity_value(self) -> float:
        return -np.inf

    def scatter(self, aggregate, dst, contributions) -> None:
        np.maximum.at(aggregate, dst, contributions)

    def reduce(self, contributions, axis: int = 0) -> np.ndarray:
        return contributions.max(axis=axis)
