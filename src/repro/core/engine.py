"""The GraphBolt streaming engine.

:class:`GraphBoltEngine` owns a streaming graph and an algorithm and
drives the full lifecycle:

1. ``run(graph)`` -- the initial execution, performed with selective
   scheduling (the GB-Reset stepping core) while *tracking* each
   iteration's aggregation and vertex values into a
   :class:`~repro.core.history.DependencyHistory`, under the configured
   pruning policy.
2. ``apply_mutations(batch)`` -- adjust the graph structure, run
   dependency-driven refinement over the tracked window, then hybrid
   forward execution to the end of the run, and commit the refined
   history for the next batch.

Two degraded strategies exist for the paper's motivation experiments:

- ``strategy="naive"`` reuses converged values directly as the starting
  point on the mutated graph (the incorrect ``S*(G_T, R_G)`` of Figure 2
  / Table 1) -- no refinement, no BSP guarantee;
- the GB-Reset and Ligra baselines live in
  :mod:`repro.bench.harness` as restart runners sharing the same
  streaming interface.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.history import DependencyHistory
from repro.core.hybrid import hybrid_forward
from repro.core.model import IncrementalAlgorithm
from repro.core.pruning import PruningPolicy
from repro.core.refinement import DENSE_REFINE_FRACTION, refine
from repro.graph.csr import CSRGraph
from repro.graph.mutable import StreamingGraph
from repro.graph.mutation import MutationBatch
from repro.ligra.delta import DeltaEngine, DeltaState
from repro.obs import trace
from repro.obs.registry import get_registry
from repro.runtime.exec import (
    ExecutionBackend,
    load_imbalance,
    resolve_backend,
)
from repro.runtime.metrics import EngineMetrics, MemoryReport, Timer

__all__ = ["GraphBoltEngine"]


class GraphBoltEngine:
    """Dependency-driven synchronous processing of a streaming graph."""

    name = "GraphBolt"

    def __init__(
        self,
        algorithm: IncrementalAlgorithm,
        num_iterations: Optional[int] = None,
        until_convergence: bool = False,
        max_iterations: int = 1000,
        pruning: Optional[PruningPolicy] = None,
        mode: str = "delta",
        strategy: str = "refine",
        metrics: Optional[EngineMetrics] = None,
        dense_refine_fraction: Optional[float] = None,
        streaming_factory=StreamingGraph,
        backend: Optional[ExecutionBackend] = None,
    ) -> None:
        if strategy not in ("refine", "naive"):
            raise ValueError("strategy must be 'refine' or 'naive'")
        self.algorithm = algorithm
        self.num_iterations = (
            algorithm.default_iterations if num_iterations is None
            else num_iterations
        )
        self.until_convergence = until_convergence
        self.max_iterations = max_iterations
        self.pruning = pruning if pruning is not None else (
            PruningPolicy.track_everything()
        )
        self.strategy = strategy
        self.dense_refine_fraction = (
            DENSE_REFINE_FRACTION if dense_refine_fraction is None
            else dense_refine_fraction
        )
        self.metrics = metrics if metrics is not None else EngineMetrics()
        #: Builds the streaming structure in :meth:`run`; swap in
        #: :class:`repro.graph.dynamic.DynamicStreamingGraph` for
        #: STINGER-style in-place structure adjustment.
        self.streaming_factory = streaming_factory
        self.backend = resolve_backend(backend)
        self._delta = DeltaEngine(algorithm, self.metrics, mode=mode,
                                  backend=self.backend)
        self._streaming: Optional[StreamingGraph] = None
        self._history: Optional[DependencyHistory] = None
        self._state: Optional[DeltaState] = None
        self.batches_applied = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def graph(self) -> CSRGraph:
        self._require_run()
        return self._streaming.graph

    @property
    def values(self) -> np.ndarray:
        """Final vertex values for the latest snapshot."""
        self._require_run()
        return self._state.values

    @property
    def history(self) -> DependencyHistory:
        self._require_run()
        return self._history

    def _require_run(self) -> None:
        if self._streaming is None:
            raise RuntimeError("call run() before using the engine")

    # ------------------------------------------------------------------
    # Initial execution with dependency tracking
    # ------------------------------------------------------------------
    def run(self, graph: Optional[CSRGraph] = None,
            streaming=None) -> np.ndarray:
        """Process the initial snapshot, tracking dependencies.

        Pass either a graph (the engine creates its own streaming
        structure) or an existing ``streaming`` container to share one
        structure across several engines (see
        :class:`repro.serving.suite.AnalyticsSuite`); shared-structure
        callers adjust the structure themselves and feed the engine via
        :meth:`apply_mutation_result`.
        """
        if (graph is None) == (streaming is None):
            raise ValueError("provide exactly one of graph or streaming")
        if streaming is not None:
            self._streaming = streaming
            graph = streaming.graph
        else:
            self._streaming = self.streaming_factory(graph)
        with trace.span("initial_run", engine=self.name,
                        algorithm=self.algorithm.name,
                        vertices=graph.num_vertices,
                        edges=graph.num_edges):
            self._state, self._history = self._tracked_run(graph)
        self._publish_gauges()
        return self._state.values

    def _tracked_run(self, graph: CSRGraph):
        state = self._delta.initial_state(graph)
        history = DependencyHistory(state.values, state.aggregate)
        limit = (
            self.max_iterations if self.until_convergence
            else self.num_iterations
        )
        tracking_stopped = self.strategy == "naive"
        with Timer(self.metrics, "initial_run"):
            for iteration in range(1, limit + 1):
                if state.iteration > 0 and state.frontier.size == 0:
                    break
                if iteration == 1:
                    # Adaptive pruning keys off the previous iteration's
                    # change count, which doesn't exist yet: the first
                    # iteration always tracks (unless the horizon is 0).
                    track = not tracking_stopped and (
                        self.pruning.horizon is None
                        or self.pruning.horizon >= 1
                    )
                else:
                    track = self.pruning.should_track(
                        iteration, state.frontier.size, graph.num_vertices,
                        tracking_stopped,
                    )
                with trace.span("iteration", index=iteration,
                                tracked=track):
                    if track:
                        record = self._delta.step(graph, state,
                                                  record_changes=True)
                        self._record(history, record, state,
                                     graph.num_vertices)
                    else:
                        tracking_stopped = True
                        self._delta.step(graph, state)
        return state, history

    def _record(self, history, record, state, num_vertices):
        if self.pruning.vertical:
            history.record(record.g_idx, record.g_values,
                           record.c_idx, record.c_values)
        else:
            dense = np.arange(num_vertices, dtype=np.int64)
            history.record(dense, state.aggregate, dense, state.values)

    # ------------------------------------------------------------------
    # Mutation processing
    # ------------------------------------------------------------------
    def apply_mutations(self, batch: MutationBatch) -> np.ndarray:
        """Mutate the graph and produce results for the new snapshot."""
        self._require_run()
        with trace.span("batch", engine=self.name,
                        algorithm=self.algorithm.name,
                        index=self.batches_applied,
                        mutations=len(batch)):
            with trace.span("adjust_structure"), \
                    Timer(self.metrics, "adjust_structure"):
                mutation = self._streaming.apply_batch(batch)
            return self._apply_mutation_result(mutation)

    def apply_mutation_result(self, mutation) -> np.ndarray:
        """Process an already-applied structure change.

        Shared-structure deployments (several analyses over one graph)
        adjust the structure once and feed every engine the same
        :class:`~repro.graph.mutable.MutationResult`.
        """
        self._require_run()
        with trace.span("batch", engine=self.name,
                        algorithm=self.algorithm.name,
                        index=self.batches_applied,
                        shared_structure=True):
            return self._apply_mutation_result(mutation)

    def _apply_mutation_result(self, mutation) -> np.ndarray:
        graph = mutation.new_graph
        self.batches_applied += 1

        if self.strategy == "naive":
            self._state = self._naive_continue(graph)
            return self._state.values

        state, new_history = refine(
            self.algorithm, mutation, self._history, self.metrics,
            self.pruning, mode=self._delta.mode,
            dense_fraction=self.dense_refine_fraction,
            backend=self.backend,
        )
        state = hybrid_forward(
            self._delta, graph, state,
            total_iterations=self.num_iterations,
            until_convergence=self.until_convergence,
            max_iterations=self.max_iterations,
        )
        self._state = state
        self._history = new_history
        self._publish_gauges()
        return state.values

    def _publish_gauges(self) -> None:
        """Live operational gauges (the paper's Table 9, continuously):
        frontier density, tracked window depth, dependency bytes."""
        registry = get_registry()
        num_vertices = max(self._streaming.graph.num_vertices, 1)
        registry.gauge("graphbolt.frontier_density").set(
            self._state.frontier.size / num_vertices
        )
        registry.gauge("graphbolt.history_window").set(
            self._history.horizon
        )
        registry.gauge("graphbolt.dependency_bytes").set(
            self._history.nbytes
        )
        registry.gauge("graphbolt.shard_imbalance").set(
            load_imbalance(self.metrics.shard_loads)
        )

    def _naive_continue(self, graph: CSRGraph) -> DeltaState:
        """The incorrect baseline: keep converged values as the starting
        point on the mutated graph (``S*(G_T, R_G)``)."""
        algorithm = self.algorithm
        values = algorithm.extend_values(self._state.values, graph)
        state = DeltaState(
            values=values,
            prev_values=values.copy(),
            aggregate=algorithm.identity_aggregate(graph.num_vertices),
            frontier=np.empty(0, dtype=np.int64),
            iteration=0,
        )
        limit = (
            self.max_iterations if self.until_convergence
            else self.num_iterations
        )
        with trace.span("naive_continue"), \
                Timer(self.metrics, "naive_continue"):
            for _ in range(limit):
                if state.iteration > 0 and state.frontier.size == 0:
                    break
                self._delta.step(graph, state)
        return state

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def memory_report(self, include_graph: bool = True,
                      first_iteration_only: bool = False) -> MemoryReport:
        """Bytes of dependency information versus baseline engine memory.

        ``include_graph`` counts the CSR/CSC structure in the baseline,
        matching the paper's Table 9 (GB-Reset holds the graph too, and
        it dominates total memory).  ``first_iteration_only`` reports the
        first tracked iteration's record as the dependency cost -- the
        paper's "worst-case estimate", since vertical pruning shrinks
        every later iteration.
        """
        self._require_run()
        state = self._state
        baseline = (
            state.values.nbytes
            + state.prev_values.nbytes
            + state.aggregate.nbytes
        )
        if include_graph:
            baseline += self._streaming.graph.nbytes
        if first_iteration_only and self._history.records:
            dependency = self._history.records[0].nbytes
        else:
            dependency = self._history.nbytes
        return MemoryReport(
            baseline_bytes=baseline,
            dependency_bytes=dependency,
        )

    def __repr__(self) -> str:
        ran = self._streaming is not None
        return (
            f"GraphBoltEngine(algorithm={self.algorithm.name}, "
            f"strategy={self.strategy}, ran={ran})"
        )
