"""Dependency-driven value refinement (paper section 3.3).

Given a mutation ``E_a``/``E_d`` and the tracked aggregation-value
history of the pre-mutation run, refinement transforms the tracked
values iteration by iteration so they become exactly what a from-scratch
synchronous run on the mutated graph would have produced:

1. **What to refine** -- at each iteration the vertices refined are (a)
   the endpoints of mutated edges (direct impact) and (b) the
   out-neighbours of vertices whose value or contribution function
   changed in the previous iteration (transitive impact).  The structure
   of dependencies is read straight off the mutated graph, never stored.

2. **How to refine** -- decomposable aggregations start from the old
   aggregate and splice in the three incremental operators: ⊎ adds the
   contributions of added edges, ⋃– retracts contributions of deleted
   edges (evaluated with *old* values against the *old* snapshot, which
   is how old contributions are "reproduced on the fly"), and ⋃△ swaps
   old for new contributions along retained edges whose source changed.
   Newly-added edges are excluded from the ⋃△ pass -- they have no old
   contribution -- via the mutation's added-edge slot mask.
   Non-decomposable aggregations (min/max) are instead re-evaluated by
   pulling the full updated input set from incoming neighbours.

The refined run's history is re-recorded as it is produced, so the next
mutation batch refines against it; the function returns the rolling
:class:`~repro.ligra.delta.DeltaState` at the tracked horizon, from
which hybrid execution continues forward.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.history import DependencyHistory
from repro.core.model import IncrementalAlgorithm
from repro.core.pruning import PruningPolicy
from repro.graph.mutable import MutationResult
from repro.ligra.delta import DeltaState
from repro.obs import trace
from repro.runtime.exec import ExecutionBackend, resolve_backend
from repro.runtime.metrics import EngineMetrics, Timer

__all__ = ["refine"]


#: When the transitive pass would visit more than this fraction of all
#: edges, the iteration is refined in *dense mode*: the aggregation is
#: rebuilt outright from the refined previous values, one vectorised
#: sweep over every edge.  The sparse path evaluates two contributions
#: per edge (old to retract, new to propagate) plus set bookkeeping, so
#: it only pays off while the affected region is genuinely small --
#: this is the refinement-side analogue of Ligra's push/pull duality
#: and of the paper's computation-aware execution switching.
DENSE_REFINE_FRACTION = 0.3


def refine(
    algorithm: IncrementalAlgorithm,
    mutation: MutationResult,
    history: DependencyHistory,
    metrics: EngineMetrics,
    pruning: PruningPolicy,
    mode: str = "delta",
    dense_fraction: float = DENSE_REFINE_FRACTION,
    backend: Optional[ExecutionBackend] = None,
) -> Tuple[DeltaState, DependencyHistory]:
    """Refine tracked values for one mutation; see module docstring.

    Returns ``(state, new_history)``: the dense rolling state of the
    refined run at the tracked horizon (ready for hybrid forward
    execution) and the refined run's own dependency history.
    """
    with trace.span("refine", horizon=history.horizon,
                    additions=int(mutation.add_src.size),
                    deletions=int(mutation.del_src.size)), \
            Timer(metrics, "refine"):
        return _Refiner(algorithm, mutation, history, metrics,
                        pruning, mode, dense_fraction, backend).run()


class _Refiner:
    def __init__(self, algorithm, mutation, history, metrics, pruning, mode,
                 dense_fraction=DENSE_REFINE_FRACTION, backend=None):
        self.algorithm = algorithm
        self.mutation = mutation
        self.history = history
        self.metrics = metrics
        self.pruning = pruning
        self.mode = mode
        self.dense_fraction = dense_fraction
        self.backend = resolve_backend(backend)
        self.new_graph = mutation.new_graph
        self.old_graph = mutation.old_graph

        # Extended bases: initial values are deterministic per vertex id,
        # so the old run replays unchanged over the grown id space.
        self.initial = algorithm.initial_values(self.new_graph)
        self.identity = algorithm.identity_aggregate(self.new_graph.num_vertices)
        self.old_roll = history.rolling(
            extended_initial=self.initial, extended_identity=self.identity
        )

        # Vertices whose contribution function changed (e.g. PageRank
        # out-degree); constant across iterations.
        self.contrib_params = algorithm.contribution_params_changed(mutation)
        # Vertices whose apply step changed, plus brand-new vertices: the
        # extended old run never applied them, so every refined iteration
        # must (their correct value may differ from the initial fill).
        new_ids = np.arange(
            mutation.old_graph.num_vertices,
            self.new_graph.num_vertices,
            dtype=np.int64,
        )
        self.apply_params = np.union1d(
            algorithm.apply_params_changed(mutation), new_ids
        )
        self.added_mask = mutation.added_edge_mask()

    # ------------------------------------------------------------------
    def run(self) -> Tuple[DeltaState, DependencyHistory]:
        algorithm = self.algorithm
        num_vertices = self.new_graph.num_vertices
        new_history = DependencyHistory(self.initial, self.identity)

        c_prev = self.initial.copy()       # c^T_{i-1} of the refined run
        c_cur = self.initial.copy()        # c^T_i (latest completed)
        g_cur = self.identity.copy()       # g^T_i
        # Vertices where the refined run's value differs from the old
        # run's at the latest completed iteration (transitive impact).
        diverged = np.empty(0, dtype=np.int64)

        for index in range(self.history.horizon):
            with trace.span("iteration", index=index + 1) as span:
                self.old_roll.advance()
                self.metrics.refinement_iterations += 1

                g_before = g_cur               # g^T_{i-1}
                c_before = c_cur               # c^T_{i-1}
                sources = np.union1d(diverged, self.contrib_params)
                if self._dense_preferred(sources):
                    span.tag(mode="dense")
                    g_cur, touched_candidates = self._refine_dense(c_before)
                elif algorithm.aggregation.decomposable:
                    span.tag(mode="decomposable")
                    g_cur, touched_candidates = self._refine_decomposable(
                        sources, c_before
                    )
                else:
                    span.tag(mode="reevaluate")
                    g_cur, touched_candidates = self._refine_by_reevaluation(
                        sources, c_before
                    )

                if touched_candidates is None:
                    touched = np.arange(num_vertices, dtype=np.int64)
                else:
                    touched = np.union1d(touched_candidates,
                                         self.apply_params)
                    if algorithm.uses_previous_value:
                        # Self-dependent applies (e.g. SSSP's self-min)
                        # must re-run wherever the vertex's own value
                        # diverged.
                        touched = np.union1d(touched, diverged)

                c_new = self.old_roll.c.copy()
                if touched.size:
                    self.backend.count_vertices(self.new_graph, touched,
                                                self.metrics)
                    previous = (
                        c_before[touched] if algorithm.uses_previous_value
                        else None
                    )
                    c_new[touched] = algorithm.apply(
                        self.new_graph, g_cur[touched], touched, previous
                    )
                    moved = algorithm.values_changed(
                        self.old_roll.c[touched], c_new[touched]
                    )
                    diverged = touched[moved]
                else:
                    diverged = np.empty(0, dtype=np.int64)
                span.tag(touched=int(touched.size),
                         diverged=int(diverged.size))

                self._record(new_history, g_before, g_cur, c_before, c_new,
                             num_vertices)
                c_prev = c_before
                c_cur = c_new

        frontier = _tolerant_changed(algorithm, c_prev, c_cur)
        state = DeltaState(
            values=c_cur,
            prev_values=c_prev,
            aggregate=g_cur,
            frontier=frontier,
            iteration=self.history.horizon,
        )
        return state, new_history

    # ------------------------------------------------------------------
    def _dense_preferred(self, sources) -> bool:
        """Switch to a full rebuild when the sparse transitive pass would
        cost more than a dense sweep (see DENSE_REFINE_FRACTION)."""
        num_edges = self.new_graph.num_edges
        if num_edges == 0 or not sources.size:
            return False
        out_degrees = self.new_graph.out_degrees()
        transitive = int(out_degrees[sources].sum())
        affected = (
            transitive + self.mutation.add_src.size
            + self.mutation.del_src.size
        )
        return affected > num_edges * self.dense_fraction

    def _refine_dense(self, c_prev):
        """Dense-mode refinement: rebuild g^T_i outright from c^T_{i-1}.

        Mathematically identical to splicing every incremental operator,
        but a single vectorised sweep; returns ``None`` candidates to
        signal that every vertex must be re-applied.
        """
        algorithm = self.algorithm
        g_new = algorithm.identity_aggregate(self.new_graph.num_vertices)
        src, dst, weight = self.backend.gather_all(self.new_graph,
                                                   self.metrics)
        if src.size:
            contribs = algorithm.contributions(
                self.new_graph, c_prev[src], src, dst, weight
            )
            self.backend.scatter(self.new_graph, algorithm.aggregation,
                                 g_new, dst, contribs, self.metrics)
        return g_new, None

    def _refine_decomposable(self, sources, c_prev):
        """Start from the old aggregate and splice ⊎ / ⋃– / ⋃△ updates."""
        algorithm = self.algorithm
        agg = algorithm.aggregation
        mutation = self.mutation
        g_new = self.old_roll.g.copy()

        # ⊎ : contributions arriving over added edges, from refined values.
        if mutation.add_src.size:
            self.metrics.count_edges(mutation.add_src.size)
            contribs = algorithm.contributions(
                self.new_graph,
                c_prev[mutation.add_src],
                mutation.add_src, mutation.add_dst, mutation.add_weight,
            )
            self.backend.scatter(self.new_graph, agg, g_new,
                                 mutation.add_dst, contribs, self.metrics)

        # ⋃– : old contributions leaving over deleted edges, reproduced
        # on the fly from the old run's values and the old snapshot.
        # Destinations live in the new snapshot's vertex space, so the
        # retract is sharded against the new graph's partition.
        if mutation.del_src.size:
            self.metrics.count_edges(mutation.del_src.size)
            contribs = algorithm.contributions(
                self.old_graph,
                self.old_roll.c_prev[mutation.del_src],
                mutation.del_src, mutation.del_dst, mutation.del_weight,
            )
            self.backend.scatter_retract(self.new_graph, agg, g_new,
                                         mutation.del_dst, contribs,
                                         self.metrics)

        # ⋃△ : retained out-edges of changed sources swap old for new.
        dsts = np.empty(0, dtype=np.int64)
        if sources.size:
            src_rep, slots = self.new_graph.out_edge_slots(sources)
            retained = ~self.added_mask[slots]
            src_rep, slots = src_rep[retained], slots[retained]
            if src_rep.size:
                dsts = self.new_graph.out_targets[slots]
                weights = self.new_graph.out_weights[slots]
                self.metrics.count_edges(src_rep.size)
                old_contribs = algorithm.contributions(
                    self.old_graph, self.old_roll.c_prev[src_rep],
                    src_rep, dsts, weights,
                )
                new_contribs = algorithm.contributions(
                    self.new_graph, c_prev[src_rep], src_rep, dsts, weights,
                )
                if self.mode == "delta":
                    self.backend.scatter_delta(
                        self.new_graph, agg, g_new, dsts,
                        new_contribs, old_contribs, self.metrics,
                    )
                else:
                    self.backend.scatter_retract(
                        self.new_graph, agg, g_new, dsts, old_contribs,
                        self.metrics,
                    )
                    self.metrics.count_edges(src_rep.size)
                    self.backend.scatter(self.new_graph, agg, g_new, dsts,
                                         new_contribs, self.metrics)

        touched = np.unique(
            np.concatenate([mutation.add_dst, mutation.del_dst, dsts])
        )
        return g_new, touched

    def _refine_by_reevaluation(self, sources, c_prev):
        """Non-decomposable path: pull full input sets for affected
        targets from the mutated graph (section 3.3 re-evaluation)."""
        algorithm = self.algorithm
        mutation = self.mutation
        g_new = self.old_roll.g.copy()

        dsts = np.empty(0, dtype=np.int64)
        if sources.size:
            _, dsts, _ = self.new_graph.out_edges_of(sources)
        touched = np.unique(
            np.concatenate([mutation.add_dst, mutation.del_dst, dsts])
        )
        if touched.size:
            g_new[touched] = algorithm.aggregation.identity_value()
            in_src, in_dst, in_weight = self.backend.gather_in(
                self.new_graph, touched, self.metrics
            )
            if in_src.size:
                contribs = algorithm.contributions(
                    self.new_graph, c_prev[in_src], in_src, in_dst, in_weight
                )
                self.backend.scatter(self.new_graph, algorithm.aggregation,
                                     g_new, in_dst, contribs, self.metrics)
        return g_new, touched

    # ------------------------------------------------------------------
    def _record(self, new_history, g_prev, g_cur, c_prev, c_cur,
                num_vertices):
        if self.pruning.vertical:
            g_idx = np.flatnonzero(_exact_changed_rows(g_prev, g_cur))
            c_idx = np.flatnonzero(_exact_changed_rows(c_prev, c_cur))
        else:
            g_idx = np.arange(num_vertices, dtype=np.int64)
            c_idx = g_idx
        new_history.record(g_idx, g_cur[g_idx], c_idx, c_cur[c_idx])


def _exact_changed_rows(old: np.ndarray, new: np.ndarray) -> np.ndarray:
    diff = old != new
    while diff.ndim > 1:
        diff = diff.any(axis=-1)
    return diff


def _tolerant_changed(algorithm, old: np.ndarray, new: np.ndarray) -> np.ndarray:
    return np.flatnonzero(algorithm.values_changed(old, new))
