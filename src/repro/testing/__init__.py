"""Cross-engine differential fuzzing and equivalence checking.

The paper validates every experiment by comparing incremental results
against a from-scratch synchronous run on the mutated graph (section
5.1); Table 1 quantifies the silent corruption that appears without that
discipline.  This package mechanises the check as a subsystem:

- :mod:`repro.testing.workloads` -- deterministic seeded generation of
  graphs, algorithm configs, and adversarial mutation schedules;
- :mod:`repro.testing.oracle` -- drives one workload through every
  applicable engine (GraphBolt refinement, GB-Reset restart, Ligra
  restart, KickStarter, mini differential dataflow) and checks per-batch
  BSP-equivalence plus work-metric sanity;
- :mod:`repro.testing.shrinker` -- minimises a failing workload to the
  smallest graph and shortest mutation prefix that still diverge, and
  renders it as a ready-to-paste pytest test;
- :mod:`repro.testing.fuzz` -- the ``repro fuzz`` campaign driver;
- :mod:`repro.testing.faults` -- deterministic failpoints (seeded crash
  and transient-fault injection at named sites across the serving and
  recovery stack);
- :mod:`repro.testing.crash` -- the ``repro fuzz --crash`` kill-and-
  recover fuzzer.  Imported lazily (``from repro.testing import
  crash``), *not* re-exported here: it imports the serving stack, which
  itself imports :mod:`repro.testing.faults`.
"""

from repro.testing.faults import (
    KNOWN_SITES,
    FailpointRegistry,
    InjectedCrash,
    InjectedFault,
    get_failpoints,
    scoped_failpoints,
    set_failpoints,
)
from repro.testing.fuzz import FuzzOutcome, parse_budget, run_fuzz
from repro.testing.oracle import (
    Divergence,
    WorkloadReport,
    check_workload,
    compare_snapshots,
)
from repro.testing.runners import (
    REFERENCE_ENGINE,
    available_engines,
    build_runner,
)
from repro.testing.shrinker import ShrinkResult, shrink, to_pytest
from repro.testing.workloads import (
    FUZZ_ALGORITHMS,
    AlgorithmProfile,
    Workload,
    generate_workload,
)

__all__ = [
    "AlgorithmProfile",
    "Divergence",
    "FUZZ_ALGORITHMS",
    "FailpointRegistry",
    "FuzzOutcome",
    "InjectedCrash",
    "InjectedFault",
    "KNOWN_SITES",
    "REFERENCE_ENGINE",
    "ShrinkResult",
    "Workload",
    "WorkloadReport",
    "available_engines",
    "build_runner",
    "check_workload",
    "compare_snapshots",
    "generate_workload",
    "get_failpoints",
    "parse_budget",
    "run_fuzz",
    "scoped_failpoints",
    "set_failpoints",
    "shrink",
    "to_pytest",
]
