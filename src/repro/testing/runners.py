"""Engine adapters for the equivalence oracle.

Every engine family in the repository is wrapped behind the streaming
runner protocol of :mod:`repro.bench.harness` -- ``setup(graph)`` then
``apply(batch) -> values`` with an :class:`EngineMetrics` attached -- so
the oracle can drive an identical mutation stream through all of them
and compare snapshots pairwise:

==============  =====================================================
``ligra``       full restart (the oracle's reference truth)
``gbreset``     delta/selective-scheduling restart
``graphbolt``   dependency-driven refinement
``naive``       GraphBolt with ``strategy="naive"`` (deliberately
                incorrect; used by the plant-a-bug self-test only)
``kickstarter`` trim-and-propagate trees (monotonic path algorithms)
``dataflow``    mini differential dataflow (SSSP only, small graphs)
==============  =====================================================
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.bench.harness import (
    DeltaRunner,
    GraphBoltRunner,
    LigraRunner,
    StreamingRunner,
)
from repro.core.engine import GraphBoltEngine
from repro.dataflow.graph_programs import DifferentialSSSP
from repro.graph.csr import CSRGraph
from repro.graph.mutation import MutationBatch
from repro.kickstarter.engine import KickStarterEngine
from repro.runtime.exec import ExecutionBackend
from repro.runtime.metrics import EngineMetrics
from repro.testing.workloads import AlgorithmProfile

__all__ = [
    "REFERENCE_ENGINE",
    "available_engines",
    "build_runner",
]

#: The engine whose output is the oracle's ground truth: a from-scratch
#: synchronous run on each mutated snapshot (paper section 5.1).
REFERENCE_ENGINE = "ligra"

#: Differential dataflow unrolls one stage per possible hop, so gate it
#: to graphs where that stays affordable.
DATAFLOW_MAX_VERTICES = 40


class NaiveRunner(StreamingRunner):
    """GraphBolt with refinement disabled -- the known-wrong baseline of
    the paper's Figure 2 / Table 1, kept for harness self-tests."""

    name = "GraphBolt-naive"

    def setup(self, graph: CSRGraph) -> np.ndarray:
        self.engine = GraphBoltEngine(
            self.algorithm_factory(),
            num_iterations=self.num_iterations,
            until_convergence=self.until_convergence,
            strategy="naive",
            metrics=self.metrics,
            backend=self.backend,
        )
        return self.engine.run(graph)

    def apply(self, batch: MutationBatch) -> np.ndarray:
        return self.engine.apply_mutations(batch)

    @property
    def graph(self) -> CSRGraph:
        return self.engine.graph


class KickStarterRunner(StreamingRunner):
    """Adapter for :class:`KickStarterEngine` (builds on ``setup``)."""

    name = "KickStarter"

    def __init__(self, algorithm_factory, num_iterations=None,
                 until_convergence: bool = False,
                 unit_weights: bool = False,
                 backend: Optional[ExecutionBackend] = None) -> None:
        super().__init__(algorithm_factory, num_iterations,
                         until_convergence, backend)
        self.unit_weights = unit_weights
        self.engine: Optional[KickStarterEngine] = None

    def setup(self, graph: CSRGraph) -> np.ndarray:
        self.engine = KickStarterEngine(
            graph, source=0, unit_weights=self.unit_weights,
            metrics=self.metrics, backend=self.backend,
        )
        return self.engine.values

    def apply(self, batch: MutationBatch) -> np.ndarray:
        return self.engine.apply_mutations(batch)

    @property
    def graph(self) -> CSRGraph:
        return self.engine.graph


class DataflowRunner(StreamingRunner):
    """Adapter for the mini differential-dataflow SSSP program."""

    name = "DifferentialDataflow"

    def setup(self, graph: CSRGraph) -> np.ndarray:
        self.engine = DifferentialSSSP(
            graph, source=0,
            num_stages=graph.num_vertices + 4,
            metrics=self.metrics,
            backend=self.backend,
        )
        return self.engine.values

    def apply(self, batch: MutationBatch) -> np.ndarray:
        return self.engine.apply_mutations(batch)

    @property
    def graph(self) -> CSRGraph:
        return self.engine.graph


def available_engines(profile: AlgorithmProfile,
                      num_vertices: int,
                      include_naive: bool = False) -> List[str]:
    """Engine keys applicable to one workload, reference first."""
    engines = [REFERENCE_ENGINE, "gbreset", "graphbolt"]
    if include_naive:
        engines.append("naive")
    if profile.kickstarter is not None:
        engines.append("kickstarter")
    if profile.dataflow == "sssp" and num_vertices <= DATAFLOW_MAX_VERTICES:
        engines.append("dataflow")
    return engines


def build_runner(engine: str, profile: AlgorithmProfile,
                 backend: Optional[ExecutionBackend] = None
                 ) -> StreamingRunner:
    """Instantiate one adapter for one workload's algorithm profile."""
    common = dict(
        algorithm_factory=profile.factory,
        num_iterations=profile.num_iterations,
        until_convergence=profile.until_convergence,
        backend=backend,
    )
    if engine == "ligra":
        return LigraRunner(**common)
    if engine == "gbreset":
        return DeltaRunner(**common)
    if engine == "graphbolt":
        return GraphBoltRunner(**common)
    if engine == "naive":
        return NaiveRunner(**common)
    if engine == "kickstarter":
        if profile.kickstarter is None:
            raise ValueError(
                f"{profile.key} has no KickStarter formulation"
            )
        return KickStarterRunner(
            unit_weights=profile.kickstarter == "unit", **common
        )
    if engine == "dataflow":
        if profile.dataflow != "sssp":
            raise ValueError(f"{profile.key} has no dataflow program")
        return DataflowRunner(**common)
    raise ValueError(f"unknown engine {engine!r}")
