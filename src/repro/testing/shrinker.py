"""Failure minimisation: shrink a diverging workload to its essence.

Given a workload the oracle rejects, the shrinker searches for the
smallest graph and the shortest mutation prefix that still diverge,
using a delta-debugging loop over four reduction passes:

1. **schedule truncation** -- keep only the prefix up to the first
   failing batch;
2. **batch thinning** -- drop individual additions/deletions (and the
   ``grow_to`` marker) from each remaining batch;
3. **vertex removal** -- delete a vertex outright, remapping higher ids
   down, dropping every edge and mutation that touched it;
4. **edge thinning** -- drop initial-snapshot edges.

Each candidate reduction is re-checked with the caller's failure
predicate, so the output is guaranteed to still fail.  The result can be
rendered as a ready-to-paste pytest module with :func:`to_pytest`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.graph.mutation import MutationBatch
from repro.testing.workloads import Workload

__all__ = ["ShrinkResult", "shrink", "to_pytest"]

Edge = Tuple[int, int, float]
Pair = Tuple[int, int]


class _BudgetExhausted(Exception):
    pass


@dataclass
class ShrinkResult:
    workload: Workload
    checks: int
    #: True when the budget ran out before the reduction reached a
    #: fixpoint (the workload is still failing, just maybe not minimal).
    exhausted: bool = False


@dataclass
class _BatchSpec:
    """A mutable, shrinkable view of one MutationBatch."""

    additions: List[Edge]
    deletions: List[Pair]
    grow_to: Optional[int]

    @classmethod
    def of(cls, batch: MutationBatch) -> "_BatchSpec":
        return cls(
            additions=list(batch.additions()),
            deletions=list(batch.deletions()),
            grow_to=batch.grow_to,
        )

    def build(self) -> MutationBatch:
        return MutationBatch.from_edges(
            additions=[(u, v) for u, v, _ in self.additions],
            deletions=list(self.deletions),
            add_weights=[w for _, _, w in self.additions],
            grow_to=self.grow_to,
        )


def _rebuild(workload: Workload, specs: Sequence[_BatchSpec]) -> Workload:
    return workload.with_schedule(
        [spec.build() for spec in specs],
        kinds=workload.kinds[: len(specs)],
    )


def _ddmin(items: list, still_failing: Callable[[list], bool]) -> list:
    """Greedy chunked minimisation of one list."""
    chunk = max(1, len(items) // 2)
    while items:
        index = 0
        shrunk = False
        while index < len(items):
            candidate = items[:index] + items[index + chunk:]
            if still_failing(candidate):
                items = candidate
                shrunk = True
            else:
                index += chunk
        if chunk == 1 and not shrunk:
            break
        chunk = max(1, chunk // 2)
    return items


def _drop_vertex(workload: Workload, vertex: int) -> Optional[Workload]:
    """Remove one vertex, remapping every id above it down by one."""
    if workload.num_vertices <= 1:
        return None

    def remap(v: int) -> int:
        return v - 1 if v > vertex else v

    edges = [
        (remap(u), remap(v), w)
        for u, v, w in workload.edges
        if u != vertex and v != vertex
    ]
    schedule = []
    for batch in workload.schedule:
        adds = [
            (remap(u), remap(v), w)
            for u, v, w in batch.additions()
            if u != vertex and v != vertex
        ]
        dels = [
            (remap(u), remap(v))
            for u, v in batch.deletions()
            if u != vertex and v != vertex
        ]
        grow_to = batch.grow_to
        if grow_to is not None and vertex < grow_to:
            grow_to -= 1
        schedule.append(MutationBatch.from_edges(
            additions=[(u, v) for u, v, _ in adds],
            deletions=dels,
            add_weights=[w for _, _, w in adds],
            grow_to=grow_to,
        ))
    return replace(
        workload,
        num_vertices=workload.num_vertices - 1,
        edges=edges,
        schedule=schedule,
    )


def _tight_vertex_count(workload: Workload) -> Optional[Workload]:
    """Drop trailing never-referenced vertex ids in one step."""
    highest = -1
    for u, v, _ in workload.edges:
        highest = max(highest, u, v)
    for batch in workload.schedule:
        highest = max(highest, batch.max_vertex())
    tight = highest + 1
    if 0 < tight < workload.num_vertices:
        return replace(workload, num_vertices=tight)
    return None


def shrink(
    workload: Workload,
    is_failing: Callable[[Workload], bool],
    max_checks: int = 500,
) -> ShrinkResult:
    """Minimise a failing workload; ``is_failing`` must be ``True`` for
    the input and stays ``True`` for the returned workload."""
    if not is_failing(workload):
        raise ValueError("shrink() needs a failing workload to start from")
    checks = 0

    def failing(candidate: Workload) -> bool:
        nonlocal checks
        if checks >= max_checks:
            raise _BudgetExhausted
        checks += 1
        return is_failing(candidate)

    best = workload
    try:
        # Pass 1: shortest failing schedule prefix.
        for length in range(len(best.schedule) + 1):
            candidate = best.with_schedule(best.schedule[:length])
            if failing(candidate):
                best = candidate
                break

        progress = True
        while progress:
            progress = False

            # Pass 2: thin each batch's additions/deletions/growth.
            specs = [_BatchSpec.of(batch) for batch in best.schedule]
            for spec in specs:
                def rebuild_with(adds=None, dels=None):
                    saved = spec.additions, spec.deletions
                    if adds is not None:
                        spec.additions = adds
                    if dels is not None:
                        spec.deletions = dels
                    candidate = _rebuild(best, specs)
                    spec.additions, spec.deletions = saved
                    return candidate

                before = (len(spec.additions), len(spec.deletions),
                          spec.grow_to)
                spec.additions = _ddmin(
                    spec.additions,
                    lambda adds: failing(rebuild_with(adds=adds)),
                )
                spec.deletions = _ddmin(
                    spec.deletions,
                    lambda dels: failing(rebuild_with(dels=dels)),
                )
                if spec.grow_to is not None:
                    saved_grow = spec.grow_to
                    spec.grow_to = None
                    if not failing(_rebuild(best, specs)):
                        spec.grow_to = saved_grow
                if before != (len(spec.additions), len(spec.deletions),
                              spec.grow_to):
                    progress = True
            best = _rebuild(best, specs)

            # Pass 3: remove vertices, highest id first.
            vertex = best.num_vertices - 1
            while vertex > 0:
                candidate = _drop_vertex(best, vertex)
                if candidate is not None and failing(candidate):
                    best = candidate
                    progress = True
                vertex -= 1
            tight = _tight_vertex_count(best)
            if tight is not None and failing(tight):
                best = tight
                progress = True

            # Pass 4: thin the initial edge list.
            def edges_failing(edges: List[Edge]) -> bool:
                return failing(replace(best, edges=edges))

            thinned = _ddmin(list(best.edges), edges_failing)
            if len(thinned) < len(best.edges):
                best = replace(best, edges=thinned)
                progress = True
    except _BudgetExhausted:
        return ShrinkResult(workload=best, checks=checks, exhausted=True)
    return ShrinkResult(workload=best, checks=checks, exhausted=False)


# ----------------------------------------------------------------------
# Repro emission
# ----------------------------------------------------------------------
def _batch_source(batch: MutationBatch, indent: str) -> str:
    parts = []
    additions = list(batch.additions())
    if additions:
        parts.append(
            "additions=" + repr([(u, v) for u, v, _ in additions])
        )
        parts.append(
            "add_weights=" + repr([w for _, _, w in additions])
        )
    deletions = list(batch.deletions())
    if deletions:
        parts.append("deletions=" + repr(deletions))
    if batch.grow_to is not None:
        parts.append(f"grow_to={batch.grow_to}")
    inner = (",\n" + indent + "    ").join(parts)
    if not parts:
        return indent + "MutationBatch.empty(),"
    return (
        f"{indent}MutationBatch.from_edges(\n{indent}    {inner},\n"
        f"{indent}),"
    )


def to_pytest(
    workload: Workload,
    engines: Optional[Sequence[str]] = None,
    include_naive: bool = False,
    expect_divergence: bool = False,
) -> str:
    """Render a workload as a standalone pytest regression test.

    ``expect_divergence`` inverts the assertion (used when committing a
    plant-a-bug repro that *documents* a known-bad strategy).
    """
    lines = [
        '"""Auto-generated regression test (repro.testing.shrinker).',
        "",
        f"Fuzz seed {workload.seed}, algorithm {workload.algorithm}.",
        'Regenerate context with: python -m repro fuzz --seed '
        f'{workload.seed} --workloads 1',
        '"""',
        "",
        "from repro.graph.mutation import MutationBatch",
        "from repro.testing.oracle import check_workload",
        "from repro.testing.workloads import Workload",
        "",
        "",
        f"def test_fuzz_seed_{workload.seed}_{workload.algorithm.replace('-', '_')}():",
        "    workload = Workload(",
        f"        seed={workload.seed},",
        f"        algorithm={workload.algorithm!r},",
        f"        num_vertices={workload.num_vertices},",
        f"        edges={workload.edges!r},",
        "        schedule=[",
    ]
    for batch in workload.schedule:
        lines.append(_batch_source(batch, " " * 12))
    call_args = ["workload"]
    if engines:
        call_args.append(f"engines={list(engines)!r}")
    if include_naive:
        call_args.append("include_naive=True")
    lines += [
        "        ],",
        "    )",
        f"    report = check_workload({', '.join(call_args)})",
    ]
    if expect_divergence:
        lines.append(
            "    assert not report.ok, 'expected the planted divergence'"
        )
    else:
        lines += [
            "    assert report.ok, \"\\n\".join(",
            "        str(d) for d in report.divergences",
            "    )",
        ]
    return "\n".join(lines) + "\n"
