"""The ``repro fuzz`` campaign driver.

Generates seeded workloads, checks each with the cross-engine oracle,
and on divergence shrinks the failure and prints a ready-to-paste pytest
repro.  Two stopping conditions compose: a workload count and a
wall-clock budget (whichever hits first).

``plant_bug=True`` flips the harness into self-test mode: the known-bad
``strategy="naive"`` engine joins the roster and the campaign *passes*
only if the oracle catches it diverging and the shrinker reduces the
failure -- proof that the pipeline detects Table 1-style divergence
rather than passing vacuously.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.obs import JsonlJournal, Tracer, trace
from repro.testing.oracle import WorkloadReport, check_workload
from repro.testing.shrinker import shrink, to_pytest
from repro.testing.workloads import Workload, generate_workload

__all__ = ["FuzzOutcome", "parse_budget", "run_fuzz"]


@dataclass
class FuzzOutcome:
    """Summary of one fuzzing campaign."""

    workloads_run: int = 0
    failures: List[WorkloadReport] = field(default_factory=list)
    shrunk: List[Workload] = field(default_factory=list)
    repros: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    budget_exhausted: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures


def parse_budget(text: Optional[str]) -> Optional[float]:
    """Parse ``"30s"``, ``"2m"``, ``"45"`` into seconds (None passes)."""
    if text is None:
        return None
    match = re.fullmatch(r"\s*(\d+(?:\.\d+)?)\s*([smh]?)\s*", text)
    if not match:
        raise ValueError(
            f"bad budget {text!r}; use e.g. '45', '30s', '2m', '1h'"
        )
    value = float(match.group(1))
    unit = {"": 1.0, "s": 1.0, "m": 60.0, "h": 3600.0}[match.group(2)]
    return value * unit


def _journal_failure(journal: JsonlJournal, workload: Workload,
                     seed: int, report: WorkloadReport,
                     engines, include_naive: bool) -> None:
    """Append a ``repro`` marker and a traced replay of ``workload``."""
    journal.write({
        "type": "repro",
        "seed": seed,
        "workload": workload.describe(),
        "divergences": [str(d) for d in report.divergences],
    })
    with trace.activated(Tracer(sink=journal)):
        check_workload(workload, engines=engines,
                       include_naive=include_naive)


def run_fuzz(
    seed: int = 0,
    workloads: int = 25,
    budget_seconds: Optional[float] = None,
    algorithms: Optional[Sequence[str]] = None,
    engines: Optional[Sequence[str]] = None,
    max_vertices: int = 64,
    max_batches: int = 6,
    do_shrink: bool = True,
    shrink_checks: int = 300,
    plant_bug: bool = False,
    trace_path: Optional[str] = None,
    emit: Callable[[str], None] = print,
) -> FuzzOutcome:
    """Run a fuzzing campaign; see module docstring.

    ``trace_path`` journals a span dump of every failure: after
    shrinking, the minimised workload is replayed under a recording
    tracer and its span tree is appended (preceded by a ``repro``
    marker record) -- span ids depend only on control flow, so the
    dump is reproducible alongside the emitted pytest repro.
    """
    outcome = FuzzOutcome()
    start = time.perf_counter()
    journal = (JsonlJournal.open(trace_path) if trace_path is not None
               else None)

    for index in range(workloads):
        if budget_seconds is not None:
            if time.perf_counter() - start >= budget_seconds:
                outcome.budget_exhausted = True
                emit(f"budget exhausted after {outcome.workloads_run} "
                     f"workload(s)")
                break
        workload = generate_workload(
            seed + index,
            algorithms=algorithms,
            max_vertices=max_vertices,
            max_batches=max_batches,
        )
        tick = time.perf_counter()
        report = check_workload(workload, engines=engines,
                                include_naive=plant_bug)
        seconds = time.perf_counter() - tick
        outcome.workloads_run += 1
        status = "OK" if report.ok else "DIVERGED"
        emit(f"[{index + 1}/{workloads}] {report.summary()} "
             f"({seconds:.2f}s) {status}")
        if report.ok:
            continue

        outcome.failures.append(report)
        for divergence in report.divergences:
            emit(f"    {divergence}")
        if not do_shrink:
            if journal is not None:
                _journal_failure(journal, workload, seed + index,
                                 report, engines, plant_bug)
                emit(f"    trace dump -> {trace_path}")
            continue

        def is_failing(candidate: Workload) -> bool:
            return not check_workload(
                candidate, engines=engines, include_naive=plant_bug,
                stop_at_first=True,
            ).ok

        result = shrink(workload, is_failing, max_checks=shrink_checks)
        outcome.shrunk.append(result.workload)
        if journal is not None:
            _journal_failure(journal, result.workload, seed + index,
                             report, engines, plant_bug)
            emit(f"    trace dump -> {trace_path}")
        emit(
            f"    shrunk to V={result.workload.num_vertices}, "
            f"E={len(result.workload.edges)}, "
            f"batches={len(result.workload.schedule)}, "
            f"mutations={result.workload.total_mutations()} "
            f"({result.checks} oracle checks"
            + (", budget exhausted)" if result.exhausted else ")")
        )
        repro = to_pytest(result.workload, engines=engines,
                          include_naive=plant_bug,
                          expect_divergence=plant_bug)
        outcome.repros.append(repro)
        emit("    --- pytest repro " + "-" * 44)
        for line in repro.splitlines():
            emit("    " + line)
        emit("    " + "-" * 61)

    if journal is not None:
        journal.close()
    outcome.elapsed_seconds = time.perf_counter() - start
    if plant_bug:
        caught = any(
            divergence.engine == "naive"
            for report in outcome.failures
            for divergence in report.divergences
        )
        if caught:
            emit(
                f"plant-a-bug: oracle caught the naive strategy in "
                f"{outcome.elapsed_seconds:.1f}s -- harness is live"
            )
        else:
            emit("plant-a-bug: naive strategy was NOT detected -- the "
                 "oracle is passing vacuously")
    else:
        emit(
            f"fuzz: {outcome.workloads_run} workload(s), "
            f"{len(outcome.failures)} failure(s), "
            f"{outcome.elapsed_seconds:.1f}s"
        )
    return outcome
