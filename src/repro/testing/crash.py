"""The crash-recovery fuzzer (``repro fuzz --crash``).

Property under test: **recovery is lossless**.  For a seeded workload,
killing the serving process at *any* failpoint and recovering from disk
(checkpoint + WAL tail, :mod:`repro.recovery`) must leave the main
loop's values **bit-for-bit equal** to an uninterrupted run of the same
schedule -- the PR-1 oracle comparison with tolerance ``0.0``.

Each round:

1. generates a workload with the PR-1 fuzzer
   (:func:`repro.testing.workloads.generate_workload`);
2. runs it through a plain (non-durable) server -- the ground truth;
3. runs it again through a durable server in a fresh state directory,
   with an :class:`~repro.testing.faults.InjectedCrash` armed at a
   seeded ``(site, hit)`` drawn from
   :data:`repro.testing.faults.KNOWN_SITES`; when the "process dies"
   the driver discards the in-memory server (and manager -- a fresh one
   is built from disk, exactly like a restarted process) and recovers;
4. compares final values bit-for-bit and the ingested count exactly.

``deterministic_site_sweep`` runs one fixed workload across *every*
registered site -- the acceptance gate used by
``tests/recovery/test_crash_equivalence.py``.

A mismatch writes the state directory plus a replay script into
``artifacts_dir`` so CI can upload the WAL and the repro.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.obs.registry import get_registry, scoped_registry
from repro.recovery.manager import RecoveryManager
from repro.serving.server import StreamingAnalyticsServer
from repro.testing import faults
from repro.testing.faults import InjectedCrash, scoped_failpoints
from repro.testing.oracle import compare_snapshots
from repro.testing.workloads import Workload, generate_workload

__all__ = [
    "ChaosRound",
    "CrashFuzzOutcome",
    "CrashRound",
    "REPLICATION_SCENARIOS",
    "StorageRound",
    "chaos_convergence_equivalence",
    "chaos_convergence_sweep",
    "chaos_dead_letter_round",
    "chaos_fault_coverage",
    "crash_recovery_equivalence",
    "deterministic_site_sweep",
    "replicated_crash_equivalence",
    "replicated_scenario_sweep",
    "resilient_crash_equivalence",
    "resilient_site_sweep",
    "run_crash_fuzz",
    "run_plant_fault",
    "storage_crash_round",
    "storage_site_sweep",
]

#: Main-loop window for fuzz servers; small keeps refinement histories
#: (and therefore rounds) cheap while still exercising multi-iteration
#: dependency state.
APPROX_ITERATIONS = 3

#: Sites whose hit budget scales with the schedule length (they fire
#: once per ingested batch) versus rare sites.
_PER_BATCH_SITES = ("wal.append", "wal.append.torn", "engine.refine")


@dataclass
class CrashRound:
    """One seeded kill-and-recover scenario."""

    seed: int
    workload: str
    site: str
    hit: int
    crashes: int = 0
    fired: bool = False
    equivalent: bool = False
    detail: str = ""
    batches: int = 0
    quarantined: int = 0
    torn_truncated: int = 0

    @property
    def ok(self) -> bool:
        return self.equivalent

    def summary(self) -> str:
        status = "OK" if self.ok else f"MISMATCH ({self.detail})"
        if self.crashes:
            fired = f"crashed x{self.crashes}"
        elif self.fired:
            fired = "fault fired"
        else:
            fired = "failpoint never reached"
        return (
            f"seed={self.seed} kill@{self.site}#{self.hit} "
            f"[{fired}, torn={self.torn_truncated}] {status}"
        )


@dataclass
class CrashFuzzOutcome:
    """Summary of one crash-fuzzing campaign."""

    rounds: List[CrashRound] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    artifacts: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(round_.ok for round_ in self.rounds)

    @property
    def crashes_injected(self) -> int:
        return sum(round_.crashes for round_ in self.rounds)


def _uninterrupted_values(workload: Workload) -> np.ndarray:
    """Ground truth: the same schedule with no durability layer at all."""
    profile = workload.profile
    server = StreamingAnalyticsServer(
        profile.factory, workload.build_graph(),
        approx_iterations=APPROX_ITERATIONS,
    )
    for batch in workload.schedule:
        server.ingest(batch)
    return np.asarray(server.approximate_values, dtype=np.float64).copy()


def crash_recovery_equivalence(
    workload: Workload,
    site: str,
    hit: int,
    state_dir: str,
    checkpoint_every: int = 2,
    segment_records: int = 4,
) -> CrashRound:
    """Kill at ``(site, hit)``, recover, and compare bit-for-bit.

    The driver plays the operating system: an
    :class:`InjectedCrash` discards the live server object, and the
    next loop iteration rebuilds a manager *from disk only* -- the
    moral equivalent of restarting the process.  ``recover.replay``
    only executes during recovery, so arming it also arms a first
    ``engine.refine`` crash to get a recovery going.
    """
    profile = workload.profile
    expected = _uninterrupted_values(workload)
    round_ = CrashRound(
        seed=workload.seed, workload=workload.describe(),
        site=site, hit=hit, batches=len(workload.schedule),
    )

    def attach() -> StreamingAnalyticsServer:
        manager = RecoveryManager(
            state_dir, checkpoint_every=checkpoint_every,
            retain=2, segment_records=segment_records,
        )
        if manager.checkpoints():
            return manager.recover(profile.factory)
        return StreamingAnalyticsServer(
            profile.factory, workload.build_graph(),
            approx_iterations=APPROX_ITERATIONS, recovery=manager,
        )

    with scoped_failpoints() as registry:
        registry.arm(site, kind="crash", hit=hit)
        if site == "recover.replay":
            registry.arm("engine.refine", kind="crash", hit=1)
        server: Optional[StreamingAnalyticsServer] = None
        index = 0
        while server is None or index < len(workload.schedule):
            if server is None:
                try:
                    server = attach()
                except InjectedCrash:
                    round_.crashes += 1
                    continue
                index = server.batches_ingested
                continue
            try:
                server.ingest(workload.schedule[index])
                index = server.batches_ingested
            except InjectedCrash:
                round_.crashes += 1
                server.recovery.close()
                server = None
        round_.fired = bool(registry.fired)
        round_.quarantined = len(server.recovery.quarantined)
        round_.torn_truncated = server.recovery.wal.torn_records_truncated
        actual = np.asarray(server.approximate_values, dtype=np.float64)
        server.recovery.close()

    verdict = compare_snapshots(actual, expected, tolerance=0.0)
    if verdict is not None:
        kind, detail, _ = verdict
        round_.detail = f"{kind}: {detail}"
    elif server.batches_ingested != len(workload.schedule):
        round_.detail = (
            f"ingested {server.batches_ingested} of "
            f"{len(workload.schedule)} batches"
        )
    elif round_.quarantined:
        round_.detail = (
            f"{round_.quarantined} batch(es) quarantined on a "
            f"healthy workload"
        )
    else:
        round_.equivalent = True
    return round_


def _choose_site_and_hit(rng: np.random.Generator,
                         schedule_len: int) -> tuple:
    # The random fuzzer drives a plain durable server, which never
    # passes the admission/breaker/deadline sites -- drawing those
    # would be dead rounds.  The resilient sweep covers them.
    site = str(rng.choice(list(faults.DURABLE_SITES)))
    budget = schedule_len if site in _PER_BATCH_SITES else 2
    hit = int(rng.integers(1, max(budget, 1) + 1))
    return site, hit


def _write_repro(artifacts_dir: str, round_: CrashRound,
                 args_hint: str) -> str:
    path = os.path.join(artifacts_dir, f"repro-seed{round_.seed}.txt")
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(
            "crash-recovery mismatch\n"
            f"workload: {round_.workload}\n"
            f"kill site: {round_.site} (hit {round_.hit})\n"
            f"crashes injected: {round_.crashes}\n"
            f"detail: {round_.detail}\n\n"
            "replay with:\n"
            f"  PYTHONPATH=src python -m repro fuzz --crash {args_hint}\n\n"
            "or in pytest:\n"
            "  from repro.testing.crash import "
            "crash_recovery_equivalence\n"
            "  from repro.testing.workloads import generate_workload\n"
            f"  w = generate_workload({round_.seed})\n"
            f"  r = crash_recovery_equivalence(w, {round_.site!r}, "
            f"{round_.hit}, tmp_path)\n"
            "  assert r.ok, r.summary()\n"
        )
    return path


def run_crash_fuzz(
    seed: int = 0,
    rounds: int = 8,
    algorithms: Optional[Sequence[str]] = None,
    max_vertices: int = 32,
    max_batches: int = 6,
    checkpoint_every: int = 2,
    artifacts_dir: Optional[str] = None,
    emit: Callable[[str], None] = print,
) -> CrashFuzzOutcome:
    """A seeded campaign of kill-and-recover rounds; see module doc."""
    outcome = CrashFuzzOutcome()
    start = time.perf_counter()
    for index in range(rounds):
        round_seed = seed + index
        workload = generate_workload(
            round_seed, algorithms=algorithms,
            max_vertices=max_vertices, max_batches=max_batches,
        )
        rng = np.random.default_rng((round_seed, 0xC4A5))
        site, hit = _choose_site_and_hit(rng, len(workload.schedule))
        state_dir = tempfile.mkdtemp(prefix=f"crash-fuzz-{round_seed}-")
        round_ = crash_recovery_equivalence(
            workload, site, hit, state_dir,
            checkpoint_every=checkpoint_every,
        )
        outcome.rounds.append(round_)
        emit(f"[{index + 1}/{rounds}] {round_.summary()}")
        if round_.ok:
            shutil.rmtree(state_dir, ignore_errors=True)
        elif artifacts_dir is not None:
            os.makedirs(artifacts_dir, exist_ok=True)
            kept = os.path.join(artifacts_dir,
                                f"state-seed{round_seed}")
            shutil.move(state_dir, kept)
            hint = (f"--seed {round_seed} --rounds 1 "
                    f"--checkpoint-every {checkpoint_every}")
            repro = _write_repro(artifacts_dir, round_, hint)
            outcome.artifacts.extend([kept, repro])
            emit(f"    WAL + state kept -> {kept}")
            emit(f"    repro -> {repro}")
        else:
            shutil.rmtree(state_dir, ignore_errors=True)
    outcome.elapsed_seconds = time.perf_counter() - start
    emit(
        f"crash fuzz: {len(outcome.rounds)} round(s), "
        f"{outcome.crashes_injected} crash(es) injected, "
        f"{sum(1 for r in outcome.rounds if not r.ok)} mismatch(es), "
        f"{outcome.elapsed_seconds:.1f}s"
    )
    return outcome


def _workload_with_batches(seed: int, minimum: int) -> Workload:
    """First seeded workload with a schedule long enough that every
    site's chosen hit count is actually reachable."""
    for offset in range(64):
        workload = generate_workload(seed + offset,
                                     algorithms=["pagerank"],
                                     max_vertices=24, max_batches=6)
        if len(workload.schedule) >= minimum:
            return workload
    raise RuntimeError("no seeded workload with a long enough schedule")


def deterministic_site_sweep(
    seed: int = 7,
    state_root: Optional[str] = None,
    emit: Callable[[str], None] = lambda _: None,
) -> List[CrashRound]:
    """One fixed workload, killed once at *every* registered site.

    The acceptance gate: every entry must come back ``ok``.
    """
    workload = _workload_with_batches(seed, minimum=3)
    root = state_root or tempfile.mkdtemp(prefix="crash-sweep-")
    results = []
    for site in faults.DURABLE_SITES:
        hit = 2 if site in _PER_BATCH_SITES else 1
        state_dir = os.path.join(root, site.replace(".", "_"))
        round_ = crash_recovery_equivalence(workload, site, hit,
                                            state_dir,
                                            checkpoint_every=2)
        results.append(round_)
        emit(round_.summary())
        if round_.ok:
            shutil.rmtree(state_dir, ignore_errors=True)
    return results


def resilient_crash_equivalence(
    workload: Workload,
    site: str,
    hit: int,
    state_dir: str,
    checkpoint_every: int = 2,
) -> CrashRound:
    """Kill a *resilient* server at ``(site, hit)`` and recover.

    The scenario is built so every admission-layer site actually
    executes: batches go through ``submit`` (hits ``admission.enqueue``
    and WAL-logs before queueing), each batch is followed by a
    deadline-budgeted query (hits ``query.deadline``), and after the
    first batch the breaker is manually tripped with a short cooldown so
    deferred submissions build a non-empty queue and a half-open probe
    fires (hits ``breaker.probe``).

    Equivalence: submit-time WAL logging makes queued-but-unapplied
    batches recoverable -- replay applies them in sequence order, which
    is exactly the order the live FIFO queue would have -- and batch
    application is idempotent (re-adds and absent-deletes are skipped),
    so at-least-once resubmission after a crash cannot fork the state.
    The final values must be bit-for-bit the plain uninterrupted run's,
    and every WAL record must end up either applied or durably
    skip-marked (the "recoverable or provably shed" ledger check).
    """
    from repro.runtime.deadline import StepDeadline
    from repro.serving.resilience import (
        BreakerConfig,
        ResilientAnalyticsServer,
    )

    profile = workload.profile
    expected = _uninterrupted_values(workload)
    round_ = CrashRound(
        seed=workload.seed, workload=workload.describe(),
        site=site, hit=hit, batches=len(workload.schedule),
    )
    # No degraded window: the sweep pins bit-for-bit equality, so probe
    # applies must use the same window as the ground-truth loop.
    breaker_config = BreakerConfig(
        cooldown_submits=2, degraded_approx_iterations=None,
        degraded_admission="coalesce",
    )

    def attach() -> ResilientAnalyticsServer:
        manager = RecoveryManager(
            state_dir, checkpoint_every=checkpoint_every, retain=2,
        )
        make = dict(
            queue_capacity=len(workload.schedule) + 2,
            admission="block", breaker=breaker_config,
        )
        if manager.checkpoints():
            return ResilientAnalyticsServer.recover(
                manager, profile.factory, **make
            )
        server = StreamingAnalyticsServer(
            profile.factory, workload.build_graph(),
            approx_iterations=APPROX_ITERATIONS, recovery=manager,
        )
        return ResilientAnalyticsServer(server, **make)

    schedule = workload.schedule
    with scoped_failpoints() as registry:
        registry.arm(site, kind="crash", hit=hit)
        resilient: Optional[ResilientAnalyticsServer] = None
        index = 0
        tripped = False
        while resilient is None or index < len(schedule):
            if resilient is None:
                try:
                    resilient = attach()
                except InjectedCrash:
                    round_.crashes += 1
                    continue
                continue
            try:
                resilient.submit(schedule[index], pump=False)
                index += 1
                if not tripped:
                    # Trip after the first admitted batch so deferred
                    # submissions queue up behind an OPEN breaker.
                    resilient.pump()
                    resilient.breaker.trip("sweep scenario")
                    tripped = True
                resilient.pump()
                resilient.query(deadline=StepDeadline(1))
            except InjectedCrash:
                round_.crashes += 1
                resilient.server.recovery.close()
                resilient = None
        try:
            resilient.drain()
            resilient.query(deadline=StepDeadline(1))
        except InjectedCrash:
            round_.crashes += 1
            resilient.server.recovery.close()
            resilient = attach()
            resilient.drain()
        round_.fired = bool(registry.fired)
        manager = resilient.server.recovery
        round_.quarantined = len(manager.poison_quarantined())
        actual = np.asarray(resilient.approximate_values,
                            dtype=np.float64).copy()
        # Ledger check: every logged record is applied or skip-marked.
        # A fresh recovery from disk must land on the exact same state;
        # if a queued record were lost, replay would diverge here.
        manager.close()
        replayer = RecoveryManager(state_dir,
                                   checkpoint_every=checkpoint_every,
                                   retain=2)
        recovered = replayer.recover(profile.factory)
        replayed = np.asarray(recovered.approximate_values,
                              dtype=np.float64)
        replayer.close()

    verdict = compare_snapshots(actual, expected, tolerance=0.0)
    replay_verdict = compare_snapshots(replayed, actual, tolerance=0.0)
    if verdict is not None:
        kind, detail, _ = verdict
        round_.detail = f"{kind}: {detail}"
    elif replay_verdict is not None:
        kind, detail, _ = replay_verdict
        round_.detail = f"disk replay diverged -- {kind}: {detail}"
    elif round_.quarantined:
        round_.detail = (
            f"{round_.quarantined} batch(es) quarantined on a "
            f"healthy workload"
        )
    else:
        round_.equivalent = True
    return round_


def resilient_site_sweep(
    seed: int = 7,
    state_root: Optional[str] = None,
    emit: Callable[[str], None] = lambda _: None,
) -> List[CrashRound]:
    """Kill-and-recover across the admission-layer failpoints.

    Complements :func:`deterministic_site_sweep`: same acceptance shape
    (every round must come back ``ok``) over
    :data:`repro.testing.faults.RESILIENCE_SITES`, driven through the
    resilient server so each site actually fires with a non-empty
    admission queue in flight.
    """
    workload = _workload_with_batches(seed, minimum=4)
    root = state_root or tempfile.mkdtemp(prefix="resilient-sweep-")
    results = []
    for site in faults.RESILIENCE_SITES:
        # submit and query sites fire once per batch; the probe fires
        # exactly once in this scenario (the breaker closes on it).
        hit = 1 if site == "breaker.probe" else 2
        state_dir = os.path.join(root, site.replace(".", "_"))
        round_ = resilient_crash_equivalence(workload, site, hit,
                                             state_dir,
                                             checkpoint_every=2)
        results.append(round_)
        emit(round_.summary())
        if round_.ok:
            shutil.rmtree(state_dir, ignore_errors=True)
    return results


#: The replicated acceptance sweep (``repro fuzz --crash --replicated``):
#: every scenario must leave every surviving replica bit-for-bit equal
#: to both the writer and the serial uninterrupted reference.
REPLICATION_SCENARIOS = (
    "writer-kill",
    "replica-kill",
    "segment-drop",
    "stale-writer-fence",
)

#: Failpoint armed per scenario; ``stale-writer-fence`` is pure
#: choreography (promotion + a late-shipping deposed writer).
_REPLICATION_ARMS = {
    "writer-kill": ("replication.ship", "crash", 3),
    "replica-kill": ("replication.receive", "crash", 2),
    "segment-drop": ("replication.ship", "fault", 2),
    "stale-writer-fence": None,
}


def replicated_crash_equivalence(
    workload: Workload,
    scenario: str,
    state_root: str,
    checkpoint_every: int = 2,
    segment_records: int = 2,
    replicas: int = 2,
) -> CrashRound:
    """One replicated kill-and-converge scenario; see
    :data:`REPLICATION_SCENARIOS`.

    Property under test: **replication is lossless and fenced**.  After
    the planted failure plus a final sync, every surviving replica's
    main-loop values are bit-for-bit the serial uninterrupted run's
    (and the writer's); for ``stale-writer-fence``, additionally every
    late shipment from the deposed writer must land on the survivor's
    durable fence ledger with a stale epoch -- rejected *provably*, not
    dropped.
    """
    from repro.serving.replication import ReplicationCluster
    from repro.serving.resilience import ResilientAnalyticsServer

    if scenario not in REPLICATION_SCENARIOS:
        raise ValueError(
            f"unknown scenario {scenario!r}; pick from "
            f"{REPLICATION_SCENARIOS}"
        )
    profile = workload.profile
    schedule = workload.schedule
    expected = _uninterrupted_values(workload)
    arm = _REPLICATION_ARMS[scenario]
    round_ = CrashRound(
        seed=workload.seed, workload=workload.describe(),
        site=scenario, hit=arm[2] if arm else 0,
        batches=len(schedule),
    )
    make = dict(queue_capacity=len(schedule) + 2, admission="block")

    def build() -> ReplicationCluster:
        manager = RecoveryManager(
            state_root, checkpoint_every=checkpoint_every, retain=2,
            segment_records=segment_records,
        )
        server = StreamingAnalyticsServer(
            profile.factory, workload.build_graph(),
            approx_iterations=APPROX_ITERATIONS, recovery=manager,
        )
        resilient = ResilientAnalyticsServer(server, **make)
        return ReplicationCluster(
            resilient, profile.factory, state_root, replicas=replicas,
        )

    def absorb_crash(cluster: ReplicationCluster,
                     crash: InjectedCrash) -> None:
        """The driver plays the OS: restart whichever process died."""
        round_.crashes += 1
        if crash.site == "replication.receive":
            casualty = cluster.delivering
            cluster.kill_replica(casualty)
            cluster.restart_replica(casualty)
        else:
            cluster.restart_writer(**make)

    with scoped_failpoints() as registry:
        if arm is not None:
            registry.arm(arm[0], kind=arm[1], hit=arm[2])
        cluster = build()
        if scenario == "stale-writer-fence":
            # Replicate a prefix, run the writer ahead un-replicated,
            # promote a replica, then let the deposed writer ship its
            # tail late: the survivor must reject it onto the ledger.
            prefix = max(2, len(schedule) // 2)
            for batch in schedule[:prefix]:
                cluster.submit(batch)
                cluster.replicate()
            for batch in schedule[prefix:]:
                cluster.submit(batch)
            promoted = cluster.promote("r0", **make)
            deposed = cluster.deposed[-1]
            deposed.seal_tail()
            deposed.ship()
            cluster.deliver()
            survivor = cluster.replicas["r1"]
            ledger = survivor.fence_ledger()
            new_epoch = cluster.authority.epoch
            if not ledger:
                round_.detail = (
                    "deposed writer's late shipments left no fence-"
                    "ledger entries on the survivor"
                )
            elif any(entry["epoch"] >= new_epoch for entry in ledger):
                round_.detail = (
                    f"fence ledger holds a non-stale epoch "
                    f"(>= {new_epoch})"
                )
            round_.fired = bool(ledger)
            # The promoted writer recovered every *replicated* batch;
            # the client (us) re-drives the unacknowledged tail.
            for batch in schedule[promoted.server.batches_ingested:]:
                cluster.submit(batch)
                cluster.replicate()
            cluster.sync()
        else:
            index = 0
            while index < len(schedule):
                try:
                    cluster.submit(schedule[index])
                    index = cluster.writer.server.batches_ingested
                    cluster.replicate()
                except InjectedCrash as crash:
                    absorb_crash(cluster, crash)
                    index = cluster.writer.server.batches_ingested
            try:
                cluster.sync()
            except InjectedCrash as crash:
                absorb_crash(cluster, crash)
                cluster.sync()
            round_.fired = bool(registry.fired)
            if scenario == "segment-drop" and round_.fired:
                healed = (cluster.gap_resyncs
                          + cluster.writer_node.resyncs)
                if healed < 1:
                    round_.detail = (
                        "segment drop fired but no resync healed it"
                    )

        round_.quarantined = len(
            cluster.writer_node.manager.poison_quarantined()
        )
        writer_values = np.asarray(
            cluster.writer.approximate_values, dtype=np.float64
        ).copy()
        lag = cluster.max_lag()
        verdicts = []
        verdicts.append(("writer", compare_snapshots(
            writer_values, expected, tolerance=0.0)))
        for name, replica in sorted(cluster.replicas.items()):
            actual = np.asarray(replica.approximate_values,
                                dtype=np.float64)
            verdicts.append((name, compare_snapshots(
                actual, expected, tolerance=0.0)))
            verdicts.append((f"{name} vs writer", compare_snapshots(
                actual, writer_values, tolerance=0.0)))
        cluster.close()

    if not round_.detail:
        for who, verdict in verdicts:
            if verdict is not None:
                kind, detail, _ = verdict
                round_.detail = f"{who} diverged -- {kind}: {detail}"
                break
        else:
            if not round_.fired:
                round_.detail = "planted failure never fired"
            elif lag > 0:
                round_.detail = (
                    f"replica(s) still lag the writer by {lag} after "
                    f"final sync"
                )
            elif round_.quarantined:
                round_.detail = (
                    f"{round_.quarantined} batch(es) quarantined on "
                    f"a healthy workload"
                )
            else:
                round_.equivalent = True
    return round_


def replicated_scenario_sweep(
    seed: int = 7,
    state_root: Optional[str] = None,
    emit: Callable[[str], None] = lambda _: None,
) -> List[CrashRound]:
    """Every replication scenario on one fixed workload -- the
    acceptance gate for ``repro fuzz --crash --replicated``."""
    workload = _workload_with_batches(seed, minimum=4)
    root = state_root or tempfile.mkdtemp(prefix="replicated-sweep-")
    results = []
    for scenario in REPLICATION_SCENARIOS:
        state_dir = os.path.join(root, scenario.replace("-", "_"))
        round_ = replicated_crash_equivalence(workload, scenario,
                                              state_dir)
        results.append(round_)
        emit(round_.summary())
        if round_.ok:
            shutil.rmtree(state_dir, ignore_errors=True)
    return results


@dataclass
class ChaosRound:
    """One seeded lossy-transport convergence scenario."""

    seed: int
    workload: str
    rate: float
    replicas: int
    batches: int = 0
    faults: dict = field(default_factory=dict)
    converged: bool = False
    dead_letters: int = 0
    scrub_repaired: bool = True
    equivalent: bool = False
    detail: str = ""
    schedule: List[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.equivalent

    def summary(self) -> str:
        status = "OK" if self.ok else f"MISMATCH ({self.detail})"
        injected = sum(self.faults.get(kind, 0) for kind in
                       ("drop", "duplicate", "corrupt", "reorder",
                        "delay"))
        return (
            f"seed={self.seed} chaos@{self.rate:.0%} "
            f"[{injected} fault(s): "
            + " ".join(f"{kind}={self.faults.get(kind, 0)}"
                       for kind in ("drop", "duplicate", "corrupt",
                                    "reorder", "delay"))
            + f", dead_letters={self.dead_letters}] {status}"
        )


def _fast_retry_policy():
    """Keep fuzz rounds fast: real backoff shape, toy delays."""
    from repro.serving.replication import RetryPolicy

    return RetryPolicy(max_attempts=8, backoff_base=0.0001,
                       backoff_factor=2.0, backoff_cap=0.002)


def chaos_convergence_equivalence(
    workload: Workload,
    seed: int,
    state_root: str,
    rate: float = 0.1,
    replicas: int = 3,
    checkpoint_every: int = 2,
    segment_records: int = 2,
    scrub: bool = True,
) -> ChaosRound:
    """One chaos round: drive a replicated cluster over a transport
    that drops, duplicates, corrupts, reorders, and delays shipments
    (all five faults, each at ``rate``), then prove bit-for-bit
    convergence.

    Property under test: **replication converges under a hostile
    network** -- the bounded :class:`~repro.serving.replication.
    RetryPolicy`, sequence deduplication, gap resync, and CRC NACKs
    together absorb every injected fault without the writer ever
    hanging.  With ``scrub=True`` the round finishes with a
    ``cluster.scrub(repair=True)`` pass and requires every report to
    come back fully repaired (a corrupt checkpoint blob adopted in
    place is invisible to the live engine but must not survive a
    scrub).
    """
    from repro.serving.chaos import ChaosConfig, wrap_cluster
    from repro.serving.replication import ReplicationCluster
    from repro.serving.resilience import ResilientAnalyticsServer

    profile = workload.profile
    schedule = workload.schedule
    expected = _uninterrupted_values(workload)
    round_ = ChaosRound(
        seed=seed, workload=workload.describe(), rate=rate,
        replicas=replicas, batches=len(schedule),
    )
    manager = RecoveryManager(
        state_root, checkpoint_every=checkpoint_every, retain=2,
        segment_records=segment_records,
    )
    server = StreamingAnalyticsServer(
        profile.factory, workload.build_graph(),
        approx_iterations=APPROX_ITERATIONS, recovery=manager,
    )
    resilient = ResilientAnalyticsServer(
        server, queue_capacity=len(schedule) + 2, admission="block",
    )
    cluster = ReplicationCluster(
        resilient, profile.factory, state_root, replicas=replicas,
        retry_policy=_fast_retry_policy(),
    )
    wrappers = wrap_cluster(
        cluster, ChaosConfig.all_faults(seed=seed, rate=rate)
    )
    for batch in schedule:
        cluster.submit(batch)
        cluster.replicate()
    # A reorder decision can hold the final shipment forever on a
    # quiescing link; a real network eventually delivers or re-sends.
    for wrapper in wrappers:
        wrapper.flush()
    round_.converged = cluster.sync()
    for wrapper in wrappers:
        for kind, count in wrapper.counts.items():
            round_.faults[kind] = round_.faults.get(kind, 0) + count
        round_.schedule.extend(wrapper.schedule)
    round_.dead_letters = len(cluster.dead_letters)
    if scrub:
        reports = cluster.scrub(repair=True)
        round_.scrub_repaired = all(
            report.repaired for report in reports.values()
        )
    writer_values = np.asarray(
        cluster.writer.approximate_values, dtype=np.float64
    ).copy()
    verdicts = [("writer", compare_snapshots(
        writer_values, expected, tolerance=0.0))]
    for name, replica in sorted(cluster.replicas.items()):
        actual = np.asarray(replica.approximate_values,
                            dtype=np.float64)
        verdicts.append((name, compare_snapshots(
            actual, expected, tolerance=0.0)))
    lag = cluster.max_lag()
    cluster.close()

    for who, verdict in verdicts:
        if verdict is not None:
            kind, detail, _ = verdict
            round_.detail = f"{who} diverged -- {kind}: {detail}"
            break
    else:
        if not round_.converged:
            round_.detail = (
                f"final sync abandoned a replica "
                f"({round_.dead_letters} dead letter(s))"
            )
        elif lag > 0:
            round_.detail = f"replica(s) still lag by {lag} after sync"
        elif not round_.scrub_repaired:
            round_.detail = "post-chaos scrub left damage unrepaired"
        else:
            round_.equivalent = True
    return round_


def chaos_convergence_sweep(
    seeds: Sequence[int] = range(5),
    rate: float = 0.1,
    replicas: int = 3,
    state_root: Optional[str] = None,
    emit: Callable[[str], None] = lambda _: None,
) -> List[ChaosRound]:
    """The acceptance gate for ``repro fuzz --crash --chaos``: every
    seed converges bit-for-bit, and across the sweep every one of the
    five fault kinds actually fired."""
    root = state_root or tempfile.mkdtemp(prefix="chaos-sweep-")
    results = []
    for seed in seeds:
        workload = _workload_with_batches(seed, minimum=4)
        state_dir = os.path.join(root, f"seed_{seed}")
        round_ = chaos_convergence_equivalence(
            workload, seed, state_dir, rate=rate, replicas=replicas,
        )
        results.append(round_)
        emit(round_.summary())
        if round_.ok:
            shutil.rmtree(state_dir, ignore_errors=True)
    coverage = chaos_fault_coverage(results)
    missing = [kind for kind, count in coverage.items() if count == 0]
    if missing and results:
        last = results[-1]
        if last.equivalent:
            last.equivalent = False
            last.detail = (
                f"fault kind(s) never fired across the sweep: "
                f"{', '.join(missing)} -- raise the rate or add seeds"
            )
    emit("chaos coverage: " + " ".join(
        f"{kind}={count}" for kind, count in sorted(coverage.items())
    ))
    return results


def chaos_fault_coverage(rounds: Sequence[ChaosRound]) -> dict:
    """Total injected faults per kind across a sweep."""
    coverage = {kind: 0 for kind in
                ("drop", "duplicate", "corrupt", "reorder", "delay")}
    for round_ in rounds:
        for kind in coverage:
            coverage[kind] += round_.faults.get(kind, 0)
    return coverage


def chaos_dead_letter_round(
    seed: int = 11,
    state_root: Optional[str] = None,
) -> ChaosRound:
    """A link that drops *everything* must dead-letter, not hang.

    One replica's transport swallows 100% of shipments; the final sync
    must exhaust that link's retry budget, record the undelivered range
    on the durable dead-letter ledger, return ``False`` -- and still
    converge the healthy replica bit-for-bit.
    """
    from repro.serving.chaos import ChaosConfig, ChaosTransport
    from repro.serving.replication import ReplicationCluster
    from repro.serving.resilience import ResilientAnalyticsServer

    workload = _workload_with_batches(seed, minimum=4)
    root = state_root or tempfile.mkdtemp(prefix="chaos-dead-letter-")
    expected = _uninterrupted_values(workload)
    round_ = ChaosRound(
        seed=seed, workload=workload.describe(), rate=1.0, replicas=2,
        batches=len(workload.schedule),
    )
    manager = RecoveryManager(root, checkpoint_every=2, retain=2,
                              segment_records=2)
    server = StreamingAnalyticsServer(
        workload.profile.factory, workload.build_graph(),
        approx_iterations=APPROX_ITERATIONS, recovery=manager,
    )
    resilient = ResilientAnalyticsServer(
        server, queue_capacity=len(workload.schedule) + 2,
        admission="block",
    )
    cluster = ReplicationCluster(
        resilient, workload.profile.factory, root, replicas=2,
        retry_policy=_fast_retry_policy(),
    )
    black_hole = ChaosTransport(
        cluster.replicas["r1"].inbox,
        ChaosConfig(seed=seed, drop=1.0), name="r1",
    )
    cluster.replicas["r1"].inbox = black_hole
    cluster.writer_node._links["r1"].transport = black_hole
    for batch in workload.schedule:
        cluster.submit(batch)
        cluster.replicate()
    round_.converged = cluster.sync()
    round_.dead_letters = len(cluster.dead_letters)
    round_.faults = dict(black_hole.counts)
    round_.schedule = list(black_hole.schedule)
    healthy = np.asarray(cluster.replicas["r0"].approximate_values,
                         dtype=np.float64)
    verdict = compare_snapshots(healthy, expected, tolerance=0.0)
    cluster.close()
    if round_.converged:
        round_.detail = "sync claimed convergence through a black hole"
    elif not round_.dead_letters:
        round_.detail = "no dead letter recorded for the dead link"
    elif verdict is not None:
        kind, detail, _ = verdict
        round_.detail = f"healthy replica diverged -- {kind}: {detail}"
    else:
        round_.equivalent = True
    return round_


def run_plant_fault(seed: int = 0,
                    emit: Callable[[str], None] = print) -> bool:
    """Self-test: prove the failpoint registry actually fires.

    Arms a *transient* fault at ``wal.append`` and succeeds only if
    (a) the registry reports the firing, (b) the manager's bounded
    retry absorbed it (``recovery.retries`` advanced), and (c) the
    stream still completed every batch.  A harness whose failpoints are
    dead code would fail (a); one without retry would crash at (c).
    """
    workload = _workload_with_batches(seed, minimum=2)
    state_dir = tempfile.mkdtemp(prefix="plant-fault-")
    try:
        with scoped_registry() as metrics, scoped_failpoints() as registry:
            registry.arm("wal.append", kind="fault", hit=1)
            manager = RecoveryManager(state_dir, checkpoint_every=2,
                                      retain=2)
            server = StreamingAnalyticsServer(
                workload.profile.factory, workload.build_graph(),
                approx_iterations=APPROX_ITERATIONS, recovery=manager,
            )
            for batch in workload.schedule:
                server.ingest(batch)
            manager.close()
            fired = "wal.append" in registry.fired_sites()
            retried = metrics.counter("recovery.retries").value > 0
            completed = server.batches_ingested == len(workload.schedule)
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)
    if fired and retried and completed:
        emit("plant-a-fault: wal.append fired, retry absorbed it, "
             "stream completed -- failpoints are live")
        return True
    emit(f"plant-a-fault: FAILED (fired={fired}, retried={retried}, "
         f"completed={completed}) -- the failpoint registry is not "
         f"wired into the serving stack")
    return False


# ----------------------------------------------------------------------
# Storage crash sweep: kill inside snapshot-segment persistence
# ----------------------------------------------------------------------
@dataclass
class StorageRound:
    """One kill at ``storage.segment_write`` while an :class:`MmapStore`
    writes a new snapshot generation."""

    site: str
    hit: int
    crashed: bool = False
    previous_readable: bool = False
    debris_files: int = 0
    swept: bool = False
    equivalent: bool = False
    detail: str = ""

    @property
    def ok(self) -> bool:
        return (self.crashed and self.previous_readable and self.swept
                and self.equivalent)

    def summary(self) -> str:
        status = "ok" if self.ok else f"FAILED ({self.detail})"
        return (f"[{self.site} hit={self.hit}] crash={self.crashed} "
                f"previous-readable={self.previous_readable} "
                f"debris={self.debris_files} swept={self.swept} "
                f"equivalent={self.equivalent}: {status}")


def _storage_round_batch(num_vertices: int,
                         base_graph) -> "MutationBatch":
    """A fixed mutation batch for the storage sweep: additions
    (including one that grows the vertex set), plus deletions of real
    edges -- enough to dirty both CSR directions."""
    from repro.graph.mutation import MutationBatch

    src, dst, _ = base_graph.all_edges()
    deletions = [(int(src[0]), int(dst[0])),
                 (int(src[src.size // 2]), int(dst[src.size // 2]))]
    additions = [(0, num_vertices - 1), (3, 5),
                 (num_vertices + 1, 2)]  # grows the vertex set
    return MutationBatch.from_edges(
        additions=additions, deletions=deletions,
        add_weights=[1.25, 0.75, 1.5],
        grow_to=num_vertices + 2,
    )


def storage_crash_round(hit: int, root: str,
                        seed: int = 7) -> StorageRound:
    """Kill the ``hit``-th segment finalize of a generation write and
    prove the previous snapshot manifest survives the torn write.

    The sequence mirrors a real process death: publish generation 0,
    apply a mutation batch whose :meth:`MmapStore.adjust` is killed
    mid-persist (leaving finalized orphans and a torn temp file on
    disk), then "restart" by opening a *fresh* store over the same
    root.  The round checks that

    1. the reopened store still points at generation 0, verifies its
       payload CRCs, and reads it bit-for-bit;
    2. :meth:`MmapStore.compact` sweeps every torn temp and orphaned
       segment the crash left behind;
    3. retrying the same batch converges to exactly the state a heap
       :class:`StreamingGraph` reaches -- the equivalence oracle.
    """
    from repro.graph.generators import rmat
    from repro.graph.mutable import StreamingGraph
    from repro.graph.storage import ARRAY_NAMES, MmapStore, StoreError

    site = "storage.segment_write"
    round_ = StorageRound(site=site, hit=hit)
    os.makedirs(root, exist_ok=True)
    heap_graph = rmat(6, 4, seed=seed, weighted=True)
    store = MmapStore(root)
    base = store.publish(heap_graph)
    batch = _storage_round_batch(base.num_vertices, base)
    pre_crash = {name: np.asarray(getattr(base, name)).copy()
                 for name in ARRAY_NAMES}
    current_before = store.current_snapshot

    streaming = StreamingGraph(base)
    with scoped_failpoints() as registry:
        registry.arm(site, kind="crash", hit=hit)
        try:
            streaming.apply_batch(batch)
        except InjectedCrash:
            round_.crashed = True
    if not round_.crashed:
        round_.detail = "failpoint never fired"
        return round_
    del streaming, base, store  # the "process" died; drop its maps

    # A torn temp and/or finalized-but-unpublished segments must be on
    # disk -- otherwise the kill site proved nothing.
    debris = [name for name in os.listdir(root)
              if name.endswith(".tmp")
              or (name.endswith(".seg") and "-g000001-" in name)]
    round_.debris_files = len(debris)

    reopened_store = MmapStore(root)
    try:
        round_.previous_readable = (
            reopened_store.current_snapshot == current_before)
        reopened_store.verify()
        reopened = reopened_store.open_snapshot()
        for name in ARRAY_NAMES:
            if not np.array_equal(pre_crash[name],
                                  np.asarray(getattr(reopened, name))):
                round_.previous_readable = False
                round_.detail = f"{name} diverged after reopen"
                return round_
    except StoreError as exc:
        round_.previous_readable = False
        round_.detail = f"reopen failed: {exc}"
        return round_

    reopened_store.compact()
    referenced = set()
    for snapshot_id in reopened_store.snapshot_ids():
        referenced.update(reopened_store.segment_files(snapshot_id))
    leftovers = [name for name in os.listdir(root)
                 if name.endswith(".tmp")
                 or (name.endswith(".seg") and name not in referenced)]
    round_.swept = not leftovers
    if not round_.swept:
        round_.detail = f"debris survived compact: {leftovers}"
        return round_

    retry = StreamingGraph(reopened)
    retry.apply_batch(batch)
    oracle = StreamingGraph(heap_graph)
    oracle.apply_batch(batch)
    round_.equivalent = all(
        np.array_equal(np.asarray(getattr(retry.graph, name)),
                       np.asarray(getattr(oracle.graph, name)))
        for name in ARRAY_NAMES
    )
    if not round_.equivalent:
        round_.detail = "retry diverged from heap oracle"
    return round_


def storage_site_sweep(
    state_root: Optional[str] = None,
    seed: int = 7,
    emit: Callable[[str], None] = lambda _: None,
) -> List[StorageRound]:
    """Kill at every segment position of a generation write (six
    canonical arrays, so hits 1..6) and require every round ``ok``."""
    from repro.graph.storage import ARRAY_NAMES

    root = state_root or tempfile.mkdtemp(prefix="storage-sweep-")
    rounds = []
    for hit in range(1, len(ARRAY_NAMES) + 1):
        round_dir = os.path.join(root, f"hit-{hit}")
        round_ = storage_crash_round(hit, round_dir, seed=seed)
        rounds.append(round_)
        emit(round_.summary())
        if round_.ok:
            shutil.rmtree(round_dir, ignore_errors=True)
    return rounds
