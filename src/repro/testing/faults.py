"""Deterministic failpoints for fault injection.

A *failpoint* is a named site in production code -- ``wal.append``,
``checkpoint.write``, ``engine.refine`` -- that calls :func:`hit` on
every pass.  By default that call is a counter bump and nothing more.
A test (or the ``repro fuzz --crash`` fuzzer) *arms* a site on the
installed :class:`FailpointRegistry` with a plan: on the Nth hit, raise
either

- :class:`InjectedFault` -- a transient I/O error.  It derives from
  ``OSError`` so the bounded retry-with-backoff in
  :class:`repro.recovery.manager.RecoveryManager` absorbs it exactly
  like a real filesystem hiccup; or
- :class:`InjectedCrash` -- simulated process death.  It derives from
  ``BaseException`` (not ``Exception``) so no recovery/quarantine
  handler can accidentally swallow it: only the test driver that
  "killed" the process catches it, then recovers from disk the way a
  restarted process would.

A third kind, ``corrupt``, does not raise at all: it asks the site to
flip one deterministic byte of the payload it is about to write, ship,
or read -- planted bit-rot.  Only the sites in :data:`CORRUPT_SITES`
know how to do that (they call :func:`hit_corruptible` instead of
:func:`hit` and act on its boolean), so arming ``corrupt`` anywhere
else is rejected up front.

Because firing is keyed on an exact hit count and nothing else, a
``(site, hit)`` pair replays deterministically: the same seeded
workload crashes at the same instruction every time, which is what lets
the crash fuzzer assert bit-for-bit recovery equivalence.

The registry is process-wide (:func:`get_failpoints`); tests install a
fresh one with :func:`scoped_failpoints` so plans never leak between
cases.  Sites must come from :data:`KNOWN_SITES` -- arming a typo'd
name would silently never fire, so it is rejected up front.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "CORRUPT_SITES",
    "DURABLE_SITES",
    "FailpointRegistry",
    "FiredFailpoint",
    "InjectedCrash",
    "InjectedFault",
    "KNOWN_SITES",
    "REPLICATION_SITES",
    "RESILIENCE_SITES",
    "STORAGE_SITES",
    "flip_byte",
    "get_failpoints",
    "hit",
    "hit_corruptible",
    "scoped_failpoints",
    "set_failpoints",
]

#: Every instrumented site in the codebase.  The crash fuzzer draws its
#: kill sites from this tuple, and the recovery test suite proves
#: checkpoint+WAL equivalence for each one.
#:
#: ``wal.append``        before a WAL record reaches the stream (the
#:                       record is lost entirely);
#: ``wal.append.torn``   mid-write: half the record's bytes land on disk
#:                       before the "process dies" (a torn tail);
#: ``checkpoint.write``  before the checkpoint temp file is written;
#: ``checkpoint.replace`` after the temp file is complete but before the
#:                       atomic ``os.replace`` publishes it;
#: ``engine.refine``     before dependency-driven refinement of an
#:                       ingested batch (WAL has the record, the engine
#:                       never applied it);
#: ``recover.replay``    before a WAL record is re-applied during
#:                       recovery (a crash *during* recovery);
#: ``admission.enqueue`` after a submitted batch is WAL-logged but
#:                       before it enters the admission queue (the
#:                       record is durable, the queue entry is not);
#: ``query.deadline``    at the start of a deadline-budgeted query,
#:                       before the branch state is copied;
#: ``breaker.probe``     before a half-open circuit breaker sends its
#:                       trial batch through the full path;
#: ``replication.ship``  before a sealed-segment/checkpoint shipment is
#:                       handed to a replica's transport (crash = the
#:                       writer dies mid-ship; fault = the shipment is
#:                       lost in transit -- a planted segment drop);
#: ``replication.reorder`` inside the transport send path; a fault
#:                       holds the shipment back so the *next* one is
#:                       delivered first (a planted reorder);
#: ``replication.receive`` before a replica applies a delivered
#:                       shipment (crash = the replica dies mid-apply;
#:                       fault = delivery is deferred -- planted
#:                       replica lag);
#: ``replica.query``     at the start of a replica-served query (fault
#:                       = the replica fails mid-query, which is what
#:                       drives router failover);
#: ``storage.segment_write`` before a snapshot-store segment temp file
#:                       is renamed into place (crash = the process
#:                       dies with a torn segment on disk; the
#:                       previous manifest must stay readable;
#:                       corrupt = one payload byte is flipped after
#:                       the CRC was computed -- planted bit-rot the
#:                       scrubber must find);
#: ``wal.segment_read``  when a sealed WAL segment's raw lines are read
#:                       for shipping or scrubbing (corrupt = one byte
#:                       of the read buffer is flipped, so the record
#:                       CRC check downstream must reject it).
KNOWN_SITES = (
    "wal.append",
    "wal.append.torn",
    "checkpoint.write",
    "checkpoint.replace",
    "engine.refine",
    "recover.replay",
    "admission.enqueue",
    "query.deadline",
    "breaker.probe",
    "replication.ship",
    "replication.reorder",
    "replication.receive",
    "replica.query",
    "storage.segment_write",
    "wal.segment_read",
)

#: The sites exercised by a plain durable server (no admission layer).
#: ``deterministic_site_sweep`` iterates these; the resilient sweep
#: (``resilient_site_sweep``) covers the admission-layer sites and the
#: replicated sweep (``replicated_scenario_sweep``) the shipping path.
DURABLE_SITES = KNOWN_SITES[:6]

#: The sites only a resilient server (admission + breaker + deadline
#: queries) passes through.
RESILIENCE_SITES = KNOWN_SITES[6:9]

#: The sites only the replication layer (writer shipping, replica
#: apply, replica-served queries) passes through.
REPLICATION_SITES = KNOWN_SITES[9:13]

#: The sites only the snapshot-storage layer passes through (segment
#: persistence under ``MmapStore``); ``storage_site_sweep`` in the
#: crash fuzzer kills here and proves the previous manifest survives.
#: ``wal.segment_read`` is deliberately excluded -- it sits on a read
#: path the crash sweeps never need to kill.
STORAGE_SITES = KNOWN_SITES[13:14]

#: The sites that know how to corrupt a payload in place (they call
#: :func:`hit_corruptible`); ``arm(kind="corrupt")`` is only legal
#: here.
CORRUPT_SITES = (
    "replication.ship",
    "storage.segment_write",
    "wal.segment_read",
)

_KINDS = ("crash", "fault", "corrupt")


def flip_byte(data: bytes, index: Optional[int] = None) -> bytes:
    """``data`` with one bit of one byte flipped (the middle byte by
    default) -- the canonical planted bit-rot mutation.  Empty input
    is returned unchanged (there is nothing to corrupt)."""
    if not data:
        return data
    if index is None:
        index = len(data) // 2
    index %= len(data)
    return data[:index] + bytes([data[index] ^ 0x01]) + data[index + 1:]


class InjectedFault(OSError):
    """A transient injected I/O fault (retryable, like a real ``OSError``)."""


class InjectedCrash(BaseException):
    """Simulated process death at a failpoint.

    Deliberately a ``BaseException``: quarantine and retry handlers
    catch ``Exception``/``OSError``, so a simulated kill tears through
    them the way ``SIGKILL`` tears through a real process.
    """

    def __init__(self, site: str, hit_number: int) -> None:
        super().__init__(f"injected crash at {site} (hit {hit_number})")
        self.site = site
        self.hit_number = hit_number


@dataclass(frozen=True)
class FiredFailpoint:
    """One firing, recorded for post-mortem assertions."""

    site: str
    kind: str
    hit_number: int


@dataclass
class _Plan:
    kind: str
    hit: int
    once: bool = True


@dataclass
class FailpointRegistry:
    """Armed plans plus per-site hit counters."""

    _plans: Dict[str, _Plan] = field(default_factory=dict)
    hits: Dict[str, int] = field(default_factory=dict)
    fired: List[FiredFailpoint] = field(default_factory=list)

    def arm(self, site: str, kind: str = "crash", hit: int = 1,
            once: bool = True) -> None:
        """Arm ``site`` to raise on its ``hit``-th future-or-past hit.

        ``hit`` counts from the site's current total (sites hit before
        arming still count), so arm before driving the workload.
        ``once`` disarms after the first firing -- the recovered process
        does not crash again, which is what the crash fuzzer wants.
        """
        if site not in KNOWN_SITES:
            raise ValueError(
                f"unknown failpoint site {site!r} "
                f"(choose from {list(KNOWN_SITES)})"
            )
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {kind!r}")
        if kind == "corrupt" and site not in CORRUPT_SITES:
            raise ValueError(
                f"site {site!r} cannot corrupt its payload "
                f"(choose from {list(CORRUPT_SITES)})"
            )
        if hit < 1:
            raise ValueError("hit is 1-based and must be >= 1")
        self._plans[site] = _Plan(kind=kind, hit=hit, once=once)

    def disarm(self, site: str) -> None:
        self._plans.pop(site, None)

    def armed(self, site: str) -> bool:
        return site in self._plans

    def armed_sites(self) -> List[str]:
        return sorted(self._plans)

    def hit_count(self, site: str) -> int:
        return self.hits.get(site, 0)

    def fired_sites(self) -> List[str]:
        return [record.site for record in self.fired]

    def clear(self) -> None:
        self._plans.clear()
        self.hits.clear()
        self.fired.clear()

    def _advance(self, site: str) -> Optional[str]:
        """Bump ``site``'s counter; fire any due plan.

        Crash and fault plans raise (exactly like they always have);
        a corrupt plan returns ``"corrupt"`` so the caller can mutate
        its payload in place.  Returns ``None`` when nothing fired.
        """
        count = self.hits.get(site, 0) + 1
        self.hits[site] = count
        plan = self._plans.get(site)
        if plan is None or count < plan.hit:
            return None
        if plan.once:
            del self._plans[site]
        elif count > plan.hit:
            return None
        self.fired.append(FiredFailpoint(site=site, kind=plan.kind,
                                         hit_number=count))
        if plan.kind == "crash":
            raise InjectedCrash(site, count)
        if plan.kind == "fault":
            raise InjectedFault(f"injected transient fault at {site} "
                                f"(hit {count})")
        return "corrupt"

    def hit(self, site: str) -> None:
        """Record one pass through ``site``; raise if a plan says so."""
        self._advance(site)

    def hit_corruptible(self, site: str) -> bool:
        """Like :meth:`hit`, but reports corrupt-plan firings.

        Returns ``True`` when a ``corrupt`` plan fires on this pass --
        the site must then flip one byte of its payload (usually via
        :func:`flip_byte`).  Crash and fault plans raise exactly as
        they do from :meth:`hit`.
        """
        return self._advance(site) == "corrupt"


# ----------------------------------------------------------------------
# The process-wide registry
# ----------------------------------------------------------------------
_FAILPOINTS = FailpointRegistry()


def get_failpoints() -> FailpointRegistry:
    return _FAILPOINTS


def set_failpoints(registry: FailpointRegistry) -> FailpointRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _FAILPOINTS
    previous = _FAILPOINTS
    _FAILPOINTS = registry
    return previous


@contextmanager
def scoped_failpoints(registry: Optional[FailpointRegistry] = None):
    """Install a fresh (or given) registry for a ``with`` block."""
    registry = registry if registry is not None else FailpointRegistry()
    previous = set_failpoints(registry)
    try:
        yield registry
    finally:
        set_failpoints(previous)


def hit(site: str) -> None:
    """The instrumentation call production code places at each site."""
    _FAILPOINTS.hit(site)


def hit_corruptible(site: str) -> bool:
    """The instrumentation call for sites that can corrupt a payload.

    ``True`` means an armed ``corrupt`` plan fired: the caller must
    flip one byte of whatever it is about to write, ship, or read.
    """
    return _FAILPOINTS.hit_corruptible(site)
