"""Deterministic adversarial workload generation.

A :class:`Workload` is a fully materialised test case: a concrete initial
edge list, an algorithm profile, and a schedule of concrete
:class:`~repro.graph.mutation.MutationBatch` objects.  Everything is
derived from a single integer seed, so a failing workload is reproduced
by its ``(seed, generation parameters)`` pair alone -- and because the
edges and batches are stored explicitly (not re-derived from the seed),
the shrinker can delete vertices, edges, and mutations freely while the
remainder of the workload stays bit-identical.

The mutation schedules deliberately concentrate on the patterns that
break incremental engines in practice (the adversarial mix that the
paper's per-run validation, section 5.1, is designed to catch):

- ``dense``      -- one batch carrying a large fraction of the edge set;
- ``churn``      -- edges inserted in one batch and deleted in the next;
- ``isolated``   -- vertex growth with no incident edges (``grow_to``);
- ``dirty``      -- duplicate additions, self-loops, deletions of absent
                    edges (stale stream records);
- ``empty``      -- a batch with no mutations at all;
- ``delete_heavy`` -- removal of a large fraction of live edges;
- ``hotspot_storm`` -- every mutation concentrated in one contiguous
                    community block (the adversarial regime of the
                    bench matrix's ``hotspot_storm`` scenario);
- ``uniform``    -- a plain random add/delete mix (the control).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms import (
    BFS,
    CoEM,
    ConnectedComponents,
    LabelPropagation,
    PageRank,
    SSSP,
)
from repro.core.model import IncrementalAlgorithm
from repro.graph.csr import CSRGraph
from repro.graph.mutation import MutationBatch

__all__ = [
    "AlgorithmProfile",
    "FUZZ_ALGORITHMS",
    "BATCH_KINDS",
    "Workload",
    "generate_workload",
]


# ----------------------------------------------------------------------
# Algorithm profiles
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AlgorithmProfile:
    """How the oracle should run and compare one algorithm.

    ``monotonic`` marks path-style fixpoint algorithms (run until
    convergence, eligible for KickStarter / differential-dataflow
    cross-checks); ``vector`` marks multi-component vertex values.
    ``kickstarter`` selects the KickStarter mode (``"weighted"`` or
    ``"unit"``) and ``dataflow`` the mini differential-dataflow program
    (``"sssp"`` or ``"cc"``); ``None`` disables the comparator.
    """

    key: str
    factory: Callable[[], IncrementalAlgorithm]
    monotonic: bool = False
    vector: bool = False
    kickstarter: Optional[str] = None
    dataflow: Optional[str] = None
    num_iterations: int = 8
    tolerance: float = 1e-6

    @property
    def until_convergence(self) -> bool:
        return self.monotonic


FUZZ_ALGORITHMS: Dict[str, AlgorithmProfile] = {
    profile.key: profile
    for profile in [
        AlgorithmProfile(
            key="pagerank",
            factory=lambda: PageRank(tolerance=1e-9),
        ),
        AlgorithmProfile(
            key="label-propagation",
            factory=lambda: LabelPropagation(num_labels=3, seed_every=4,
                                             tolerance=1e-9),
            vector=True,
        ),
        AlgorithmProfile(
            key="coem",
            factory=lambda: CoEM(seed_every=4, tolerance=1e-9),
        ),
        AlgorithmProfile(
            key="sssp",
            factory=lambda: SSSP(source=0),
            monotonic=True,
            kickstarter="weighted",
            dataflow="sssp",
            tolerance=1e-9,
        ),
        AlgorithmProfile(
            key="bfs",
            factory=lambda: BFS(source=0),
            monotonic=True,
            kickstarter="unit",
            tolerance=1e-9,
        ),
        AlgorithmProfile(
            key="connected-components",
            # Directed min-label propagation; the symmetrising dataflow
            # WCC computes a different fixpoint, so no dataflow check.
            factory=lambda: ConnectedComponents(),
            monotonic=True,
            tolerance=1e-9,
        ),
    ]
}


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
@dataclass
class Workload:
    """A concrete, self-contained differential test case."""

    seed: int
    algorithm: str
    num_vertices: int
    #: ``(src, dst, weight)`` triples of the initial snapshot.
    edges: List[Tuple[int, int, float]]
    schedule: List[MutationBatch]
    #: One human-readable kind tag per scheduled batch.
    kinds: List[str] = field(default_factory=list)
    graph_family: str = "explicit"

    @property
    def profile(self) -> AlgorithmProfile:
        return FUZZ_ALGORITHMS[self.algorithm]

    def build_graph(self) -> CSRGraph:
        return CSRGraph.from_edges(
            [(u, v) for u, v, _ in self.edges],
            num_vertices=self.num_vertices,
            weights=[w for _, _, w in self.edges],
        )

    def describe(self) -> str:
        kinds = ",".join(self.kinds) if self.kinds else "-"
        return (
            f"workload(seed={self.seed}, algo={self.algorithm}, "
            f"family={self.graph_family}, V={self.num_vertices}, "
            f"E={len(self.edges)}, batches=[{kinds}])"
        )

    def with_schedule(self, schedule: Sequence[MutationBatch],
                      kinds: Optional[Sequence[str]] = None) -> "Workload":
        if kinds is None:
            kinds = self.kinds[: len(schedule)]
        return replace(self, schedule=list(schedule), kinds=list(kinds))

    def total_mutations(self) -> int:
        return sum(len(batch) for batch in self.schedule)


# ----------------------------------------------------------------------
# The evolving edge-set shadow
# ----------------------------------------------------------------------
class _Shadow:
    """Tracks the live edge set so batch generators can target real edges
    (deletions of live edges, churn of just-inserted edges) the way the
    engines' own :class:`~repro.graph.mutable.StreamingGraph` would."""

    def __init__(self, num_vertices: int,
                 edges: Sequence[Tuple[int, int, float]]) -> None:
        self.num_vertices = num_vertices
        self.edges: Dict[Tuple[int, int], float] = {
            (u, v): w for u, v, w in edges
        }

    def live_edges(self) -> List[Tuple[int, int]]:
        return sorted(self.edges)

    def apply(self, batch: MutationBatch) -> None:
        for u, v in batch.deletions():
            self.edges.pop((u, v), None)
        for u, v, w in batch.additions():
            self.edges.setdefault((u, v), w)
        self.num_vertices = max(self.num_vertices, batch.max_vertex() + 1)


def _random_pairs(rng: np.random.Generator, num_vertices: int,
                  count: int) -> List[Tuple[int, int]]:
    pairs = []
    for _ in range(count):
        u = int(rng.integers(0, num_vertices))
        v = int(rng.integers(0, num_vertices))
        if u != v:
            pairs.append((u, v))
    return pairs


def _weights(rng: np.random.Generator, count: int) -> List[float]:
    return [round(float(w), 6) for w in rng.random(count) + 0.5]


# ----------------------------------------------------------------------
# Batch generators (one per adversarial kind)
# ----------------------------------------------------------------------
def _gen_uniform(rng, shadow: _Shadow) -> MutationBatch:
    adds = _random_pairs(rng, shadow.num_vertices,
                         int(rng.integers(1, 9)))
    live = shadow.live_edges()
    num_dels = min(int(rng.integers(0, 5)), len(live))
    dels = [live[i] for i in rng.choice(len(live), size=num_dels,
                                        replace=False)] if num_dels else []
    return MutationBatch.from_edges(additions=adds, deletions=dels,
                                    add_weights=_weights(rng, len(adds)))


def _gen_dense(rng, shadow: _Shadow) -> MutationBatch:
    live = shadow.live_edges()
    adds = _random_pairs(rng, shadow.num_vertices,
                         max(4, len(live) // 2))
    num_dels = len(live) // 4
    dels = [live[i] for i in rng.choice(len(live), size=num_dels,
                                        replace=False)] if num_dels else []
    return MutationBatch.from_edges(additions=adds, deletions=dels,
                                    add_weights=_weights(rng, len(adds)))


def _gen_isolated(rng, shadow: _Shadow) -> MutationBatch:
    grow_to = shadow.num_vertices + int(rng.integers(1, 5))
    adds: List[Tuple[int, int]] = []
    if rng.random() < 0.5 and shadow.num_vertices > 1:
        # One edge into the grown range: a vertex beyond current capacity.
        adds = [(int(rng.integers(0, shadow.num_vertices)), grow_to - 1)]
    return MutationBatch.from_edges(additions=adds,
                                    add_weights=_weights(rng, len(adds)),
                                    grow_to=grow_to)


def _gen_dirty(rng, shadow: _Shadow) -> MutationBatch:
    """Stale-stream garbage: duplicates, self-loops, absent deletions."""
    base = _random_pairs(rng, shadow.num_vertices, int(rng.integers(1, 5)))
    adds = base + base  # duplicate every addition
    adds += [(u, u) for u in
             rng.integers(0, shadow.num_vertices, size=2).tolist()]
    live = set(shadow.edges)
    absent = [pair for pair in
              _random_pairs(rng, shadow.num_vertices, 4)
              if pair not in live][:2]
    return MutationBatch.from_edges(additions=adds, deletions=absent,
                                    add_weights=_weights(rng, len(adds)))


def _gen_empty(rng, shadow: _Shadow) -> MutationBatch:
    return MutationBatch.empty()


def _gen_hotspot_storm(rng, shadow: _Shadow) -> MutationBatch:
    """All mutations inside one community block (see
    :func:`repro.graph.stream.hotspot_community`): additions connect
    block-internal pairs, deletions remove block-internal live edges."""
    n = shadow.num_vertices
    block = max(2, n // 4)
    lo = int(rng.integers(0, max(n - block, 0) + 1))
    hi = min(lo + block, n)
    count = int(rng.integers(2, 9))
    adds = []
    for _ in range(count):
        u = int(rng.integers(lo, hi))
        v = int(rng.integers(lo, hi))
        if u != v:
            adds.append((u, v))
    inside = [
        (u, v) for u, v in shadow.live_edges()
        if lo <= u < hi and lo <= v < hi
    ]
    num_dels = min(int(rng.integers(0, 4)), len(inside))
    dels = [inside[i] for i in rng.choice(len(inside), size=num_dels,
                                          replace=False)] if num_dels else []
    return MutationBatch.from_edges(additions=adds, deletions=dels,
                                    add_weights=_weights(rng, len(adds)))


def _gen_delete_heavy(rng, shadow: _Shadow) -> MutationBatch:
    live = shadow.live_edges()
    num_dels = min(len(live), max(1, len(live) // 2))
    dels = [live[i] for i in rng.choice(len(live), size=num_dels,
                                        replace=False)] if num_dels else []
    return MutationBatch.from_edges(deletions=dels)


BATCH_KINDS: Dict[str, Callable] = {
    "uniform": _gen_uniform,
    "dense": _gen_dense,
    "isolated": _gen_isolated,
    "dirty": _gen_dirty,
    "empty": _gen_empty,
    "delete_heavy": _gen_delete_heavy,
    "hotspot_storm": _gen_hotspot_storm,
}


# ----------------------------------------------------------------------
# Graph families
# ----------------------------------------------------------------------
def _initial_graph(rng: np.random.Generator,
                   max_vertices: int) -> Tuple[str, CSRGraph]:
    from repro.graph import generators

    family = str(rng.choice(["rmat", "erdos_renyi", "star", "cycle"]))
    graph_seed = int(rng.integers(0, 2**31 - 1))
    if family == "rmat":
        scale = int(rng.integers(4, 7))
        scale = min(scale, int(np.log2(max(max_vertices, 8))))
        graph = generators.rmat(scale, edge_factor=int(rng.integers(2, 5)),
                                seed=graph_seed, weighted=True)
    elif family == "erdos_renyi":
        vertices = int(rng.integers(8, max_vertices + 1))
        edges = int(rng.integers(vertices, 3 * vertices + 1))
        graph = generators.erdos_renyi(vertices, edges, seed=graph_seed,
                                       weighted=True)
    elif family == "star":
        # star_graph(n) has n + 1 vertices (hub + leaves).
        leaves = int(rng.integers(4, max(min(17, max_vertices), 5)))
        graph = generators.star_graph(leaves,
                                      outward=bool(rng.integers(0, 2)))
    else:
        graph = generators.cycle_graph(
            int(rng.integers(3, max(min(25, max_vertices + 1), 4)))
        )
    return family, graph


def generate_workload(
    seed: int,
    algorithms: Optional[Sequence[str]] = None,
    max_vertices: int = 64,
    max_batches: int = 6,
) -> Workload:
    """Derive a complete workload deterministically from ``seed``."""
    rng = np.random.default_rng(seed)
    roster = list(algorithms) if algorithms else sorted(FUZZ_ALGORITHMS)
    unknown = [key for key in roster if key not in FUZZ_ALGORITHMS]
    if unknown:
        raise ValueError(f"unknown fuzz algorithms: {unknown} "
                         f"(choose from {sorted(FUZZ_ALGORITHMS)})")
    algorithm = str(rng.choice(roster))

    family, graph = _initial_graph(rng, max_vertices)
    src, dst, weight = graph.all_edges()
    edges = [
        (int(u), int(v), round(float(w), 6))
        for u, v, w in zip(src, dst, weight)
    ]

    shadow = _Shadow(graph.num_vertices, edges)
    num_batches = int(rng.integers(1, max_batches + 1))
    schedule: List[MutationBatch] = []
    kinds: List[str] = []
    kind_names = sorted(BATCH_KINDS)
    pending_churn: List[Tuple[int, int]] = []
    while len(schedule) < num_batches:
        if pending_churn:
            # Second half of a churn pair: delete exactly what the
            # previous batch inserted.
            batch = MutationBatch.from_edges(deletions=pending_churn)
            kind = "churn_delete"
            pending_churn = []
        else:
            kind = str(rng.choice(kind_names + ["churn"]))
            if kind == "churn":
                inserts = [
                    pair for pair in
                    _random_pairs(rng, shadow.num_vertices,
                                  int(rng.integers(2, 7)))
                    if pair not in shadow.edges
                ]
                if not inserts:
                    continue
                batch = MutationBatch.from_edges(
                    additions=inserts,
                    add_weights=_weights(rng, len(inserts)),
                )
                pending_churn = list(dict.fromkeys(inserts))
                kind = "churn_insert"
            else:
                batch = BATCH_KINDS[kind](rng, shadow)
        shadow.apply(batch)
        schedule.append(batch)
        kinds.append(kind)

    return Workload(
        seed=seed,
        algorithm=algorithm,
        num_vertices=graph.num_vertices,
        edges=edges,
        schedule=schedule,
        kinds=kinds,
        graph_family=family,
    )
