"""The cross-engine equivalence oracle.

Drives one workload's mutation schedule through every applicable engine
simultaneously and checks, after the initial run and after every batch,
that all engines agree with the reference -- a from-scratch synchronous
execution on the mutated snapshot, exactly the validation the paper runs
for each experiment (section 5.1).  Comparison is the relative-error
test of :mod:`repro.runtime.validation` with non-finite values compared
by mask (two ``inf`` distances agree; ``inf`` versus finite diverges).

Beyond value equivalence the oracle cross-checks
:class:`~repro.runtime.metrics.EngineMetrics` sanity: on a stabilised
workload (an empty mutation batch -- nothing changed), dependency-driven
refinement must never perform *more* edge computations than the restart
baseline, which recomputes everything.  A refinement engine that does
redundant work on a no-op batch has lost the paper's central property
even if its answers are right.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.exec import ExecutionBackend
from repro.runtime.validation import relative_errors
from repro.testing.runners import (
    REFERENCE_ENGINE,
    available_engines,
    build_runner,
)
from repro.testing.workloads import Workload

__all__ = [
    "Divergence",
    "WorkloadReport",
    "check_workload",
    "compare_snapshots",
]


@dataclass
class Divergence:
    """One engine disagreeing with the reference at one point in time."""

    engine: str
    #: Schedule position: -1 is the initial run, k >= 0 is batch k.
    batch_index: int
    #: ``values`` | ``shape`` | ``finite-mask`` | ``work`` | ``crash``
    kind: str
    detail: str
    max_error: float = 0.0

    def __str__(self) -> str:
        where = ("initial run" if self.batch_index < 0
                 else f"batch {self.batch_index}")
        return f"[{self.engine} @ {where}] {self.kind}: {self.detail}"


@dataclass
class WorkloadReport:
    """Everything the oracle observed for one workload."""

    workload: Workload
    engines: List[str]
    divergences: List[Divergence] = field(default_factory=list)
    batches_checked: int = 0
    #: Per-engine edge computations for each batch (index aligned with
    #: the schedule; entry 0 covers the initial run).
    edge_work: Dict[str, List[int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def first_divergence(self) -> Optional[Divergence]:
        return self.divergences[0] if self.divergences else None

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.divergences)} divergence(s)"
        return (
            f"{self.workload.describe()} x {len(self.engines)} engines "
            f"-> {status}"
        )


def compare_snapshots(
    actual, expected, tolerance: float
) -> Optional[Tuple[str, str, float]]:
    """Compare one engine's snapshot against the reference.

    Returns ``None`` on agreement, else ``(kind, detail, max_error)``.
    Non-finite entries (unreachable distances, poisoned values) must
    occupy identical positions; finite entries are compared by relative
    error.
    """
    actual = np.asarray(actual, dtype=np.float64)
    expected = np.asarray(expected, dtype=np.float64)
    if actual.shape != expected.shape:
        return ("shape", f"shape {actual.shape} vs {expected.shape}", 0.0)
    finite_a = np.isfinite(actual)
    finite_e = np.isfinite(expected)
    if not np.array_equal(finite_a, finite_e):
        mask = finite_a != finite_e
        while mask.ndim > 1:
            mask = mask.any(axis=-1)
        vertex = int(np.argmax(mask))
        return (
            "finite-mask",
            f"non-finite values differ at vertex {vertex} "
            f"(actual={actual[vertex]}, expected={expected[vertex]})",
            float("inf"),
        )
    filled_a = np.where(finite_a, actual, 0.0)
    filled_e = np.where(finite_e, expected, 0.0)
    errors = relative_errors(filled_a, filled_e)
    worst = float(errors.max()) if errors.size else 0.0
    if worst > tolerance:
        vertex = int(np.argmax(errors))
        return (
            "values",
            f"max relative error {worst:.3e} at vertex {vertex} "
            f"exceeds tolerance {tolerance:.1e}",
            worst,
        )
    return None


def _is_stabilised(batch) -> bool:
    """A batch after which the graph is unchanged (work-sanity point)."""
    return len(batch) == 0 and batch.grow_to is None


def check_workload(
    workload: Workload,
    engines: Optional[Sequence[str]] = None,
    include_naive: bool = False,
    check_work: bool = True,
    stop_at_first: bool = False,
    backend: Optional[ExecutionBackend] = None,
) -> WorkloadReport:
    """Run one workload through all engines and collect divergences.

    ``engines`` overrides the automatic selection (reference engine is
    always added); ``include_naive`` adds the deliberately broken
    strategy for harness self-tests; ``stop_at_first`` returns at the
    first divergence (the shrinker's fast path); ``backend`` routes
    every engine through a specific execution backend (the sharded
    equivalence sweep pins sharded == serial bit for bit).
    """
    profile = workload.profile
    if engines is None:
        engines = available_engines(profile, workload.num_vertices,
                                    include_naive=include_naive)
    engines = list(engines)
    if REFERENCE_ENGINE not in engines:
        engines.insert(0, REFERENCE_ENGINE)

    report = WorkloadReport(workload=workload, engines=engines)
    graph = workload.build_graph()
    runners = {}
    values: Dict[str, Optional[np.ndarray]] = {}
    dead = set()
    for engine in engines:
        runners[engine] = build_runner(engine, profile, backend=backend)
        report.edge_work[engine] = []

    def step(apply_fn, batch_index: int) -> None:
        for engine in engines:
            if engine in dead:
                continue
            runner = runners[engine]
            before = runner.metrics.snapshot()
            try:
                values[engine] = np.asarray(apply_fn(runner),
                                            dtype=np.float64)
            except Exception as exc:  # noqa: BLE001 -- crashes are findings
                report.divergences.append(Divergence(
                    engine=engine, batch_index=batch_index, kind="crash",
                    detail=f"{type(exc).__name__}: {exc}",
                ))
                dead.add(engine)
                values[engine] = None
                continue
            delta = runner.metrics.delta_since(before)
            report.edge_work[engine].append(delta.edge_computations)

    def judge(batch_index: int, stabilised: bool) -> None:
        reference = values.get(REFERENCE_ENGINE)
        if reference is None:
            return
        for engine in engines:
            if engine == REFERENCE_ENGINE or engine in dead:
                continue
            verdict = compare_snapshots(values[engine], reference,
                                        profile.tolerance)
            if verdict is not None:
                kind, detail, max_error = verdict
                report.divergences.append(Divergence(
                    engine=engine, batch_index=batch_index, kind=kind,
                    detail=detail, max_error=max_error,
                ))
        if check_work and stabilised and "graphbolt" not in dead:
            refined = report.edge_work["graphbolt"][-1]
            restart = report.edge_work[REFERENCE_ENGINE][-1]
            if refined > restart:
                report.divergences.append(Divergence(
                    engine="graphbolt", batch_index=batch_index,
                    kind="work",
                    detail=(
                        f"refinement processed {refined} edges on a "
                        f"stabilised (empty) batch; restart needed only "
                        f"{restart}"
                    ),
                ))

    step(lambda runner: runner.setup(graph), batch_index=-1)
    judge(batch_index=-1, stabilised=False)
    if stop_at_first and report.divergences:
        return report

    for index, batch in enumerate(workload.schedule):
        step(lambda runner: runner.apply(batch), batch_index=index)
        judge(batch_index=index, stabilised=_is_stabilised(batch))
        report.batches_checked += 1
        if stop_at_first and report.divergences:
            break
    return report
