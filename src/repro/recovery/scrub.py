"""Background integrity scrubbing for durable state directories.

Every durable artifact this system writes is CRC-guarded -- WAL records
(:mod:`repro.recovery.wal`), checkpoint payloads
(:mod:`repro.runtime.checkpoint`), snapshot-store segment files
(:mod:`repro.graph.storage`) -- but until now those CRCs were only
checked when the artifact happened to be read.  Bit-rot on a segment
nobody reopens sits undetected until the worst moment: a restart, a
failover, a replica bootstrap.  The :class:`IntegrityScrubber` walks a
state directory *proactively*, re-verifying every CRC it can find, and
-- with ``repair=True`` -- heals what it can:

- **Store segments.**  The six canonical arrays of a snapshot are a
  CSR+CSC pair over the *same* edge set, sorted by ``(src, dst)`` and
  ``(dst, src)`` respectively.  Edge keys are unique, so each ordering
  is a permutation-independent total order: a damaged direction can be
  rebuilt **bit-for-bit** from the clean one in heap (a lexsort and a
  bincount), and the rebuild is proven by comparing its CRC32 against
  the manifest's recorded value before the file is replaced.  Damage
  spanning both directions cannot be rebuilt standalone -- the
  generation is quarantined (files sidelined to ``quarantine/``, the
  manifest entry dropped) so nothing ever silently serves rotten data;
  a replication cluster then heals by re-shipping from the writer
  (:meth:`repro.serving.replication.ReplicationCluster.scrub`).

- **Sealed WAL segments.**  A corrupt record inside history that the
  newest checkpoint already covers is repaired by garbage-collecting
  the covered prefix (recovery never replays it); damage *above* the
  checkpoint is unrepairable standalone and is reported as such.

- **Checkpoints.**  A checkpoint whose payload checksum fails is
  sidelined; recovery already skips unloadable generations, so
  sidelining only makes the skip explicit and durable.

Results land in a machine-readable ``scrub-report.json`` in the state
directory plus ``scrub.*`` counters, and surface through
``repro scrub [--repair]`` and ``repro replication-status``.
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.storage import (
    ARRAY_DTYPES,
    ARRAY_NAMES,
    StoreError,
    verify_segment_file,
    _HEADER_SIZE,
    _pack_header,
)
from repro.obs.registry import get_registry
from repro.recovery.wal import _decode_record
from repro.runtime.checkpoint import read_store_manifest

__all__ = [
    "IntegrityScrubber",
    "ScrubFinding",
    "ScrubReport",
    "scrub_state_dir",
]

_OUT_ARRAYS = ("out_offsets", "out_targets", "out_weights")
_IN_ARRAYS = ("in_offsets", "in_sources", "in_weights")
_REPORT_NAME = "scrub-report.json"


@dataclass
class ScrubFinding:
    """One detected integrity violation (and what repair did about it)."""

    kind: str  # "store" | "wal" | "checkpoint"
    path: str
    detail: str
    snapshot: Optional[str] = None
    array: Optional[str] = None
    first_seq: Optional[int] = None
    repaired: bool = False
    repair: str = ""

    def to_json(self) -> Dict:
        payload = {"kind": self.kind, "path": self.path,
                   "detail": self.detail, "repaired": self.repaired,
                   "repair": self.repair}
        if self.snapshot is not None:
            payload["snapshot"] = self.snapshot
        if self.array is not None:
            payload["array"] = self.array
        if self.first_seq is not None:
            payload["first_seq"] = self.first_seq
        return payload


@dataclass
class ScrubReport:
    """The outcome of one scrub pass over one state directory."""

    root: str
    checked: Dict[str, int] = field(default_factory=dict)
    findings: List[ScrubFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def repaired(self) -> bool:
        """True when every finding was healed (vacuously true when
        the directory was clean)."""
        return all(finding.repaired for finding in self.findings)

    def to_json(self) -> Dict:
        return {
            "root": self.root,
            "ok": self.ok,
            "repaired": self.repaired,
            "checked": dict(self.checked),
            "findings": [finding.to_json() for finding in self.findings],
        }

    def summary(self) -> str:
        checked = sum(self.checked.values())
        if self.ok:
            return f"scrub {self.root}: {checked} artifacts clean"
        healed = sum(1 for finding in self.findings if finding.repaired)
        return (
            f"scrub {self.root}: {len(self.findings)} corruption(s) in "
            f"{checked} artifacts, {healed} repaired"
        )


# ----------------------------------------------------------------------
# Bit-for-bit direction rebuild (CSR <-> CSC transposition)
# ----------------------------------------------------------------------
def _rebuild_direction(num_vertices: int, rebuild_out: bool,
                       offsets: np.ndarray, endpoints: np.ndarray,
                       weights: np.ndarray) -> Dict[str, np.ndarray]:
    """Rebuild one direction's three arrays from the clean other one.

    ``offsets``/``endpoints``/``weights`` are the *clean* direction.
    Because edge keys are unique and both canonical orders are strict
    total orders, the result is bit-for-bit the arrays the original
    constructor produced.
    """
    counts = np.diff(np.asarray(offsets, dtype=np.int64))
    anchor = np.repeat(np.arange(num_vertices, dtype=np.int64), counts)
    other = np.asarray(endpoints, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    if rebuild_out:
        # clean = in direction: anchor is dst, other is src.
        src, dst = other, anchor
        order = np.lexsort((dst, src))  # (src, dst) order
        rebuilt_offsets = _offsets_of(src[order], num_vertices)
        return {"out_offsets": rebuilt_offsets,
                "out_targets": dst[order],
                "out_weights": weights[order]}
    # clean = out direction: anchor is src, other is dst.
    src, dst = anchor, other
    order = np.lexsort((src, dst))  # (dst, src) order
    rebuilt_offsets = _offsets_of(dst[order], num_vertices)
    return {"in_offsets": rebuilt_offsets,
            "in_sources": src[order],
            "in_weights": weights[order]}


def _offsets_of(sorted_keys: np.ndarray, num_vertices: int) -> np.ndarray:
    counts = np.bincount(sorted_keys, minlength=num_vertices)
    offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets


def _segment_bytes(array: np.ndarray, dtype: str) -> Tuple[bytes, int]:
    data = np.ascontiguousarray(
        array, dtype=np.dtype(dtype)
    ).tobytes()
    return data, zlib.crc32(data) & 0xFFFFFFFF


def _write_segment(path: str, dtype: str, count: int,
                   crc: int, data: bytes) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as stream:
            stream.write(_pack_header(dtype, count, crc))
            stream.write(data)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.remove(tmp)
        raise


def _open_clean_array(path: str, dtype: str, count: int) -> np.ndarray:
    if count == 0:
        return np.empty(0, dtype=np.dtype(dtype))
    return np.memmap(path, dtype=np.dtype(dtype), mode="r",
                     offset=_HEADER_SIZE, shape=(int(count),))


@dataclass
class _StoreGroup:
    """One snapshot generation to scrub: its root, metadata, source."""

    root: str
    snapshot: str
    num_vertices: int
    arrays: Dict[str, Dict]
    source: str  # "manifest" | "reference"


class IntegrityScrubber:
    """Walks one state directory's durable artifacts and re-checks CRCs.

    Parameters
    ----------
    state_dir:
        A writer's or replica's state directory (``wal/`` +
        ``checkpoints/`` + optional quarantine/fence files).
    store_root:
        Where this node's snapshot-store segment files live.  For a
        replica this is its spool (``<dir>/store``); when omitted, the
        roots referenced by manifest-mode checkpoints are used (the
        standalone-writer case).
    """

    def __init__(self, state_dir: str,
                 store_root: Optional[str] = None) -> None:
        self.state_dir = state_dir
        self.store_root = store_root
        self.wal_dir = os.path.join(state_dir, "wal")
        self.ckpt_dir = os.path.join(state_dir, "checkpoints")

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------
    def scan(self, write_report: bool = True) -> ScrubReport:
        report = ScrubReport(root=self.state_dir)
        self._scan_wal(report)
        self._scan_checkpoints(report)
        for group in self._store_groups(report):
            self._scan_store_group(report, group)
        registry = get_registry()
        registry.counter("scrub.segments_checked").inc(
            sum(report.checked.values())
        )
        if report.findings:
            registry.counter("scrub.corruption_found").inc(
                len(report.findings)
            )
        if write_report:
            self.write_report(report)
        return report

    def _wal_segments(self) -> List[Tuple[int, str]]:
        if not os.path.isdir(self.wal_dir):
            return []
        entries = []
        for name in os.listdir(self.wal_dir):
            stem, ext = os.path.splitext(name)
            if ext == ".jsonl" and stem.isdigit():
                entries.append((int(stem),
                                os.path.join(self.wal_dir, name)))
        return sorted(entries)

    def _scan_wal(self, report: ScrubReport) -> None:
        segments = self._wal_segments()
        report.checked["wal_segments"] = len(segments)
        records = 0
        for index, (first_seq, path) in enumerate(segments):
            last = index == len(segments) - 1
            with open(path, "rb") as stream:
                raw = stream.read()
            text = raw.decode("utf-8", errors="surrogateescape")
            parts = text.split("\n")
            body, tail = parts[:-1], parts[-1]
            damaged = None
            for line in body:
                records += 1
                try:
                    _decode_record(line)
                except ValueError as exc:
                    damaged = f"corrupt record: {exc}"
                    break
            if damaged is None and tail and not last:
                # Only the newest segment may carry a torn tail (the
                # normal crash artifact the WAL truncates on open).
                damaged = "unterminated record mid-history"
            if damaged is not None:
                report.findings.append(ScrubFinding(
                    kind="wal", path=path, detail=damaged,
                    first_seq=first_seq,
                ))
        report.checked["wal_records"] = records

    def _checkpoints(self) -> List[Tuple[int, str]]:
        if not os.path.isdir(self.ckpt_dir):
            return []
        entries = []
        for name in os.listdir(self.ckpt_dir):
            if name.startswith("ckpt-") and name.endswith(".npz"):
                stem = name[5:-4]
                if stem.isdigit():
                    entries.append((int(stem),
                                    os.path.join(self.ckpt_dir, name)))
        return sorted(entries)

    def _scan_checkpoints(self, report: ScrubReport) -> None:
        checkpoints = self._checkpoints()
        report.checked["checkpoints"] = len(checkpoints)
        for seq, path in checkpoints:
            try:
                read_store_manifest(path)
            except ValueError as exc:
                report.findings.append(ScrubFinding(
                    kind="checkpoint", path=path, first_seq=seq,
                    detail=f"checkpoint payload verification failed: {exc}",
                ))

    def _store_groups(self, report: ScrubReport) -> List[_StoreGroup]:
        groups: Dict[Tuple[str, str], _StoreGroup] = {}
        roots = []
        if self.store_root is not None:
            roots.append(self.store_root)
        # Manifest-mode checkpoints name the snapshots they depend on;
        # resolve them against store_root when given (replica spools
        # hold *copies* -- the recorded root is the writer's).
        for _seq, path in self._checkpoints():
            try:
                reference = read_store_manifest(path)
            except ValueError:
                continue  # already reported by _scan_checkpoints
            if reference is None:
                continue
            root = self.store_root or reference["root"]
            key = (os.path.abspath(root), reference["snapshot"])
            groups.setdefault(key, _StoreGroup(
                root=root, snapshot=reference["snapshot"],
                num_vertices=int(reference["num_vertices"]),
                arrays={name: dict(meta) for name, meta
                        in reference["arrays"].items()},
                source="reference",
            ))
            if reference["root"] not in roots:
                roots.append(reference["root"])
        # A store manifest, when present, is authoritative for every
        # generation it lists (including ones no checkpoint references
        # yet) -- it also enables quarantine on unrepairable damage.
        for root in roots:
            manifest_path = os.path.join(root, "manifest.json")
            if not os.path.exists(manifest_path):
                continue
            try:
                with open(manifest_path, encoding="utf-8") as stream:
                    manifest = json.load(stream)
            except (OSError, json.JSONDecodeError) as exc:
                report.findings.append(ScrubFinding(
                    kind="store", path=manifest_path,
                    detail=f"unreadable store manifest: {exc}",
                ))
                continue
            for snapshot, entry in manifest.get("snapshots", {}).items():
                key = (os.path.abspath(root), snapshot)
                groups[key] = _StoreGroup(
                    root=root, snapshot=snapshot,
                    num_vertices=int(entry["num_vertices"]),
                    arrays={name: dict(meta) for name, meta
                            in entry["arrays"].items()},
                    source="manifest",
                )
        return [groups[key] for key in sorted(groups)]

    def _scan_store_group(self, report: ScrubReport,
                          group: _StoreGroup) -> None:
        checked = report.checked.setdefault("store_segments", 0)
        for name in ARRAY_NAMES:
            meta = group.arrays.get(name)
            if meta is None:
                continue
            path = os.path.join(group.root, meta["file"])
            report.checked["store_segments"] = checked = checked + 1
            try:
                dtype, count, crc = verify_segment_file(path)
                if (dtype != meta["dtype"]
                        or count != int(meta["count"])
                        or crc != int(meta["crc32"])):
                    raise StoreError(
                        f"segment {path} disagrees with its "
                        f"{group.source} entry"
                    )
            except (OSError, StoreError) as exc:
                report.findings.append(ScrubFinding(
                    kind="store", path=path, detail=str(exc),
                    snapshot=group.snapshot, array=name,
                ))

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def repair(self) -> ScrubReport:
        """Scan, then heal every finding that can be healed standalone.

        The returned (and persisted) report marks each finding with
        what happened; :attr:`ScrubReport.repaired` is the "everything
        healed" bit the CLI turns into an exit code.
        """
        report = self.scan(write_report=False)
        self._repair_stores(report)
        self._repair_wal(report)
        self._repair_checkpoints(report)
        healed = sum(1 for finding in report.findings if finding.repaired)
        if healed:
            get_registry().counter("scrub.repaired").inc(healed)
        self.write_report(report)
        return report

    def _repair_stores(self, report: ScrubReport) -> None:
        store_findings: Dict[Tuple[str, str], List[ScrubFinding]] = {}
        groups = {
            (os.path.abspath(group.root), group.snapshot): group
            for group in self._store_groups(ScrubReport(root=self.state_dir))
        }
        for finding in report.findings:
            if finding.kind == "store" and finding.snapshot is not None:
                root = os.path.abspath(os.path.dirname(finding.path))
                store_findings.setdefault(
                    (root, finding.snapshot), []
                ).append(finding)
        for key, findings in sorted(store_findings.items()):
            group = groups.get(key)
            if group is None:
                continue
            self._repair_store_group(group, findings)

    def _repair_store_group(self, group: _StoreGroup,
                            findings: List[ScrubFinding]) -> None:
        damaged = {finding.array for finding in findings}
        rebuild_out = damaged <= set(_OUT_ARRAYS)
        rebuild_in = damaged <= set(_IN_ARRAYS)
        if not (rebuild_out or rebuild_in):
            detail = self._quarantine_store_group(group)
            for finding in findings:
                finding.repaired = group.source == "manifest"
                finding.repair = detail
            return
        clean_names = _IN_ARRAYS if rebuild_out else _OUT_ARRAYS
        clean = {}
        try:
            for name in clean_names:
                meta = group.arrays[name]
                clean[name] = _open_clean_array(
                    os.path.join(group.root, meta["file"]),
                    meta["dtype"], int(meta["count"]),
                )
        except OSError as exc:
            detail = self._quarantine_store_group(group)
            for finding in findings:
                finding.repaired = group.source == "manifest"
                finding.repair = (
                    f"clean direction unreadable ({exc}); {detail}"
                )
            return
        if rebuild_out:
            rebuilt = _rebuild_direction(
                group.num_vertices, True,
                clean["in_offsets"], clean["in_sources"],
                clean["in_weights"],
            )
        else:
            rebuilt = _rebuild_direction(
                group.num_vertices, False,
                clean["out_offsets"], clean["out_targets"],
                clean["out_weights"],
            )
        # Prove the rebuild is bit-for-bit BEFORE replacing anything:
        # every rebuilt array's CRC must equal the recorded value.
        staged = {}
        for finding in findings:
            meta = group.arrays[finding.array]
            data, crc = _segment_bytes(rebuilt[finding.array],
                                       meta["dtype"])
            if (crc != int(meta["crc32"])
                    or len(data) != int(meta["count"])
                    * np.dtype(meta["dtype"]).itemsize):
                detail = self._quarantine_store_group(group)
                for other in findings:
                    other.repaired = group.source == "manifest"
                    other.repair = (
                        f"rebuild CRC mismatch on {finding.array}; "
                        f"{detail}"
                    )
                return
            staged[finding.array] = (meta, data, crc)
        for name, (meta, data, crc) in staged.items():
            _write_segment(
                os.path.join(group.root, meta["file"]),
                meta["dtype"], int(meta["count"]), crc, data,
            )
        direction = "out" if rebuild_out else "in"
        for finding in findings:
            finding.repaired = True
            finding.repair = (
                f"rebuilt {direction}-direction bit-for-bit from the "
                f"clean {'in' if rebuild_out else 'out'} direction"
            )

    def _quarantine_store_group(self, group: _StoreGroup) -> str:
        """Sideline a generation that cannot be rebuilt standalone.

        With a store manifest the entry is dropped too, so nothing can
        open the rotten generation again -- that counts as "handled"
        (the cluster layer re-ships a replacement).  A reference-only
        group (replica spool before its first restore) just sidelines
        the files; the adopting restore then fails loudly and the
        cluster resync re-ships them.
        """
        quarantine_dir = os.path.join(group.root, "quarantine")
        os.makedirs(quarantine_dir, exist_ok=True)
        moved = 0
        for name in ARRAY_NAMES:
            meta = group.arrays.get(name)
            if meta is None:
                continue
            path = os.path.join(group.root, meta["file"])
            if os.path.exists(path):
                os.replace(path, os.path.join(quarantine_dir,
                                              meta["file"]))
                moved += 1
        manifest_path = os.path.join(group.root, "manifest.json")
        if group.source == "manifest" and os.path.exists(manifest_path):
            with open(manifest_path, encoding="utf-8") as stream:
                manifest = json.load(stream)
            manifest.get("snapshots", {}).pop(group.snapshot, None)
            manifest.get("pins", {}).pop(group.snapshot, None)
            if manifest.get("current") == group.snapshot:
                remaining = sorted(manifest.get("snapshots", {}))
                manifest["current"] = remaining[-1] if remaining else None
            fd, tmp = tempfile.mkstemp(dir=group.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as stream:
                    json.dump(manifest, stream, indent=1, sort_keys=True)
                    stream.flush()
                    os.fsync(stream.fileno())
                os.replace(tmp, manifest_path)
            except BaseException:
                if os.path.exists(tmp):
                    os.remove(tmp)
                raise
        get_registry().counter("scrub.quarantined").inc()
        return (
            f"quarantined generation {group.snapshot} "
            f"({moved} files sidelined to {quarantine_dir})"
        )

    def _repair_wal(self, report: ScrubReport) -> None:
        wal_findings = sorted(
            (finding for finding in report.findings
             if finding.kind == "wal" and finding.first_seq is not None),
            key=lambda finding: finding.first_seq,
        )
        if not wal_findings:
            return
        checkpoints = self._checkpoints()
        ckpt_seq = checkpoints[-1][0] if checkpoints else None
        segments = self._wal_segments()
        bounds = {}
        for index, (first_seq, path) in enumerate(segments):
            end = (segments[index + 1][0]
                   if index + 1 < len(segments) else None)
            bounds[first_seq] = (path, end)
        quarantine_dir = os.path.join(self.wal_dir, "quarantine")
        covered_through = None
        for finding in wal_findings:
            _path, end = bounds.get(finding.first_seq, (None, None))
            if ckpt_seq is not None and end is not None and end <= ckpt_seq:
                covered_through = max(covered_through or 0, end)
                finding.repaired = True
                finding.repair = (
                    f"garbage-collected: history below {end} is covered "
                    f"by checkpoint {ckpt_seq}"
                )
            else:
                finding.repair = (
                    "damage above the newest checkpoint cannot be "
                    "rebuilt standalone; re-ship from a writer or "
                    "accept the loss"
                )
        if covered_through is None:
            return
        os.makedirs(quarantine_dir, exist_ok=True)
        # Contiguity: everything below the highest covered bound goes,
        # clean segments included -- recovery replays from the
        # checkpoint, so this prefix is dead weight anyway.
        for first_seq, (path, _end) in sorted(bounds.items()):
            next_first = bounds[first_seq][1]
            if next_first is not None and next_first <= covered_through:
                os.replace(path, os.path.join(quarantine_dir,
                                              os.path.basename(path)))

    def _repair_checkpoints(self, report: ScrubReport) -> None:
        quarantine_dir = os.path.join(self.ckpt_dir, "quarantine")
        for finding in report.findings:
            if finding.kind != "checkpoint":
                continue
            os.makedirs(quarantine_dir, exist_ok=True)
            os.replace(finding.path, os.path.join(
                quarantine_dir, os.path.basename(finding.path)
            ))
            finding.repaired = True
            finding.repair = (
                "sidelined; recovery falls back to the next loadable "
                "generation"
            )

    # ------------------------------------------------------------------
    def write_report(self, report: ScrubReport) -> str:
        path = os.path.join(self.state_dir, _REPORT_NAME)
        os.makedirs(self.state_dir, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.state_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as stream:
                json.dump(report.to_json(), stream, indent=1,
                          sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.remove(tmp)
            raise
        return path


def scrub_state_dir(state_dir: str, store_root: Optional[str] = None,
                    repair: bool = False) -> ScrubReport:
    """One-shot convenience wrapper (the ``repro scrub`` entry point)."""
    scrubber = IntegrityScrubber(state_dir, store_root=store_root)
    return scrubber.repair() if repair else scrubber.scan()
