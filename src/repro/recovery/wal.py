"""The durable write-ahead log of mutation batches.

Streaming state is *checkpoint + log*: a crash loses neither the rolling
values nor the batches since the last checkpoint, because every
:class:`~repro.graph.mutation.MutationBatch` is appended here **before**
the engine applies it.  Recovery replays the tail (see
:mod:`repro.recovery.manager`).

Layout: append-only JSONL segments under one directory, each named for
the sequence number of its first record (``00000000000000000000.jsonl``)
and rotated every ``segment_records`` appends.  One record per line::

    {"seq": 17, "crc": 2893571305, "batch": {"add_src": [...], ...}}

``crc`` is the CRC32 of the canonical JSON of ``{"seq", "batch"}``, so
bit rot and torn writes are both detected.  On open the final segment's
tail is verified: a partial or corrupt **final** record is the signature
of a crash mid-append and is *truncated* (the record never committed --
the engine never applied it either, so dropping it is lossless); a bad
record anywhere **before** the tail means real corruption and raises
:class:`WALCorruptionError` instead of silently resuming on garbage.

Weights survive exactly: ``json`` serialises floats with ``repr``,
which round-trips IEEE-754 doubles bit-for-bit.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.graph.mutation import MutationBatch
from repro.obs.registry import get_registry
from repro.testing import faults
from repro.testing.faults import InjectedCrash

__all__ = [
    "SealedSegment",
    "WALCorruptionError",
    "WriteAheadLog",
    "batch_to_payload",
    "payload_to_batch",
]

_SEGMENT_DIGITS = 20
_SEGMENT_SUFFIX = ".jsonl"


class WALCorruptionError(ValueError):
    """A corrupt record that is *not* explainable as a torn tail."""


def batch_to_payload(batch: MutationBatch) -> Dict:
    """A JSON-safe dict that reconstructs ``batch`` exactly."""
    return {
        "add_src": batch.add_src.tolist(),
        "add_dst": batch.add_dst.tolist(),
        "add_weight": batch.add_weight.tolist(),
        "del_src": batch.del_src.tolist(),
        "del_dst": batch.del_dst.tolist(),
        "grow_to": batch.grow_to,
    }


def payload_to_batch(payload: Dict) -> MutationBatch:
    return MutationBatch(
        add_src=payload["add_src"],
        add_dst=payload["add_dst"],
        add_weight=payload["add_weight"] or None,
        del_src=payload["del_src"],
        del_dst=payload["del_dst"],
        grow_to=payload["grow_to"],
    )


def _record_crc(seq: int, payload: Dict) -> int:
    body = json.dumps({"seq": seq, "batch": payload}, sort_keys=True,
                      separators=(",", ":"))
    return zlib.crc32(body.encode("utf-8"))


def _encode_record(seq: int, payload: Dict) -> str:
    record = {"seq": seq, "crc": _record_crc(seq, payload),
              "batch": payload}
    return json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"


def _decode_record(line: str) -> Tuple[int, Dict]:
    """Parse and CRC-check one line; raises ``ValueError`` flavours."""
    record = json.loads(line)
    seq = record["seq"]
    payload = record["batch"]
    if record["crc"] != _record_crc(seq, payload):
        raise ValueError(f"CRC mismatch on record seq={seq}")
    return seq, payload


def _segment_name(first_seq: int) -> str:
    return f"{first_seq:0{_SEGMENT_DIGITS}d}{_SEGMENT_SUFFIX}"


@dataclass
class _Segment:
    path: str
    first_seq: int
    records: int


@dataclass(frozen=True)
class SealedSegment:
    """Shipping view of one sealed (immutable) segment.

    ``first_seq`` / ``end_seq`` bound the records as ``[first, end)``;
    ``lines`` are the raw encoded records, CRC intact, so a replica can
    verify them end-to-end with the same :func:`_decode_record` the WAL
    itself uses.
    """

    path: str
    first_seq: int
    end_seq: int

    @property
    def records(self) -> int:
        return self.end_seq - self.first_seq

    def lines(self) -> List[str]:
        from repro.testing import faults

        with open(self.path, "rb") as stream:
            raw = stream.read()
        if faults.hit_corruptible("wal.segment_read"):
            raw = faults.flip_byte(raw)
        text = raw.decode("utf-8", errors="surrogateescape")
        return [part + "\n" for part in text.split("\n")[:-1]]


class WriteAheadLog:
    """Append-only, CRC-guarded, torn-tail-tolerant batch log."""

    def __init__(self, directory: str, segment_records: int = 256) -> None:
        if segment_records < 1:
            raise ValueError("segment_records must be >= 1")
        self.directory = directory
        self.segment_records = segment_records
        os.makedirs(directory, exist_ok=True)
        self._stream = None
        self._open_segment: Optional[_Segment] = None
        self._force_sealed: set = set()
        self.torn_records_truncated = 0
        self._segments = self._scan()
        self.next_seq = (
            self._segments[-1].first_seq + self._segments[-1].records
            if self._segments else 0
        )

    # ------------------------------------------------------------------
    # Opening / verification
    # ------------------------------------------------------------------
    def _segment_paths(self) -> List[Tuple[int, str]]:
        entries = []
        for name in os.listdir(self.directory):
            if not name.endswith(_SEGMENT_SUFFIX):
                continue
            stem = name[: -len(_SEGMENT_SUFFIX)]
            if not stem.isdigit():
                continue
            entries.append((int(stem), os.path.join(self.directory, name)))
        entries.sort()
        return entries

    def _scan(self) -> List[_Segment]:
        """Verify every segment; truncate a torn tail on the last one."""
        segments: List[_Segment] = []
        paths = self._segment_paths()
        expected_seq = None
        for position, (first_seq, path) in enumerate(paths):
            is_last = position == len(paths) - 1
            if expected_seq is not None and first_seq != expected_seq:
                raise WALCorruptionError(
                    f"segment {path} starts at seq {first_seq}, "
                    f"expected {expected_seq}"
                )
            records = self._verify_segment(path, first_seq,
                                           truncate_tail=is_last)
            if records == 0 and is_last and segments:
                # The crash happened before the rotated segment received
                # its first complete record; drop the empty file.
                os.remove(path)
                break
            segments.append(_Segment(path=path, first_seq=first_seq,
                                     records=records))
            expected_seq = first_seq + records
        return segments

    def _verify_segment(self, path: str, first_seq: int,
                        truncate_tail: bool) -> int:
        """Count valid records; handle (or reject) a bad tail."""
        good_offset = 0
        records = 0
        bad: Optional[str] = None
        with open(path, "rb") as stream:
            offset = 0
            for raw in stream:
                offset += len(raw)
                line = raw.decode("utf-8", errors="replace")
                complete = line.endswith("\n")
                try:
                    if not complete:
                        raise ValueError("partial final record")
                    seq, _ = _decode_record(line)
                    if seq != first_seq + records:
                        raise ValueError(
                            f"sequence gap: record says {seq}, "
                            f"expected {first_seq + records}"
                        )
                except ValueError as exc:
                    bad = str(exc)
                    break
                records += 1
                good_offset = offset
            else:
                return records
            if stream.read(1):
                # Valid records follow the bad one: this is not a torn
                # tail, it is corruption in the middle of the log.
                raise WALCorruptionError(
                    f"corrupt record mid-segment in {path} "
                    f"(after {records} good records): {bad}"
                )
        if not truncate_tail:
            raise WALCorruptionError(
                f"corrupt tail in non-final segment {path}: {bad}"
            )
        with open(path, "r+b") as stream:
            stream.truncate(good_offset)
        self.torn_records_truncated += 1
        get_registry().counter("wal.torn_records_truncated").inc()
        return records

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, batch: MutationBatch) -> int:
        """Durably append one batch; returns its sequence number."""
        seq = self.next_seq
        line = _encode_record(seq, batch_to_payload(batch))
        stream = self._stream_for(seq)
        try:
            faults.hit("wal.append")
            faults.hit("wal.append.torn")
        except InjectedCrash as crash:
            if crash.site == "wal.append.torn":
                # Simulate a kill mid-write: half the record's bytes
                # reach the disk, no newline, no flush-completion.
                stream.write(line[: max(1, len(line) // 2)])
                stream.flush()
            raise
        stream.write(line)
        stream.flush()
        self.next_seq = seq + 1
        self._open_segment.records += 1
        registry = get_registry()
        registry.counter("wal.records_appended").inc()
        registry.gauge("wal.next_seq").set(self.next_seq)
        return seq

    def _stream_for(self, seq: int):
        segment = self._open_segment
        if (segment is None
                or segment.records >= self.segment_records
                or self._stream is None):
            self._roll(seq)
        return self._stream

    def _roll(self, first_seq: int) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None
        if (self._segments
                and self._segments[-1].records < self.segment_records
                and self._segments[-1].path not in self._force_sealed):
            segment = self._segments[-1]
            if segment.first_seq + segment.records != first_seq:
                raise WALCorruptionError(
                    f"append seq {first_seq} does not continue segment "
                    f"{segment.path}"
                )
        else:
            segment = _Segment(
                path=os.path.join(self.directory, _segment_name(first_seq)),
                first_seq=first_seq, records=0,
            )
            self._segments.append(segment)
            get_registry().counter("wal.segments_created").inc()
        self._stream = open(segment.path, "a", encoding="utf-8")
        self._open_segment = segment

    # ------------------------------------------------------------------
    # Replay / garbage collection
    # ------------------------------------------------------------------
    def replay(self, start_seq: int = 0
               ) -> Iterator[Tuple[int, MutationBatch]]:
        """Yield ``(seq, batch)`` for every record with seq >= start."""
        for segment in self._segments:
            if segment.first_seq + segment.records <= start_seq:
                continue
            with open(segment.path, encoding="utf-8") as stream:
                for line in stream:
                    if not line.endswith("\n"):
                        break  # torn tail that appeared after our scan
                    seq, payload = _decode_record(line)
                    if seq < start_seq:
                        continue
                    yield seq, payload_to_batch(payload)

    def gc(self, covered_seq: int) -> int:
        """Delete segments whose every record is below ``covered_seq``
        (i.e. already captured by a checkpoint); returns segments
        removed."""
        removed = 0
        keep: List[_Segment] = []
        for segment in self._segments:
            last_in_segment = segment.first_seq + segment.records - 1
            is_open = segment is self._open_segment
            if segment.records and last_in_segment < covered_seq \
                    and not is_open:
                os.remove(segment.path)
                removed += 1
            else:
                keep.append(segment)
        self._segments = keep
        if removed:
            get_registry().counter("wal.segments_collected").inc(removed)
        return removed

    # ------------------------------------------------------------------
    # Sealing / shipping
    # ------------------------------------------------------------------
    def _is_sealed(self, segment: _Segment, is_last: bool) -> bool:
        if not is_last:
            return True
        return (segment.records >= self.segment_records
                or segment.path in self._force_sealed)

    def sealed_segments(self) -> List[SealedSegment]:
        """Every *sealed* segment, oldest first.

        A segment is sealed when it is full (``segment_records``
        appends), when :meth:`seal_active` forced it closed, or when a
        later segment exists -- only the final, still-growing segment
        is excluded.  Sealed segments never gain records, which is what
        makes them safe units of shipment for replication.
        """
        out: List[SealedSegment] = []
        for position, segment in enumerate(self._segments):
            is_last = position == len(self._segments) - 1
            if segment.records and self._is_sealed(segment, is_last):
                out.append(SealedSegment(
                    path=segment.path, first_seq=segment.first_seq,
                    end_seq=segment.first_seq + segment.records,
                ))
        return out

    def seal_active(self) -> bool:
        """Force the open partial segment sealed (flush + close).

        The next append rolls a fresh segment.  Returns ``True`` if a
        partial segment was actually sealed; a full or absent tail is a
        no-op.  Used by the replication writer to ship the WAL tail on
        demand (promotion, orderly shutdown, final sync).
        """
        if not self._segments:
            return False
        segment = self._segments[-1]
        if (segment.records == 0
                or segment.records >= self.segment_records
                or segment.path in self._force_sealed):
            return False
        self._force_sealed.add(segment.path)
        if self._stream is not None:
            self._stream.close()
            self._stream = None
        self._open_segment = None
        get_registry().counter("wal.segments_sealed").inc()
        return True

    def fast_forward(self, seq: int) -> None:
        """Position an *empty* log at ``seq`` (checkpoint-covered prefix).

        A replica that adopts a checkpoint ahead of its mirror resets
        the mirror to the checkpoint's position: the superseded records
        are garbage-collected first, then the next append opens a
        segment named for ``seq`` -- keeping the scan-time contiguity
        invariant intact.
        """
        if self._segments:
            raise ValueError(
                "fast_forward requires an empty log (gc the covered "
                "segments first)"
            )
        if seq < self.next_seq:
            raise ValueError(
                f"cannot fast-forward backwards ({self.next_seq} -> {seq})"
            )
        self.next_seq = seq

    # ------------------------------------------------------------------
    def segments(self) -> List[str]:
        return [segment.path for segment in self._segments]

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog(dir={self.directory!r}, "
            f"segments={len(self._segments)}, next_seq={self.next_seq})"
        )
