"""Checkpoint + WAL-tail recovery for the streaming analytics server.

A :class:`RecoveryManager` owns one on-disk state directory::

    state/
      manifest.json           deployment config (algorithm, graph spec)
      quarantine.json         sequence numbers of poison batches
      wal/                    append-only mutation log (repro.recovery.wal)
      checkpoints/
        ckpt-<seq>.npz        atomic engine snapshots, newest wins

and composes three guarantees:

1. **Write-ahead** -- :meth:`log_batch` appends every mutation batch to
   the WAL *before* the engine applies it (with bounded
   retry-with-backoff over transient I/O faults);
2. **Periodic atomic checkpoints** -- :meth:`maybe_checkpoint` snapshots
   the engine every ``checkpoint_every`` batches via
   :func:`repro.runtime.checkpoint.save_engine` (temp file +
   ``os.replace``, checksum in the payload), rotates retained
   generations, and garbage-collects WAL segments the oldest retained
   checkpoint already covers;
3. **Verified recovery** -- :meth:`recover` restores the newest
   *loadable* checkpoint (corrupt generations are skipped with a
   counter, falling back to older ones) and replays the WAL tail
   through ``apply_mutations``.  Replay applies the exact quarantine
   rule the live server applies, so recovered state is bit-for-bit the
   state an uninterrupted process would hold -- the property
   ``repro fuzz --crash`` proves with the PR-1 oracle.

Metrics flow through :mod:`repro.obs.registry` (``recovery.*`` and
``wal.*``) and recovery work is wrapped in tracer spans.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import time
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.core.engine import GraphBoltEngine
from repro.core.model import IncrementalAlgorithm
from repro.graph.mutation import MutationBatch
from repro.obs import trace
from repro.obs.registry import get_registry
from repro.recovery.wal import SealedSegment, WriteAheadLog
from repro.runtime.checkpoint import (
    load_engine,
    read_checkpoint_extra,
    save_engine,
)
from repro.testing import faults
from repro.testing.faults import InjectedCrash

__all__ = [
    "RecoveryError",
    "RecoveryManager",
    "SegmentGapError",
    "default_poison_check",
]

_CKPT_RE = re.compile(r"^ckpt-(\d{20})\.npz$")


class RecoveryError(RuntimeError):
    """Recovery cannot proceed (no loadable checkpoint, bad directory)."""


class SegmentGapError(RecoveryError):
    """The sealed-segment sequence has a hole or is reordered.

    Raised by :meth:`RecoveryManager.sealed_segments` instead of
    letting a shipper (or replayer) silently walk past missing
    records: a gap means some segment was lost, deleted out-of-band,
    or delivered out of order, and continuing would fork the state.
    """


def default_poison_check(values: np.ndarray) -> Optional[str]:
    """The poison predicate: NaNs never mean anything but corruption.

    Infinities are *not* poison by default -- path algorithms legitimately
    report unreachable vertices as ``inf``.
    """
    if values is not None and np.isnan(values).any():
        vertex = int(np.flatnonzero(
            np.isnan(values).reshape(values.shape[0], -1).any(axis=1)
        )[0])
        return f"non-finite values (NaN at vertex {vertex})"
    return None


def _atomic_write_json(path: str, payload) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".json.tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, indent=2, sort_keys=True)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.remove(tmp_path)
        raise


class RecoveryManager:
    """Durability and crash recovery for one server's state directory."""

    def __init__(
        self,
        directory: str,
        checkpoint_every: int = 16,
        retain: int = 3,
        segment_records: int = 256,
        retry_attempts: int = 3,
        retry_backoff: float = 0.005,
        poison_check: Callable[[np.ndarray], Optional[str]]
            = default_poison_check,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if retain < 1:
            raise ValueError("retain must keep at least one generation")
        self.directory = directory
        self.checkpoint_every = checkpoint_every
        self.retain = retain
        self.retry_attempts = retry_attempts
        self.retry_backoff = retry_backoff
        self.poison_check = poison_check
        self._checkpoint_dir = os.path.join(directory, "checkpoints")
        os.makedirs(self._checkpoint_dir, exist_ok=True)
        self._remove_stale_temp_files()
        self.wal = WriteAheadLog(os.path.join(directory, "wal"),
                                 segment_records=segment_records)
        self._quarantine_path = os.path.join(directory, "quarantine.json")
        self._manifest_path = os.path.join(directory, "manifest.json")
        self._quarantined: Dict[int, str] = self._load_quarantine()

    def _remove_stale_temp_files(self) -> None:
        """A crash between temp-write and ``os.replace`` leaves ``*.tmp``
        droppings; they are, by construction, not state."""
        for root in (self.directory, self._checkpoint_dir):
            if not os.path.isdir(root):
                continue
            for name in os.listdir(root):
                if name.endswith(".tmp"):
                    os.remove(os.path.join(root, name))

    # ------------------------------------------------------------------
    # Manifest (deployment config for `repro recover`)
    # ------------------------------------------------------------------
    def write_manifest(self, config: Dict) -> None:
        _atomic_write_json(self._manifest_path, config)

    def read_manifest(self) -> Dict:
        if not os.path.exists(self._manifest_path):
            raise RecoveryError(
                f"no manifest.json in {self.directory}; was this "
                f"directory created by `repro serve --wal`?"
            )
        with open(self._manifest_path, encoding="utf-8") as stream:
            return json.load(stream)

    # ------------------------------------------------------------------
    # Quarantine / durable-skip bookkeeping
    # ------------------------------------------------------------------
    #: Reason prefixes that mark an *administrative* skip (admission
    #: pressure) rather than a poison finding.  All skip-marked records
    #: are treated identically by replay; the prefix only keeps the
    #: operator's ledger honest about why each record was dropped.
    _SKIP_PREFIXES = ("shed:", "superseded:")

    @property
    def quarantined(self) -> FrozenSet[int]:
        """Every skip-marked sequence number (poison + shed + superseded)."""
        return frozenset(self._quarantined)

    def quarantine_reasons(self) -> Dict[int, str]:
        return dict(self._quarantined)

    def poison_quarantined(self) -> FrozenSet[int]:
        """Only the sequences quarantined for *poison*, not admission."""
        return frozenset(
            seq for seq, reason in self._quarantined.items()
            if not reason.startswith(self._SKIP_PREFIXES)
        )

    def _load_quarantine(self) -> Dict[int, str]:
        if not os.path.exists(self._quarantine_path):
            return {}
        with open(self._quarantine_path, encoding="utf-8") as stream:
            payload = json.load(stream)
        return {int(seq): reason for seq, reason in payload.items()}

    def _mark_skipped(self, seq: int, reason: str) -> None:
        """Durably record that replay must skip WAL record ``seq``."""
        self._quarantined[int(seq)] = reason
        _atomic_write_json(
            self._quarantine_path,
            {str(seq): reason for seq, reason in self._quarantined.items()},
        )
        get_registry().gauge("recovery.quarantine_size").set(
            len(self._quarantined)
        )

    def quarantine(self, seq: int, reason: str) -> None:
        """Durably mark WAL record ``seq`` as poison: replay skips it."""
        self._mark_skipped(seq, reason)
        get_registry().counter("recovery.batches_quarantined").inc()

    def shed(self, seq: int, reason: str = "admission pressure") -> None:
        """Durably mark record ``seq`` as shed by admission control.

        A shed batch was WAL-logged at submit time but never applied;
        marking it keeps replay bit-for-bit with the live loop, which
        also never applied it.  Same mechanism as :meth:`quarantine`,
        distinct ledger entry and metric.
        """
        self._mark_skipped(seq, f"shed: {reason}")
        get_registry().counter("recovery.batches_shed").inc()

    def supersede(self, seq: int, into_seq: int) -> None:
        """Durably mark record ``seq`` as coalesced into ``into_seq``.

        The coalesce admission policy merges queued batches into one
        equivalent batch, logged as its own WAL record; the constituents
        must then be skipped on replay or their mutations would apply
        twice.
        """
        self._mark_skipped(
            seq, f"superseded: coalesced into record {into_seq}"
        )
        get_registry().counter("recovery.batches_superseded").inc()

    # ------------------------------------------------------------------
    # Retry-with-backoff over transient I/O faults
    # ------------------------------------------------------------------
    def _with_retries(self, what: str, action: Callable):
        attempt = 0
        while True:
            try:
                return action()
            except InjectedCrash:
                raise
            except OSError as exc:
                attempt += 1
                get_registry().counter("recovery.retries").inc()
                if attempt >= self.retry_attempts:
                    raise
                time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
                trace_note = f"{what} attempt {attempt} failed: {exc}"
                with trace.span("recovery.retry", detail=trace_note):
                    pass

    # ------------------------------------------------------------------
    # Write-ahead logging
    # ------------------------------------------------------------------
    def log_batch(self, batch: MutationBatch) -> int:
        """Append one batch to the WAL (retrying transient faults)."""
        return self._with_retries(
            "wal.append", lambda: self.wal.append(batch)
        )

    def import_skip_marks(self, marks: Dict[int, str]) -> int:
        """Merge a writer's durable skip ledger into this one.

        Replication ships the writer's quarantine/shed/supersede map
        alongside segments so a replica's replay skips exactly the
        records the writer skipped.  Existing local entries win (they
        were written for the same reason); returns how many new marks
        were adopted.
        """
        added = 0
        for seq, reason in marks.items():
            seq = int(seq)
            if seq not in self._quarantined:
                self._quarantined[seq] = str(reason)
                added += 1
        if added:
            _atomic_write_json(
                self._quarantine_path,
                {str(seq): reason
                 for seq, reason in self._quarantined.items()},
            )
            get_registry().gauge("recovery.quarantine_size").set(
                len(self._quarantined)
            )
        return added

    # ------------------------------------------------------------------
    # Sealed segments (the shipping surface of replication)
    # ------------------------------------------------------------------
    def sealed_segments(self) -> List[SealedSegment]:
        """Sealed WAL segments, oldest first, gap-checked.

        The contract shipping relies on: consecutive entries are
        sequence-contiguous (``prev.end_seq == next.first_seq``) and
        every file still exists on disk.  A violated contract raises
        :class:`SegmentGapError` naming the missing range -- never
        silently skips it -- because replaying or shipping past a hole
        would fork replica state from the writer's.
        """
        sealed = self.wal.sealed_segments()
        previous: Optional[SealedSegment] = None
        for segment in sealed:
            if not os.path.exists(segment.path):
                raise SegmentGapError(
                    f"sealed segment {segment.path} (records "
                    f"[{segment.first_seq}, {segment.end_seq})) vanished "
                    f"from disk; refusing to ship/replay past the gap"
                )
            if previous is not None and segment.first_seq != previous.end_seq:
                raise SegmentGapError(
                    f"sealed segments are not contiguous: "
                    f"{previous.path} ends at seq {previous.end_seq} but "
                    f"{segment.path} starts at seq {segment.first_seq}; "
                    f"records [{previous.end_seq}, {segment.first_seq}) "
                    f"are missing or reordered"
                )
            previous = segment
        return sealed

    def seal_active_segment(self) -> bool:
        """Force the WAL's open tail sealed so it becomes shippable."""
        return self.wal.seal_active()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoints(self) -> List[Tuple[int, str]]:
        """``(seq, path)`` of every retained generation, oldest first."""
        found = []
        for name in os.listdir(self._checkpoint_dir):
            match = _CKPT_RE.match(name)
            if match:
                found.append((int(match.group(1)),
                              os.path.join(self._checkpoint_dir, name)))
        found.sort()
        return found

    def _checkpoint_path(self, seq: int) -> str:
        return os.path.join(self._checkpoint_dir, f"ckpt-{seq:020d}.npz")

    def checkpoint(self, engine: GraphBoltEngine, seq: int) -> str:
        """Snapshot ``engine`` as covering WAL records ``[0, seq)``."""
        with trace.span("recovery.checkpoint", seq=seq):
            path = self._with_retries(
                "checkpoint.write",
                lambda: save_engine(
                    engine, self._checkpoint_path(seq),
                    extra={"recovery_seq": np.int64(seq)},
                ),
            )
        registry = get_registry()
        registry.counter("recovery.checkpoints_written").inc()
        registry.gauge("recovery.last_checkpoint_seq").set(seq)
        self._rotate()
        return path

    def adopt_checkpoint(self, seq: int, blob: bytes) -> str:
        """Install a checkpoint *shipped from a writer* at ``seq``.

        Replicas never snapshot their own engine -- they adopt the
        writer's atomic checkpoints byte-for-byte, so a promoted
        replica's directory is structurally identical to a writer's.
        Written via temp file + ``os.replace`` like a local checkpoint;
        rotation and WAL GC apply unchanged.  Re-adopting an existing
        generation is an idempotent no-op.
        """
        path = self._checkpoint_path(seq)
        if os.path.exists(path):
            return path
        fd, tmp_path = tempfile.mkstemp(dir=self._checkpoint_dir,
                                        suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as stream:
                stream.write(blob)
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.remove(tmp_path)
            raise
        registry = get_registry()
        registry.counter("recovery.checkpoints_adopted").inc()
        registry.gauge("recovery.last_checkpoint_seq").set(seq)
        self._rotate()
        return path

    def maybe_checkpoint(self, engine: GraphBoltEngine, seq: int) -> bool:
        """Checkpoint when ``seq`` crosses the configured cadence."""
        if seq % self.checkpoint_every != 0:
            return False
        generations = self.checkpoints()
        if generations and generations[-1][0] >= seq:
            return False
        self.checkpoint(engine, seq)
        return True

    def _rotate(self) -> None:
        """Keep the newest ``retain`` generations; GC covered WAL."""
        generations = self.checkpoints()
        excess = generations[: max(0, len(generations) - self.retain)]
        for _, path in excess:
            os.remove(path)
        if excess:
            get_registry().counter("recovery.checkpoints_rotated").inc(
                len(excess)
            )
        kept = self.checkpoints()
        if kept:
            # Every record below the *oldest retained* generation is
            # restorable from a checkpoint alone; older WAL segments
            # are dead weight.
            self.wal.gc(kept[0][0])

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def restore_engine(
        self, algorithm_factory: Callable[[], IncrementalAlgorithm],
        **load_kwargs,
    ) -> Tuple[GraphBoltEngine, int]:
        """Newest loadable checkpoint + WAL-tail replay.

        Returns ``(engine, seq)`` where ``seq`` counts every WAL record
        consumed (quarantined ones included -- sequence numbers are
        positional).  A replayed batch that crashes the engine or
        produces poison values is quarantined durably and the replay
        restarts from the checkpoint; each restart grows the quarantine
        set, so the loop terminates.
        """
        registry = get_registry()
        with trace.span("recovery.recover"):
            engine, base_seq = self._load_newest_checkpoint(
                algorithm_factory, **load_kwargs
            )
            while True:
                verdict = self._replay_tail(engine, base_seq)
                if verdict is None:
                    break
                poison_seq, reason = verdict
                self.quarantine(poison_seq, reason)
                registry.counter("recovery.replay_restarts").inc()
                engine, base_seq = self._load_newest_checkpoint(
                    algorithm_factory, **load_kwargs
                )
        seq = self.wal.next_seq if self.wal.next_seq > base_seq else base_seq
        registry.gauge("recovery.recovered_seq").set(seq)
        return engine, seq

    def _load_newest_checkpoint(self, algorithm_factory, **load_kwargs):
        generations = self.checkpoints()
        registry = get_registry()
        for seq, path in reversed(generations):
            try:
                engine = load_engine(path, algorithm_factory(),
                                     **load_kwargs)
                extra = read_checkpoint_extra(path)
                stored_seq = int(extra.get("recovery_seq", seq))
                if stored_seq != seq:
                    raise ValueError(
                        f"checkpoint {path} claims seq {stored_seq}, "
                        f"filename says {seq}"
                    )
            except (ValueError, OSError, KeyError) as exc:
                # A corrupt generation is skipped, not fatal: fall back
                # to the previous one and re-cover the gap from the WAL.
                registry.counter("recovery.checkpoints_rejected").inc()
                with trace.span("recovery.reject_checkpoint",
                                path=path, error=str(exc)):
                    pass
                continue
            return engine, seq
        raise RecoveryError(
            f"no loadable checkpoint under {self._checkpoint_dir} "
            f"({len(generations)} candidate(s) rejected)"
        )

    def _replay_tail(self, engine: GraphBoltEngine,
                     base_seq: int) -> Optional[Tuple[int, str]]:
        """Apply WAL records >= ``base_seq``; returns a poison verdict
        ``(seq, reason)`` on the first bad batch, else ``None``."""
        registry = get_registry()
        replayed = 0
        with trace.span("recovery.replay", from_seq=base_seq):
            for seq, batch in self.wal.replay(base_seq):
                if seq in self._quarantined:
                    continue
                faults.hit("recover.replay")
                try:
                    values = engine.apply_mutations(batch)
                except InjectedCrash:
                    raise
                except Exception as exc:  # noqa: BLE001 -- poison finding
                    return seq, f"{type(exc).__name__}: {exc}"
                reason = self.poison_check(values)
                if reason is not None:
                    return seq, reason
                replayed += 1
        registry.counter("recovery.batches_replayed").inc(replayed)
        return None

    def recover(self, algorithm_factory, *, exact_iterations=None,
                until_convergence: bool = False,
                max_iterations: int = 1000, **load_kwargs):
        """Restore a :class:`StreamingAnalyticsServer` from this
        directory (checkpoint + WAL tail), attached to this manager."""
        from repro.serving.server import StreamingAnalyticsServer

        engine, seq = self.restore_engine(algorithm_factory,
                                          **load_kwargs)
        return StreamingAnalyticsServer.from_engine(
            engine, algorithm_factory,
            exact_iterations=exact_iterations,
            until_convergence=until_convergence,
            max_iterations=max_iterations,
            batches_ingested=seq,
            recovery=self,
        )

    # ------------------------------------------------------------------
    def ensure_initial_checkpoint(self, engine: GraphBoltEngine) -> None:
        """Write generation zero for a *fresh* deployment.

        Recovery needs at least one checkpoint (the WAL holds mutations,
        not the initial graph).  Attaching a fresh server to a directory
        that already holds state is almost certainly an operator error
        -- it would fork the history -- so it is rejected; use
        :meth:`recover` instead.
        """
        if self.checkpoints() or self.wal.next_seq > 0:
            raise RecoveryError(
                f"{self.directory} already contains streaming state; "
                f"recover from it (RecoveryManager.recover / "
                f"`repro recover`) instead of attaching a new server"
            )
        self.checkpoint(engine, seq=0)

    def close(self) -> None:
        self.wal.close()

    def __repr__(self) -> str:
        return (
            f"RecoveryManager(dir={self.directory!r}, "
            f"every={self.checkpoint_every}, retain={self.retain}, "
            f"wal_next={self.wal.next_seq})"
        )
