"""Fault tolerance: write-ahead logging, checkpointing, crash recovery.

A streaming deployment survives a crash as *checkpoint + WAL tail*:

- :mod:`repro.recovery.wal` -- an append-only, CRC-guarded JSONL log of
  every ingested :class:`~repro.graph.mutation.MutationBatch`, written
  before the engine applies it, with a torn-tail detector that
  truncates (not crashes) on a partial final record;
- :mod:`repro.recovery.manager` -- periodic atomic checkpoints
  (temp file + ``os.replace``, checksum in the payload, retained
  generations), WAL garbage collection, durable poison-batch
  quarantine, and verified recovery back into a running
  :class:`~repro.serving.server.StreamingAnalyticsServer`.

``repro fuzz --crash`` (:mod:`repro.testing.crash`) proves the recovery
path bit-for-bit equivalent to an uninterrupted run at every registered
failpoint; see ``docs/operations.md`` for the operational story.

:mod:`repro.recovery.scrub` closes the loop on silent damage: a
background :class:`~repro.recovery.scrub.IntegrityScrubber` re-checks
every CRC these layers wrote (WAL records, checkpoint payloads,
snapshot-store segments) and -- via ``repro scrub --repair`` -- heals
bit-rot by bit-for-bit direction rebuild, checkpoint-covered garbage
collection, or quarantine + re-ship from a replication writer.
"""

from repro.recovery.manager import (
    RecoveryError,
    RecoveryManager,
    SegmentGapError,
    default_poison_check,
)
from repro.recovery.scrub import (
    IntegrityScrubber,
    ScrubFinding,
    ScrubReport,
    scrub_state_dir,
)
from repro.recovery.wal import (
    SealedSegment,
    WALCorruptionError,
    WriteAheadLog,
    batch_to_payload,
    payload_to_batch,
)

__all__ = [
    "IntegrityScrubber",
    "RecoveryError",
    "RecoveryManager",
    "ScrubFinding",
    "ScrubReport",
    "SealedSegment",
    "SegmentGapError",
    "WALCorruptionError",
    "WriteAheadLog",
    "batch_to_payload",
    "default_poison_check",
    "payload_to_batch",
    "scrub_state_dir",
]
