"""Fault tolerance: write-ahead logging, checkpointing, crash recovery.

A streaming deployment survives a crash as *checkpoint + WAL tail*:

- :mod:`repro.recovery.wal` -- an append-only, CRC-guarded JSONL log of
  every ingested :class:`~repro.graph.mutation.MutationBatch`, written
  before the engine applies it, with a torn-tail detector that
  truncates (not crashes) on a partial final record;
- :mod:`repro.recovery.manager` -- periodic atomic checkpoints
  (temp file + ``os.replace``, checksum in the payload, retained
  generations), WAL garbage collection, durable poison-batch
  quarantine, and verified recovery back into a running
  :class:`~repro.serving.server.StreamingAnalyticsServer`.

``repro fuzz --crash`` (:mod:`repro.testing.crash`) proves the recovery
path bit-for-bit equivalent to an uninterrupted run at every registered
failpoint; see ``docs/operations.md`` for the operational story.
"""

from repro.recovery.manager import (
    RecoveryError,
    RecoveryManager,
    SegmentGapError,
    default_poison_check,
)
from repro.recovery.wal import (
    SealedSegment,
    WALCorruptionError,
    WriteAheadLog,
    batch_to_payload,
    payload_to_batch,
)

__all__ = [
    "RecoveryError",
    "RecoveryManager",
    "SealedSegment",
    "SegmentGapError",
    "WALCorruptionError",
    "WriteAheadLog",
    "batch_to_payload",
    "default_poison_check",
    "payload_to_batch",
]
