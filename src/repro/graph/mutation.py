"""Edge mutation batches.

A :class:`MutationBatch` carries the edge additions and deletions that
transform one graph snapshot into the next (the paper's ``E_a`` and
``E_d`` in section 3.3).  Batches are validated and de-duplicated at
construction so downstream engines can assume:

- no duplicate additions, no duplicate deletions;
- no self-loops (simple-digraph invariant);
- endpoint ids are non-negative.

Within a batch, deletions apply before additions: an edge that is both
deleted and added is *replaced* (its weight updated) if it existed, and
simply added if it did not.

Consecutive batches compose: :meth:`MutationBatch.merge` folds a
follow-up batch into this one, producing a single batch whose
application to *any* base graph matches applying the two in sequence
(the admission controller's ``coalesce`` policy relies on this, and
:func:`repro.graph.stream.coalesce_batches` is the n-ary fold).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

__all__ = ["MutationBatch"]


class MutationBatch:
    """A batch of edge additions and deletions.

    Parameters
    ----------
    add_src, add_dst:
        Endpoints of edges to insert.
    add_weight:
        Weights of inserted edges (defaults to ones).
    del_src, del_dst:
        Endpoints of edges to delete.
    grow_to:
        Optional explicit new vertex count (vertex additions).  The graph
        also grows implicitly if an added edge references a vertex beyond
        the current count.
    """

    def __init__(
        self,
        add_src: Optional[Sequence[int]] = None,
        add_dst: Optional[Sequence[int]] = None,
        add_weight: Optional[Sequence[float]] = None,
        del_src: Optional[Sequence[int]] = None,
        del_dst: Optional[Sequence[int]] = None,
        grow_to: Optional[int] = None,
    ) -> None:
        self.add_src = _as_index_array(add_src)
        self.add_dst = _as_index_array(add_dst)
        if self.add_src.shape != self.add_dst.shape:
            raise ValueError("addition endpoint arrays must match")
        if add_weight is None:
            self.add_weight = np.ones(self.add_src.size, dtype=np.float64)
        else:
            self.add_weight = np.asarray(add_weight, dtype=np.float64)
            if self.add_weight.shape != self.add_src.shape:
                raise ValueError("addition weights must match endpoints")
            if self.add_weight.size and not np.isfinite(self.add_weight).all():
                raise ValueError(
                    "edge weights must be finite (a NaN or infinite weight "
                    "would poison every aggregation it ever touched)"
                )
        self.del_src = _as_index_array(del_src)
        self.del_dst = _as_index_array(del_dst)
        if self.del_src.shape != self.del_dst.shape:
            raise ValueError("deletion endpoint arrays must match")
        if grow_to is not None:
            if isinstance(grow_to, float) and not float(grow_to).is_integer():
                raise ValueError(
                    f"grow_to must be an integer vertex count, "
                    f"got {grow_to!r}"
                )
            grow_to = int(grow_to)
            if grow_to < 0:
                raise ValueError(
                    f"grow_to must be non-negative, got {grow_to}"
                )
        self.grow_to = grow_to
        self.dropped_self_loops = 0
        self._drop_self_loops()
        self._dedup()

    def _drop_self_loops(self) -> None:
        """Enforce the simple-digraph invariant: no (v, v) edges.

        Update feeds routinely carry degenerate records; dropping them
        here keeps every downstream engine (and triangle counting's
        cycle arithmetic in particular) free of self-loop special cases.
        """
        keep_add = self.add_src != self.add_dst
        keep_del = self.del_src != self.del_dst
        self.dropped_self_loops = int(
            (~keep_add).sum() + (~keep_del).sum()
        )
        if self.dropped_self_loops:
            self.add_src = self.add_src[keep_add]
            self.add_dst = self.add_dst[keep_add]
            self.add_weight = self.add_weight[keep_add]
            self.del_src = self.del_src[keep_del]
            self.del_dst = self.del_dst[keep_del]

    # ------------------------------------------------------------------
    def _dedup(self) -> None:
        if self.add_src.size:
            keys = np.stack([self.add_src, self.add_dst], axis=1)
            _, first = np.unique(keys, axis=0, return_index=True)
            first.sort()
            self.add_src = self.add_src[first]
            self.add_dst = self.add_dst[first]
            self.add_weight = self.add_weight[first]
        if self.del_src.size:
            keys = np.stack([self.del_src, self.del_dst], axis=1)
            _, first = np.unique(keys, axis=0, return_index=True)
            first.sort()
            self.del_src = self.del_src[first]
            self.del_dst = self.del_dst[first]

    # ------------------------------------------------------------------
    @property
    def num_additions(self) -> int:
        return int(self.add_src.size)

    @property
    def num_deletions(self) -> int:
        return int(self.del_src.size)

    def __len__(self) -> int:
        return self.num_additions + self.num_deletions

    def __bool__(self) -> bool:
        return len(self) > 0 or self.grow_to is not None

    def max_vertex(self) -> int:
        """Largest vertex id referenced by the batch (-1 if empty)."""
        hi = -1
        for arr in (self.add_src, self.add_dst, self.del_src, self.del_dst):
            if arr.size:
                hi = max(hi, int(arr.max()))
        if self.grow_to is not None:
            hi = max(hi, self.grow_to - 1)
        return hi

    def validate(self, num_vertices: int,
                 max_growth: Optional[int] = None) -> None:
        """Boundary check against a concrete graph (the ingest boundary).

        Construction cannot know the target graph, so range errors used
        to surface deep inside CSR adjustment -- or worse, a deletion at
        a bogus huge vertex id silently *grew* the graph to cover it.
        Serving calls this before admitting a batch:

        - deletion endpoints must address existing vertices (an edge at
          a vertex that does not exist cannot be live, so such a record
          is malformed, not merely stale);
        - the implied new vertex count (addition endpoints / ``grow_to``)
          must not exceed ``num_vertices + max_growth`` when a growth
          budget is given.
        """
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        for name, arr in (("del_src", self.del_src),
                          ("del_dst", self.del_dst)):
            if arr.size and arr.max() >= num_vertices:
                bad = int(arr.max())
                raise ValueError(
                    f"deletion endpoint out of range: {name} contains "
                    f"vertex {bad} but the graph has {num_vertices} "
                    f"vertices (no such edge can exist)"
                )
        if max_growth is not None:
            implied = self.max_vertex() + 1
            if implied > num_vertices + max_growth:
                raise ValueError(
                    f"batch grows the graph to {implied} vertices, "
                    f"beyond the admission growth budget of "
                    f"{num_vertices} + {max_growth}"
                )

    # ------------------------------------------------------------------
    def merge(self, later: "MutationBatch") -> "MutationBatch":
        """Fold ``later`` into this batch (self applies first).

        The merged batch applies to any base graph exactly as the
        sequence ``self; later`` would, under the stream semantics that
        re-adding a present edge is skipped and deleting an absent edge
        is skipped.  Per edge (deletions before additions within each
        batch):

        - anything then delete      -> delete;
        - delete then add           -> delete + add (replacement);
        - add then add              -> the first add wins (the second
          would have been skipped as a re-addition);
        - ``grow_to``               -> the maximum of the two.

        The fold is associative, so a queue of batches coalesces left to
        right (:func:`repro.graph.stream.coalesce_batches`).
        """
        deleted = {}
        pending_add = {}
        for batch in (self, later):
            for edge in batch.deletions():
                pending_add.pop(edge, None)
                deleted[edge] = True
            for s, d, w in batch.additions():
                if (s, d) not in pending_add:
                    pending_add[(s, d)] = w
        grow_to = self.grow_to
        if later.grow_to is not None:
            grow_to = (later.grow_to if grow_to is None
                       else max(grow_to, later.grow_to))
        add_edges = list(pending_add)
        return MutationBatch.from_edges(
            additions=add_edges,
            deletions=list(deleted),
            add_weights=[pending_add[e] for e in add_edges],
            grow_to=grow_to,
        )

    # ------------------------------------------------------------------
    def additions(self) -> Iterable[Tuple[int, int, float]]:
        return zip(
            self.add_src.tolist(), self.add_dst.tolist(), self.add_weight.tolist()
        )

    def deletions(self) -> Iterable[Tuple[int, int]]:
        return zip(self.del_src.tolist(), self.del_dst.tolist())

    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        additions: Iterable[Tuple[int, int]] = (),
        deletions: Iterable[Tuple[int, int]] = (),
        add_weights: Optional[Iterable[float]] = None,
        grow_to: Optional[int] = None,
    ) -> "MutationBatch":
        """Build a batch from iterables of ``(src, dst)`` pairs."""
        adds = list(additions)
        dels = list(deletions)
        weights = None if add_weights is None else list(add_weights)
        return cls(
            add_src=[e[0] for e in adds],
            add_dst=[e[1] for e in adds],
            add_weight=weights,
            del_src=[e[0] for e in dels],
            del_dst=[e[1] for e in dels],
            grow_to=grow_to,
        )

    @classmethod
    def empty(cls) -> "MutationBatch":
        return cls()

    def __repr__(self) -> str:
        return (
            f"MutationBatch(+{self.num_additions}, -{self.num_deletions}"
            + (f", grow_to={self.grow_to}" if self.grow_to is not None else "")
            + ")"
        )


def _as_index_array(values: Optional[Sequence[int]]) -> np.ndarray:
    if values is None:
        return np.empty(0, dtype=np.int64)
    raw = np.asarray(values)
    if raw.size == 0:
        # An empty list materialises as float64; it carries no ids to
        # mis-type, so it is always acceptable.
        return np.empty(0, dtype=np.int64)
    if raw.dtype.kind not in "iu":
        # np.asarray(..., dtype=int64) would silently truncate floats
        # (1.7 -> 1) or raise an opaque cast error on strings; reject
        # both at the boundary with the actual offending dtype.
        raise ValueError(
            f"vertex id arrays must have an integer dtype, got "
            f"{raw.dtype} (a float id is a malformed stream record, "
            f"not a truncatable one)"
        )
    arr = raw.astype(np.int64, copy=False)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    if arr.size and arr.min() < 0:
        raise ValueError(
            f"vertex ids must be non-negative, got {int(arr.min())}"
        )
    return arr
