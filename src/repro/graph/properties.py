"""Structural statistics of graph snapshots.

Used by the workload generators (to pick high/low degree mutation targets,
paper Table 8) and by the experiment reports (to document the synthetic
stand-in graphs the way the paper's Table 2 documents its datasets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["GraphStats", "graph_stats", "degree_percentile_vertices"]


@dataclass
class GraphStats:
    """Summary statistics for one snapshot."""

    num_vertices: int
    num_edges: int
    max_out_degree: int
    max_in_degree: int
    mean_degree: float
    degree_skew: float
    isolated_vertices: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "vertices": self.num_vertices,
            "edges": self.num_edges,
            "max_out_degree": self.max_out_degree,
            "max_in_degree": self.max_in_degree,
            "mean_degree": self.mean_degree,
            "degree_skew": self.degree_skew,
            "isolated": self.isolated_vertices,
        }


def graph_stats(graph: CSRGraph) -> GraphStats:
    out_deg = graph.out_degrees()
    in_deg = graph.in_degrees()
    total = out_deg + in_deg
    mean = float(out_deg.mean()) if out_deg.size else 0.0
    # Simple moment-based skewness of the out-degree distribution; skew is
    # what makes GraphBolt's pruning effective (paper section 3.2).
    if out_deg.size and out_deg.std() > 0:
        centred = out_deg - out_deg.mean()
        skew = float((centred**3).mean() / out_deg.std() ** 3)
    else:
        skew = 0.0
    return GraphStats(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        max_out_degree=int(out_deg.max(initial=0)),
        max_in_degree=int(in_deg.max(initial=0)),
        mean_degree=mean,
        degree_skew=skew,
        isolated_vertices=int((total == 0).sum()),
    )


def degree_percentile_vertices(
    graph: CSRGraph, low: float, high: float, use_out: bool = True
) -> np.ndarray:
    """Vertices whose degree falls within the [low, high] percentile band.

    ``low``/``high`` are fractions in [0, 1] of the degree-sorted order.
    Vertices with zero degree are excluded (a mutation targeting them is
    neither a Hi nor a Lo workload -- it has no existing neighbourhood).
    """
    if not 0.0 <= low <= high <= 1.0:
        raise ValueError("percentile band must satisfy 0 <= low <= high <= 1")
    degrees = graph.out_degrees() if use_out else graph.in_degrees()
    candidates = np.flatnonzero(degrees > 0)
    if candidates.size == 0:
        return candidates
    order = candidates[np.argsort(degrees[candidates], kind="stable")]
    lo_idx = int(low * (order.size - 1))
    hi_idx = int(high * (order.size - 1))
    return np.sort(order[lo_idx : hi_idx + 1])
