"""Streaming graph substrate.

This subpackage provides the graph structures GraphBolt computes over:

- :class:`~repro.graph.csr.CSRGraph` -- an immutable compressed sparse
  row/column snapshot with NumPy-backed adjacency.
- :class:`~repro.graph.mutable.StreamingGraph` -- a dynamic graph that
  applies :class:`~repro.graph.mutation.MutationBatch` objects using the
  paper's two-pass structure adjustment, retaining the previous snapshot
  so old contribution functions can still be evaluated during refinement.
- :class:`~repro.graph.stream.MutationStream` -- a buffered source of
  mutation batches.
- :mod:`~repro.graph.generators` -- synthetic graph generators (RMAT,
  Erdos-Renyi, ...) standing in for the paper's web/social datasets.
"""

from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph, DynamicStreamingGraph
from repro.graph.mutable import MutationResult, StreamingGraph
from repro.graph.mutation import MutationBatch
from repro.graph.stream import MutationStream
from repro.graph.window import SlidingWindowStream

# Imported last: storage pulls in repro.testing (failpoints), whose
# engine imports resolve names from this partially-initialized package.
from repro.graph.storage import (  # noqa: E402
    HeapStore,
    MmapStore,
    SnapshotStore,
    store_from_env,
    store_from_spec,
)

__all__ = [
    "CSRGraph",
    "DynamicGraph",
    "DynamicStreamingGraph",
    "HeapStore",
    "MmapStore",
    "MutationBatch",
    "MutationResult",
    "MutationStream",
    "SlidingWindowStream",
    "SnapshotStore",
    "StreamingGraph",
    "store_from_env",
    "store_from_spec",
]
