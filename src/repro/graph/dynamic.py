"""STINGER-inspired dynamic graph structure.

The paper adjusts its CSR/CSC structure with two full passes per batch
and notes (section 4.1) that "faster dynamic graph data-structures like
STINGER can be incorporated to improve the time taken to adjust the
graph structure".  This module provides that incorporation:
:class:`DynamicGraph` keeps per-vertex *edge blocks with slack* -- each
row owns capacity beyond its current degree -- so a mutation batch
touches only the affected rows.  When a row overflows it is *relocated*
to the structure's tail with fresh slack (amortised-doubling tail
growth), leaving its old block behind as a tombstone; once tombstoned
slots cross a fraction of the structure, a segment-wise compaction
rewrites dirty vertex ranges one bounded range at a time.  A mutation
batch therefore never materializes the full ``(key, other, weight)``
edge list in heap and never runs an O(E log E) argsort -- the two
costs the old whole-structure repack paid on every overflow.

:class:`DynamicGraph` duck-types the read interface of
:class:`~repro.graph.csr.CSRGraph` (degrees, neighbour slices, gathers,
``all_edges``), with one documented divergence: rows are *unsorted*
(membership is a short vectorised scan), whereas CSR rows are sorted.
All engines in this repository only require the gather interface.

:class:`DynamicStreamingGraph` mirrors
:class:`~repro.graph.mutable.StreamingGraph` over this structure.  Since
updates are in place, the pre-mutation snapshot cannot be retained;
instead the result carries a :class:`FrozenGraphParams` -- the old
degree/weight-sum arrays, which is everything dependency-driven
refinement evaluates old contribution functions against.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph, _ranges
from repro.graph.mutation import MutationBatch

__all__ = ["DynamicGraph", "DynamicStreamingGraph", "FrozenGraphParams"]

#: Extra slots reserved per row at (re)pack time.
SLACK_FACTOR = 1.5
SLACK_MINIMUM = 2

#: Tombstoned-slot fraction of the structure that triggers a
#: segment-wise compaction (checked opportunistically after batches).
COMPACT_DEAD_FRACTION = 0.25
#: Floor on tombstoned slots before compaction is worth running.
COMPACT_DEAD_MINIMUM = 64

#: Edge budget per compaction segment: bounds the gather working set
#: of one dirty vertex range during a rewrite.
SEGMENT_EDGE_BUDGET = 1 << 20


class _Direction:
    """One adjacency direction (out or in) as slack-bearing edge blocks."""

    def __init__(self, num_vertices: int, keys: np.ndarray,
                 others: np.ndarray, weights: np.ndarray) -> None:
        self.num_vertices = 0
        self.starts = np.empty(0, dtype=np.int64)
        self.lengths = np.empty(0, dtype=np.int64)
        self.others = np.empty(0, dtype=np.int64)
        self.weights = np.empty(0, dtype=np.float64)
        #: First unallocated slot; rows relocated out of their block
        #: land here.  ``others.size - tail`` is reserve capacity.
        self.tail = 0
        #: Tombstoned slots (capacity of relocated rows' old blocks).
        self.dead = 0
        self._pack(num_vertices, keys, others, weights)

    # ------------------------------------------------------------------
    def _pack(self, num_vertices, keys, others, weights) -> None:
        """Initial contiguous layout with fresh slack."""
        order = np.argsort(keys, kind="stable")
        keys, others, weights = keys[order], others[order], weights[order]
        degrees = np.bincount(keys, minlength=num_vertices)
        capacities = np.maximum(
            (degrees * SLACK_FACTOR).astype(np.int64),
            degrees + SLACK_MINIMUM,
        )
        starts = np.zeros(num_vertices, dtype=np.int64)
        np.cumsum(capacities[:-1], out=starts[1:])
        total = int(capacities.sum())
        new_others = np.full(total, -1, dtype=np.int64)
        new_weights = np.zeros(total, dtype=np.float64)
        slots = _ranges(starts, starts + degrees)
        new_others[slots] = others
        new_weights[slots] = weights
        self.num_vertices = num_vertices
        self.starts = starts
        self.lengths = degrees.astype(np.int64)
        self.capacities = capacities
        self.others = new_others
        self.weights = new_weights
        self.tail = total
        self.dead = 0

    # ------------------------------------------------------------------
    # Tail allocation + row relocation (the segment-wise overflow path)
    # ------------------------------------------------------------------
    def _ensure_tail(self, needed: int) -> None:
        """Amortised-doubling growth of the backing arrays."""
        size = int(self.others.size)
        if self.tail + needed <= size:
            return
        new_size = max(size * 2, self.tail + needed, 16)
        grown_others = np.full(new_size, -1, dtype=np.int64)
        grown_others[:self.tail] = self.others[:self.tail]
        grown_weights = np.zeros(new_size, dtype=np.float64)
        grown_weights[:self.tail] = self.weights[:self.tail]
        self.others = grown_others
        self.weights = grown_weights

    def relocate_row(self, key: int, min_capacity: int) -> None:
        """Move one overflowing row to the tail with fresh slack,
        tombstoning its old block.  O(row), not O(E)."""
        length = int(self.lengths[key])
        new_capacity = max(
            int(min_capacity),
            int(length * SLACK_FACTOR),
            length + SLACK_MINIMUM,
        )
        self._ensure_tail(new_capacity)
        start = int(self.starts[key])
        new_start = self.tail
        self.others[new_start:new_start + length] = \
            self.others[start:start + length]
        self.weights[new_start:new_start + length] = \
            self.weights[start:start + length]
        self.others[start:start + length] = -1
        self.dead += int(self.capacities[key])
        self.starts[key] = new_start
        self.capacities[key] = new_capacity
        self.tail += new_capacity

    def maybe_compact(self) -> bool:
        """Compact when tombstones cross the configured fraction."""
        threshold = max(int(self.tail * COMPACT_DEAD_FRACTION),
                        COMPACT_DEAD_MINIMUM)
        if self.dead < threshold:
            return False
        self.compact()
        return True

    def compact(self) -> None:
        """Segment-wise rewrite dropping tombstoned blocks.

        Rows are copied one bounded vertex range at a time (per-range
        gather via ``_ranges``), so the working set is the segment
        budget -- never the full edge list, and no argsort runs.
        """
        degrees = self.lengths
        capacities = np.maximum(
            (degrees * SLACK_FACTOR).astype(np.int64),
            degrees + SLACK_MINIMUM,
        )
        new_starts = np.zeros(self.num_vertices, dtype=np.int64)
        if self.num_vertices:
            np.cumsum(capacities[:-1], out=new_starts[1:])
        total = int(capacities.sum())
        new_others = np.full(total, -1, dtype=np.int64)
        new_weights = np.zeros(total, dtype=np.float64)
        cumulative = np.zeros(self.num_vertices + 1, dtype=np.int64)
        np.cumsum(degrees, out=cumulative[1:])
        start_v = 0
        while start_v < self.num_vertices:
            budget_end = int(cumulative[start_v]) + SEGMENT_EDGE_BUDGET
            stop_v = int(np.searchsorted(cumulative, budget_end,
                                         side="right")) - 1
            stop_v = min(max(stop_v, start_v + 1), self.num_vertices)
            seg_deg = degrees[start_v:stop_v]
            old_slots = _ranges(self.starts[start_v:stop_v],
                                self.starts[start_v:stop_v] + seg_deg)
            slots = _ranges(new_starts[start_v:stop_v],
                            new_starts[start_v:stop_v] + seg_deg)
            new_others[slots] = self.others[old_slots]
            new_weights[slots] = self.weights[old_slots]
            start_v = stop_v
        self.starts = new_starts
        self.capacities = capacities
        self.others = new_others
        self.weights = new_weights
        self.tail = total
        self.dead = 0

    # ------------------------------------------------------------------
    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Live edges as ``(key, other, weight)`` arrays."""
        slots = _ranges(self.starts, self.starts + self.lengths)
        keys = np.repeat(np.arange(self.num_vertices, dtype=np.int64),
                         self.lengths)
        return keys, self.others[slots], self.weights[slots]

    def row(self, vertex: int) -> np.ndarray:
        start = self.starts[vertex]
        return self.others[start : start + self.lengths[vertex]]

    def row_weights(self, vertex: int) -> np.ndarray:
        start = self.starts[vertex]
        return self.weights[start : start + self.lengths[vertex]]

    def find(self, key: int, other: int) -> int:
        """Slot of edge (key -> other), or -1."""
        start = self.starts[key]
        row = self.others[start : start + self.lengths[key]]
        hits = np.flatnonzero(row == other)
        if hits.size == 0:
            return -1
        return int(start + hits[0])

    def insert(self, key: int, other: int, weight: float) -> bool:
        """Append an edge; returns False when the row is out of slack."""
        length = self.lengths[key]
        if length >= self.capacities[key]:
            return False
        slot = self.starts[key] + length
        self.others[slot] = other
        self.weights[slot] = weight
        self.lengths[key] += 1
        return True

    def delete_slot(self, key: int, slot: int) -> None:
        """Remove the edge at ``slot`` by swapping in the row's last."""
        last = self.starts[key] + self.lengths[key] - 1
        self.others[slot] = self.others[last]
        self.weights[slot] = self.weights[last]
        self.others[last] = -1
        self.lengths[key] -= 1

    def grow_vertices(self, num_vertices: int) -> None:
        if num_vertices <= self.num_vertices:
            return
        fresh = num_vertices - self.num_vertices
        needed = fresh * SLACK_MINIMUM
        self._ensure_tail(needed)
        base = self.tail
        self.starts = np.concatenate([
            self.starts,
            base + SLACK_MINIMUM * np.arange(fresh, dtype=np.int64),
        ])
        self.lengths = np.concatenate([
            self.lengths, np.zeros(fresh, dtype=np.int64),
        ])
        self.capacities = np.concatenate([
            self.capacities,
            np.full(fresh, SLACK_MINIMUM, dtype=np.int64),
        ])
        self.tail += needed
        self.num_vertices = num_vertices

    @property
    def nbytes(self) -> int:
        return int(
            self.starts.nbytes + self.lengths.nbytes
            + self.capacities.nbytes + self.others.nbytes
            + self.weights.nbytes
        )


class DynamicGraph:
    """A mutable directed weighted graph with slack-bearing edge blocks."""

    def __init__(self, num_vertices: int, src: np.ndarray, dst: np.ndarray,
                 weight: Optional[np.ndarray] = None) -> None:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if weight is None:
            weight = np.ones(src.size, dtype=np.float64)
        else:
            weight = np.asarray(weight, dtype=np.float64)
        self._out = _Direction(num_vertices, src, dst, weight)
        self._in = _Direction(num_vertices, dst, src, weight)
        self._num_edges = int(src.size)
        #: Row relocations (old whole-structure repacks are gone; an
        #: overflowing row moves to the tail with fresh slack).
        self.repacks = 0
        #: Segment-wise compactions of tombstoned blocks.
        self.compactions = 0
        #: Bumped on every mutation; invalidates derived-array caches.
        self.version = 0
        self._cache = {}

    @classmethod
    def from_csr(cls, graph: CSRGraph) -> "DynamicGraph":
        src, dst, weight = graph.all_edges()
        return cls(graph.num_vertices, src, dst, weight)

    # ------------------------------------------------------------------
    # CSRGraph-compatible read interface
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._out.num_vertices

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def nbytes(self) -> int:
        return self._out.nbytes + self._in.nbytes

    @property
    def out_targets(self) -> np.ndarray:
        """Backing target array; index only with slots from
        :meth:`out_edge_slots` (holes carry -1)."""
        return self._out.others

    @property
    def out_weights(self) -> np.ndarray:
        return self._out.weights

    def out_degrees(self) -> np.ndarray:
        return self._out.lengths

    def in_degrees(self) -> np.ndarray:
        return self._in.lengths

    def out_degree(self, v: int) -> int:
        return int(self._out.lengths[v])

    def in_degree(self, v: int) -> int:
        return int(self._in.lengths[v])

    def out_neighbors(self, v: int) -> np.ndarray:
        """Targets of v's out-edges (unsorted, unlike CSRGraph)."""
        return self._out.row(v)

    def out_neighbor_weights(self, v: int) -> np.ndarray:
        return self._out.row_weights(v)

    def in_neighbors(self, v: int) -> np.ndarray:
        return self._in.row(v)

    def in_neighbor_weights(self, v: int) -> np.ndarray:
        return self._in.row_weights(v)

    def _cached(self, name, compute):
        entry = self._cache.get(name)
        if entry is not None and entry[0] == self.version:
            return entry[1]
        value = compute()
        self._cache[name] = (self.version, value)
        return value

    def in_weight_sums(self) -> np.ndarray:
        def compute():
            sums = np.zeros(self.num_vertices, dtype=np.float64)
            _, dst, weight = self.all_edges()
            np.add.at(sums, dst, weight)
            return sums

        return self._cached("in_weight_sums", compute)

    def out_weight_sums(self) -> np.ndarray:
        def compute():
            sums = np.zeros(self.num_vertices, dtype=np.float64)
            src, _, weight = self.all_edges()
            np.add.at(sums, src, weight)
            return sums

        return self._cached("out_weight_sums", compute)

    def has_edge(self, u: int, v: int) -> bool:
        return self._out.find(u, v) >= 0

    def edge_weight(self, u: int, v: int) -> float:
        slot = self._out.find(u, v)
        if slot < 0:
            raise KeyError(f"edge ({u}, {v}) not in graph")
        return float(self._out.weights[slot])

    def all_edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self._out.edge_arrays()

    def out_edges_of(self, vertices) -> Tuple[np.ndarray, np.ndarray,
                                              np.ndarray]:
        vertices = np.asarray(vertices, dtype=np.int64)
        starts = self._out.starts[vertices]
        lengths = self._out.lengths[vertices]
        slots = _ranges(starts, starts + lengths)
        src = np.repeat(vertices, lengths)
        return src, self._out.others[slots], self._out.weights[slots]

    def out_edge_slots(self, vertices) -> Tuple[np.ndarray, np.ndarray]:
        vertices = np.asarray(vertices, dtype=np.int64)
        starts = self._out.starts[vertices]
        lengths = self._out.lengths[vertices]
        slots = _ranges(starts, starts + lengths)
        return np.repeat(vertices, lengths), slots

    def in_edges_of(self, vertices) -> Tuple[np.ndarray, np.ndarray,
                                             np.ndarray]:
        vertices = np.asarray(vertices, dtype=np.int64)
        starts = self._in.starts[vertices]
        lengths = self._in.lengths[vertices]
        slots = _ranges(starts, starts + lengths)
        dst = np.repeat(vertices, lengths)
        return self._in.others[slots], dst, self._in.weights[slots]

    def edge_set(self) -> set:
        src, dst, _ = self.all_edges()
        return set(zip(src.tolist(), dst.tolist()))

    def to_csr(self) -> CSRGraph:
        src, dst, weight = self.all_edges()
        return CSRGraph(self.num_vertices, src, dst, weight)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def grow_vertices(self, num_vertices: int) -> None:
        self._out.grow_vertices(num_vertices)
        self._in.grow_vertices(num_vertices)
        self.version += 1

    def delete_edge(self, u: int, v: int) -> Optional[float]:
        """Delete (u, v); returns its weight, or None when absent."""
        out_slot = self._out.find(u, v)
        if out_slot < 0:
            return None
        weight = float(self._out.weights[out_slot])
        self._out.delete_slot(u, out_slot)
        in_slot = self._in.find(v, u)
        self._in.delete_slot(v, in_slot)
        self._num_edges -= 1
        self.version += 1
        return weight

    def insert_edge(self, u: int, v: int, weight: float) -> bool:
        """Insert (u, v); returns False when it already exists."""
        if self._out.find(u, v) >= 0:
            return False
        if not self._out.insert(u, v, weight):
            self._out.relocate_row(u, int(self._out.lengths[u]) + 1)
            self.repacks += 1
            self._out.insert(u, v, weight)
        if not self._in.insert(v, u, weight):
            self._in.relocate_row(v, int(self._in.lengths[v]) + 1)
            self.repacks += 1
            self._in.insert(v, u, weight)
        self._num_edges += 1
        self.version += 1
        return True

    def maybe_compact(self) -> bool:
        """Opportunistic (post-batch) segment-wise compaction of
        tombstoned blocks; returns True when either direction ran."""
        ran = self._out.maybe_compact()
        ran = self._in.maybe_compact() or ran
        if ran:
            self.compactions += 1
        return ran

    def __repr__(self) -> str:
        return (
            f"DynamicGraph(V={self.num_vertices}, E={self.num_edges}, "
            f"repacks={self.repacks})"
        )


class FrozenGraphParams:
    """The pre-mutation contribution parameters refinement needs.

    In-place structures cannot retain the whole previous snapshot; they
    retain exactly what old contribution/apply functions read: vertex
    counts, degree arrays, and weight sums.  Structure *traversal* during
    refinement always happens on the new snapshot (retained edges and
    explicit deletion lists), so no old adjacency is required.
    """

    def __init__(self, graph) -> None:
        self.num_vertices = graph.num_vertices
        self.num_edges = graph.num_edges
        self._out_degrees = np.asarray(graph.out_degrees()).copy()
        self._in_degrees = np.asarray(graph.in_degrees()).copy()
        self._in_weight_sums = graph.in_weight_sums().copy()
        if hasattr(graph, "out_weight_sums"):
            self._out_weight_sums = graph.out_weight_sums().copy()
        else:
            sums = np.zeros(self.num_vertices, dtype=np.float64)
            src, _, weight = graph.all_edges()
            np.add.at(sums, src, weight)
            self._out_weight_sums = sums

    def out_degrees(self) -> np.ndarray:
        return self._out_degrees

    def in_degrees(self) -> np.ndarray:
        return self._in_degrees

    def in_weight_sums(self) -> np.ndarray:
        return self._in_weight_sums

    def out_weight_sums(self) -> np.ndarray:
        return self._out_weight_sums


class DynamicStreamingGraph:
    """StreamingGraph-compatible adapter over :class:`DynamicGraph`."""

    def __init__(self, initial) -> None:
        if isinstance(initial, DynamicGraph):
            self._graph = initial
        else:
            self._graph = DynamicGraph.from_csr(initial)
        self.batches_applied = 0

    @property
    def graph(self) -> DynamicGraph:
        return self._graph

    @property
    def num_vertices(self) -> int:
        return self._graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self._graph.num_edges

    def apply_batch(self, batch: MutationBatch) -> "DynamicMutationResult":
        graph = self._graph
        old_params = FrozenGraphParams(graph)
        old_num_vertices = graph.num_vertices
        target = max(graph.num_vertices, batch.max_vertex() + 1)
        if target > graph.num_vertices:
            graph.grow_vertices(target)

        del_src, del_dst, del_weight = [], [], []
        skipped_deletions = 0
        for u, v in batch.deletions():
            weight = graph.delete_edge(u, v)
            if weight is None:
                skipped_deletions += 1
            else:
                del_src.append(u)
                del_dst.append(v)
                del_weight.append(weight)

        add_src, add_dst, add_weight = [], [], []
        skipped_additions = 0
        for u, v, w in batch.additions():
            if graph.insert_edge(u, v, w):
                add_src.append(u)
                add_dst.append(v)
                add_weight.append(w)
            else:
                skipped_additions += 1

        self.batches_applied += 1
        # Background-style compaction: deferred off the mutation path,
        # run between batches once tombstones cross the threshold.
        graph.maybe_compact()
        return DynamicMutationResult(
            old_graph=old_params,
            new_graph=graph,
            old_num_vertices=old_num_vertices,
            add_src=np.array(add_src, dtype=np.int64),
            add_dst=np.array(add_dst, dtype=np.int64),
            add_weight=np.array(add_weight, dtype=np.float64),
            del_src=np.array(del_src, dtype=np.int64),
            del_dst=np.array(del_dst, dtype=np.int64),
            del_weight=np.array(del_weight, dtype=np.float64),
            skipped_additions=skipped_additions,
            skipped_deletions=skipped_deletions,
        )

    def __repr__(self) -> str:
        return (
            f"DynamicStreamingGraph(V={self.num_vertices}, "
            f"E={self.num_edges}, batches={self.batches_applied})"
        )


class DynamicMutationResult:
    """MutationResult duck-type for the in-place structure."""

    def __init__(self, old_graph, new_graph, old_num_vertices,
                 add_src, add_dst, add_weight,
                 del_src, del_dst, del_weight,
                 skipped_additions, skipped_deletions) -> None:
        self.old_graph = old_graph
        self.new_graph = new_graph
        self._old_num_vertices = old_num_vertices
        self.add_src = add_src
        self.add_dst = add_dst
        self.add_weight = add_weight
        self.del_src = del_src
        self.del_dst = del_dst
        self.del_weight = del_weight
        self.skipped_additions = skipped_additions
        self.skipped_deletions = skipped_deletions

    @property
    def num_applied(self) -> int:
        return int(self.add_src.size + self.del_src.size)

    def grew(self) -> bool:
        return self.new_graph.num_vertices > self._old_num_vertices

    def out_changed_vertices(self) -> np.ndarray:
        new_ids = np.arange(self._old_num_vertices,
                            self.new_graph.num_vertices, dtype=np.int64)
        return np.unique(np.concatenate([self.add_src, self.del_src,
                                         new_ids]))

    def in_changed_vertices(self) -> np.ndarray:
        new_ids = np.arange(self._old_num_vertices,
                            self.new_graph.num_vertices, dtype=np.int64)
        return np.unique(np.concatenate([self.add_dst, self.del_dst,
                                         new_ids]))

    def added_edge_mask(self) -> np.ndarray:
        mask = np.zeros(self.new_graph.out_targets.size, dtype=bool)
        for u, v in zip(self.add_src.tolist(), self.add_dst.tolist()):
            slot = self.new_graph._out.find(u, v)
            if slot >= 0:
                mask[slot] = True
        return mask
