"""Immutable CSR/CSC graph snapshots.

A :class:`CSRGraph` stores a directed, weighted graph in both compressed
sparse row (out-edges) and compressed sparse column (in-edges) form, the
layout GraphBolt uses so that both push-style (``edge_map`` over out-edges)
and pull-style (re-evaluation over in-edges) traversals are O(1)-indexable
(paper section 4.1).

Within each row and column the neighbour arrays are sorted by the opposite
endpoint, which makes membership tests and targeted deletions a binary
search instead of a scan.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

__all__ = ["CSRGraph"]


class CSRGraph:
    """An immutable directed weighted graph in CSR + CSC form.

    Parameters
    ----------
    num_vertices:
        Number of vertices; vertex ids are ``0 .. num_vertices - 1``.
    src, dst:
        Integer arrays of equal length giving the edge endpoints.
    weight:
        Optional float array of edge weights; defaults to all ones.
    presorted:
        Input already in canonical CSR order (sorted by ``(src, dst)``).
        Validated by a cheap monotonicity check over the scalar edge
        keys, then the O(E log E) CSR-side lexsort is skipped and the
        CSC side needs only a single-key stable argsort.

    The constructor copies and re-sorts the input, so callers may mutate
    their arrays afterwards.  :meth:`from_canonical` skips sorting and
    copying entirely for arrays already in canonical form (store loads,
    checkpoint restores).
    """

    def __init__(
        self,
        num_vertices: int,
        src: np.ndarray,
        dst: np.ndarray,
        weight: Optional[np.ndarray] = None,
        presorted: bool = False,
    ) -> None:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same shape")
        if src.size and num_vertices > 0:
            hi = max(int(src.max()), int(dst.max()))
            if hi >= num_vertices:
                raise ValueError(
                    f"edge endpoint {hi} out of range for {num_vertices} vertices"
                )
        if src.size and num_vertices <= 0:
            raise ValueError("graph with edges must have vertices")
        if weight is None:
            weight = np.ones(src.size, dtype=np.float64)
        else:
            weight = np.asarray(weight, dtype=np.float64)
            if weight.shape != src.shape:
                raise ValueError("weight must match edge arrays")
            if weight.size and not np.isfinite(weight).all():
                raise ValueError("edge weights must be finite")

        self._num_vertices = int(num_vertices)
        #: Owning :class:`~repro.graph.storage.SnapshotStore` (None for
        #: plain heap graphs) and the store's id for this snapshot.
        self.store = None
        self.snapshot_id = None

        if presorted:
            stride = np.int64(max(self._num_vertices, 1))
            keys = src * stride + dst
            if keys.size > 1 and np.any(np.diff(keys) < 0):
                raise ValueError(
                    "presorted=True but edges are not in (src, dst) order"
                )
            # CSR side is the input verbatim; CSC needs only a
            # single-key stable argsort (src order breaks dst ties).
            self._out_targets = dst.copy()
            self._out_weights = weight.copy()
            self._out_offsets = self._build_offsets(src)
            order_in = np.argsort(dst, kind="stable")
        else:
            # CSR (out-edges), rows sorted by (src, dst).
            order = np.lexsort((dst, src))
            self._out_targets = dst[order].copy()
            self._out_weights = weight[order].copy()
            self._out_offsets = self._build_offsets(src[order])

            # CSC (in-edges), columns sorted by (dst, src).
            order_in = np.lexsort((src, dst))
        self._in_sources = src[order_in].copy()
        self._in_weights = weight[order_in].copy()
        self._in_offsets = self._build_offsets(dst[order_in])

    def _build_offsets(self, sorted_keys: np.ndarray) -> np.ndarray:
        counts = np.bincount(sorted_keys, minlength=self._num_vertices)
        offsets = np.zeros(self._num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return offsets

    # ------------------------------------------------------------------
    # Basic shape
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        return int(self._out_targets.size)

    @property
    def nbytes(self) -> int:
        """Bytes of the CSR + CSC structure (memory accounting)."""
        return int(
            self._out_offsets.nbytes + self._out_targets.nbytes
            + self._out_weights.nbytes + self._in_offsets.nbytes
            + self._in_sources.nbytes + self._in_weights.nbytes
        )

    @property
    def out_offsets(self) -> np.ndarray:
        return self._out_offsets

    @property
    def out_targets(self) -> np.ndarray:
        return self._out_targets

    @property
    def out_weights(self) -> np.ndarray:
        return self._out_weights

    @property
    def in_offsets(self) -> np.ndarray:
        return self._in_offsets

    @property
    def in_sources(self) -> np.ndarray:
        return self._in_sources

    @property
    def in_weights(self) -> np.ndarray:
        return self._in_weights

    # ------------------------------------------------------------------
    # Degrees
    # ------------------------------------------------------------------
    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex, shape ``(V,)`` (cached)."""
        if not hasattr(self, "_out_degrees"):
            self._out_degrees = np.diff(self._out_offsets)
        return self._out_degrees

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex, shape ``(V,)`` (cached)."""
        if not hasattr(self, "_in_degrees"):
            self._in_degrees = np.diff(self._in_offsets)
        return self._in_degrees

    def out_degree(self, v: int) -> int:
        return int(self._out_offsets[v + 1] - self._out_offsets[v])

    def in_degree(self, v: int) -> int:
        return int(self._in_offsets[v + 1] - self._in_offsets[v])

    def in_weight_sums(self) -> np.ndarray:
        """Sum of incoming edge weights per vertex (CoEM's normaliser,
        cached)."""
        if not hasattr(self, "_in_weight_sums"):
            sums = np.zeros(self._num_vertices, dtype=np.float64)
            dst = self._edge_dst_from_in()
            np.add.at(sums, dst, self._in_weights)
            self._in_weight_sums = sums
        return self._in_weight_sums

    def out_weight_sums(self) -> np.ndarray:
        """Sum of outgoing edge weights per vertex (weighted PageRank's
        normaliser, cached)."""
        if not hasattr(self, "_out_weight_sums"):
            sums = np.zeros(self._num_vertices, dtype=np.float64)
            src = np.repeat(
                np.arange(self._num_vertices, dtype=np.int64),
                self.out_degrees(),
            )
            np.add.at(sums, src, self._out_weights)
            self._out_weight_sums = sums
        return self._out_weight_sums

    def _edge_dst_from_in(self) -> np.ndarray:
        return np.repeat(
            np.arange(self._num_vertices, dtype=np.int64), self.in_degrees()
        )

    def edge_keys(self) -> np.ndarray:
        """Scalar key ``src * V + dst`` per edge in CSR order (cached).

        The CSR lexsort by ``(src, dst)`` makes this array globally
        sorted, so edge membership/position queries are a single
        ``searchsorted`` over it (see
        :meth:`repro.graph.mutable.StreamingGraph._edge_positions`).
        """
        if not hasattr(self, "_edge_keys"):
            src, dst, _ = self.all_edges()
            stride = np.int64(max(self._num_vertices, 1))
            self._edge_keys = src * stride + dst
        return self._edge_keys

    # ------------------------------------------------------------------
    # Neighbourhood access
    # ------------------------------------------------------------------
    def out_neighbors(self, v: int) -> np.ndarray:
        """Targets of ``v``'s out-edges, sorted ascending."""
        return self._out_targets[self._out_offsets[v] : self._out_offsets[v + 1]]

    def out_neighbor_weights(self, v: int) -> np.ndarray:
        return self._out_weights[self._out_offsets[v] : self._out_offsets[v + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """Sources of ``v``'s in-edges, sorted ascending."""
        return self._in_sources[self._in_offsets[v] : self._in_offsets[v + 1]]

    def in_neighbor_weights(self, v: int) -> np.ndarray:
        return self._in_weights[self._in_offsets[v] : self._in_offsets[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        row = self.out_neighbors(u)
        idx = np.searchsorted(row, v)
        return bool(idx < row.size and row[idx] == v)

    def edge_weight(self, u: int, v: int) -> float:
        row = self.out_neighbors(u)
        idx = np.searchsorted(row, v)
        if idx >= row.size or row[idx] != v:
            raise KeyError(f"edge ({u}, {v}) not in graph")
        return float(self.out_neighbor_weights(u)[idx])

    # ------------------------------------------------------------------
    # Vectorised gathers (used by the engines' edge_map kernels)
    # ------------------------------------------------------------------
    def all_edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(src, dst, weight)`` arrays for every edge (CSR order)."""
        src = np.repeat(
            np.arange(self._num_vertices, dtype=np.int64), self.out_degrees()
        )
        return src, self._out_targets, self._out_weights

    def out_edges_of(
        self, vertices: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Gather out-edges of ``vertices`` as ``(src, dst, weight)``.

        ``vertices`` must be an integer array; sources are repeated per
        out-edge so the three result arrays are parallel.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        starts = self._out_offsets[vertices]
        stops = self._out_offsets[vertices + 1]
        idx = _ranges(starts, stops)
        src = np.repeat(vertices, stops - starts)
        return src, self._out_targets[idx], self._out_weights[idx]

    def out_edge_slots(
        self, vertices: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Gather out-edges of ``vertices`` as ``(src, slot)`` pairs.

        ``slot`` indexes the global CSR edge arrays, so callers can both
        read ``out_targets[slot]`` / ``out_weights[slot]`` and correlate
        edges with per-slot side arrays (e.g. the refinement's
        newly-added-edge mask).
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        starts = self._out_offsets[vertices]
        stops = self._out_offsets[vertices + 1]
        slots = _ranges(starts, stops)
        src = np.repeat(vertices, stops - starts)
        return src, slots

    def in_edges_of(
        self, vertices: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Gather in-edges of ``vertices`` as ``(src, dst, weight)``."""
        vertices = np.asarray(vertices, dtype=np.int64)
        starts = self._in_offsets[vertices]
        stops = self._in_offsets[vertices + 1]
        idx = _ranges(starts, stops)
        dst = np.repeat(vertices, stops - starts)
        return self._in_sources[idx], dst, self._in_weights[idx]

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def edge_set(self) -> set:
        """Edges as a Python set of ``(src, dst)`` pairs (testing helper)."""
        src, dst, _ = self.all_edges()
        return set(zip(src.tolist(), dst.tolist()))

    def with_num_vertices(self, num_vertices: int) -> "CSRGraph":
        """Return a copy grown (never shrunk) to ``num_vertices`` vertices."""
        if num_vertices < self._num_vertices:
            raise ValueError("cannot shrink a graph")
        if num_vertices == self._num_vertices:
            return self
        if self.store is not None and self.store.kind == "mmap":
            empty = np.empty(0, dtype=np.int64)
            return self.store.adjust(
                self, num_vertices, empty, empty,
                np.empty(0, dtype=np.float64), empty, empty,
            )
        src, dst, weight = self.all_edges()
        grown = CSRGraph(num_vertices, src, dst, weight)
        cache = getattr(self, "_shard_cache", None)
        if cache:
            # Growth extends the last shard of every cached partition
            # (deterministic ownership; see PartitionedCSR.extended_to).
            grown._shard_cache = {
                shards: partition.extended_to(num_vertices)
                for shards, partition in cache.items()
            }
        return grown

    @classmethod
    def from_canonical(
        cls,
        num_vertices: int,
        out_offsets: np.ndarray,
        out_targets: np.ndarray,
        out_weights: np.ndarray,
        in_offsets: np.ndarray,
        in_sources: np.ndarray,
        in_weights: np.ndarray,
        store=None,
        snapshot_id: Optional[str] = None,
    ) -> "CSRGraph":
        """Adopt already-canonical CSR+CSC arrays with zero sorts/copies.

        The construct-from-store path: snapshot loads and checkpoint
        restores hand over the six arrays exactly as a constructor run
        would have produced them (``np.memmap`` views work unchanged),
        so only O(V) structural checks run here -- no O(E log E)
        re-sort, no per-array copy.
        """
        num_vertices = int(num_vertices)
        num_edges = int(out_targets.size)
        for name, offsets in (("out_offsets", out_offsets),
                              ("in_offsets", in_offsets)):
            if offsets.size != num_vertices + 1:
                raise ValueError(
                    f"{name} has {offsets.size} entries, expected "
                    f"{num_vertices + 1}"
                )
            if offsets.size and (int(offsets[0]) != 0
                                 or int(offsets[-1]) != num_edges):
                raise ValueError(f"{name} endpoints disagree with edges")
            if np.any(np.diff(offsets) < 0):
                raise ValueError(f"{name} is not monotone")
        if (out_weights.size != num_edges or in_sources.size != num_edges
                or in_weights.size != num_edges):
            raise ValueError("canonical edge arrays disagree in length")
        graph = cls.__new__(cls)
        graph._num_vertices = num_vertices
        graph.store = store
        graph.snapshot_id = snapshot_id
        graph._out_offsets = out_offsets
        graph._out_targets = out_targets
        graph._out_weights = out_weights
        graph._in_offsets = in_offsets
        graph._in_sources = in_sources
        graph._in_weights = in_weights
        return graph

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]],
        num_vertices: Optional[int] = None,
        weights: Optional[Iterable[float]] = None,
    ) -> "CSRGraph":
        """Build a graph from an iterable of ``(src, dst)`` pairs."""
        edge_list = list(edges)
        if edge_list:
            src = np.array([e[0] for e in edge_list], dtype=np.int64)
            dst = np.array([e[1] for e in edge_list], dtype=np.int64)
        else:
            src = np.empty(0, dtype=np.int64)
            dst = np.empty(0, dtype=np.int64)
        if num_vertices is None:
            num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1))) + 1
        weight = None
        if weights is not None:
            weight = np.asarray(list(weights), dtype=np.float64)
        return cls(num_vertices, src, dst, weight)

    def __repr__(self) -> str:
        return f"CSRGraph(V={self.num_vertices}, E={self.num_edges})"


def _ranges(starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[i], stops[i])`` for all i, vectorised."""
    lengths = stops - starts
    nonzero = lengths > 0
    starts = starts[nonzero]
    lengths = lengths[nonzero]
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Classic cumsum trick: an array of +1 increments whose value at each
    # segment head is adjusted so the running sum restarts at that segment's
    # start index.
    increments = np.ones(total, dtype=np.int64)
    heads = np.zeros(len(starts), dtype=np.int64)
    np.cumsum(lengths[:-1], out=heads[1:])
    increments[heads] = starts
    increments[heads[1:]] -= starts[:-1] + lengths[:-1] - 1
    return np.cumsum(increments)
