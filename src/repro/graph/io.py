"""Graph and mutation-stream serialisation.

Two formats:

- plain edge-list text (``src dst [weight]`` per line, ``#`` comments),
  interoperable with SNAP/KONECT-style dumps the paper's datasets ship in;
- NumPy ``.npz`` binary, the fast path for benchmark fixtures.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.mutation import MutationBatch

__all__ = [
    "load_edge_list",
    "save_edge_list",
    "load_npz",
    "save_npz",
    "save_mutation_stream",
    "load_mutation_stream",
]


def load_edge_list(path: str, num_vertices: Optional[int] = None) -> CSRGraph:
    """Parse a whitespace-separated edge list file into a graph."""
    src: List[int] = []
    dst: List[int] = []
    weight: List[float] = []
    any_weights = False
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line: {line!r}")
            src.append(int(parts[0]))
            dst.append(int(parts[1]))
            if len(parts) >= 3:
                weight.append(float(parts[2]))
                any_weights = True
            else:
                weight.append(1.0)
    src_arr = np.array(src, dtype=np.int64)
    dst_arr = np.array(dst, dtype=np.int64)
    weight_arr = np.array(weight, dtype=np.float64) if any_weights else None
    if num_vertices is None:
        num_vertices = (
            int(max(src_arr.max(initial=-1), dst_arr.max(initial=-1))) + 1
        )
    return CSRGraph(num_vertices, src_arr, dst_arr, weight_arr)


def save_edge_list(graph: CSRGraph, path: str,
                   write_weights: bool = True) -> None:
    src, dst, weight = graph.all_edges()
    with open(path, "w") as handle:
        handle.write(f"# vertices: {graph.num_vertices}\n")
        handle.write(f"# edges: {graph.num_edges}\n")
        if write_weights:
            for s, d, w in zip(src.tolist(), dst.tolist(), weight.tolist()):
                handle.write(f"{s} {d} {w}\n")
        else:
            for s, d in zip(src.tolist(), dst.tolist()):
                handle.write(f"{s} {d}\n")


def save_npz(graph: CSRGraph, path: str) -> None:
    src, dst, weight = graph.all_edges()
    np.savez_compressed(
        path,
        num_vertices=np.int64(graph.num_vertices),
        src=src,
        dst=dst,
        weight=weight,
    )


def load_npz(path: str) -> CSRGraph:
    with np.load(path) as data:
        return CSRGraph(
            int(data["num_vertices"]), data["src"], data["dst"], data["weight"]
        )


def save_mutation_stream(batches: Sequence[MutationBatch], path: str) -> None:
    """Persist a sequence of mutation batches to one ``.npz`` file."""
    payload = {"num_batches": np.int64(len(batches))}
    for i, batch in enumerate(batches):
        payload[f"add_src_{i}"] = batch.add_src
        payload[f"add_dst_{i}"] = batch.add_dst
        payload[f"add_weight_{i}"] = batch.add_weight
        payload[f"del_src_{i}"] = batch.del_src
        payload[f"del_dst_{i}"] = batch.del_dst
    np.savez_compressed(path, **payload)


def load_mutation_stream(path: str) -> List[MutationBatch]:
    with np.load(path) as data:
        count = int(data["num_batches"])
        batches = []
        for i in range(count):
            batches.append(
                MutationBatch(
                    add_src=data[f"add_src_{i}"],
                    add_dst=data[f"add_dst_{i}"],
                    add_weight=data[f"add_weight_{i}"],
                    del_src=data[f"del_src_{i}"],
                    del_dst=data[f"del_dst_{i}"],
                )
            )
        return batches


def ensure_dir(path: str) -> str:
    """Create ``path`` (and parents) if missing; return it."""
    os.makedirs(path, exist_ok=True)
    return path
