"""Buffered mutation streams.

The paper (section 4.1) specifies that mutations arriving while a
refinement step is in flight are buffered to protect the latency of the
ongoing step, and applied immediately after it finishes.
:class:`MutationStream` models exactly that protocol: producers ``push``
batches at any time; the consumer ``take`` s either one batch or, when it
has fallen behind, all buffered batches coalesced into one.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Iterator, List, Optional

import numpy as np

from repro.graph.mutation import MutationBatch

__all__ = ["MutationStream", "coalesce_batches"]


def coalesce_batches(batches: Iterable[MutationBatch]) -> MutationBatch:
    """Merge consecutive batches into a single equivalent batch.

    The n-ary fold of :meth:`~repro.graph.mutation.MutationBatch.merge`
    (which holds the edge-level state machine and its semantics): the
    result applies to *any* base graph exactly as the sequence would,
    accounting for the stream semantics that a re-addition of a present
    edge is skipped and a deletion of an absent edge is skipped.
    """
    merged: Optional[MutationBatch] = None
    for batch in batches:
        merged = batch if merged is None else merged.merge(batch)
    return merged if merged is not None else MutationBatch.empty()


class MutationStream:
    """A FIFO of mutation batches with refinement-aware buffering."""

    def __init__(self, batches: Iterable[MutationBatch] = ()) -> None:
        self._queue: Deque[MutationBatch] = deque(batches)
        self._refining = False
        self.pushed = len(self._queue)
        self.taken = 0

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def push(self, batch: MutationBatch) -> None:
        """Enqueue a batch; always legal, even mid-refinement."""
        self._queue.append(batch)
        self.pushed += 1

    def push_edges(self, additions=(), deletions=()) -> None:
        self.push(MutationBatch.from_edges(additions, deletions))

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def begin_refinement(self) -> None:
        """Mark the start of a refinement step (buffer-only mode)."""
        self._refining = True

    def end_refinement(self) -> None:
        self._refining = False

    @property
    def refining(self) -> bool:
        return self._refining

    def take(self) -> Optional[MutationBatch]:
        """Dequeue the next batch, or None when empty or mid-refinement."""
        if self._refining or not self._queue:
            return None
        self.taken += 1
        return self._queue.popleft()

    def take_all(self) -> Optional[MutationBatch]:
        """Dequeue *all* buffered batches coalesced into one."""
        if self._refining or not self._queue:
            return None
        batches: List[MutationBatch] = list(self._queue)
        self._queue.clear()
        self.taken += len(batches)
        if len(batches) == 1:
            return batches[0]
        return coalesce_batches(batches)

    def __iter__(self) -> Iterator[MutationBatch]:
        while True:
            batch = self.take()
            if batch is None:
                return
            yield batch


def random_stream(
    graph_edges: np.ndarray,
    num_batches: int,
    batch_size: int,
    seed: int = 0,
) -> MutationStream:
    """Convenience: a stream of random deletion-free batches (testing)."""
    rng = np.random.default_rng(seed)
    stream = MutationStream()
    num_vertices = int(graph_edges.max()) + 1 if graph_edges.size else 1
    for _ in range(num_batches):
        src = rng.integers(0, num_vertices, size=batch_size)
        dst = rng.integers(0, num_vertices, size=batch_size)
        stream.push(MutationBatch(add_src=src, add_dst=dst))
    return stream
