"""Buffered mutation streams.

The paper (section 4.1) specifies that mutations arriving while a
refinement step is in flight are buffered to protect the latency of the
ongoing step, and applied immediately after it finishes.
:class:`MutationStream` models exactly that protocol: producers ``push``
batches at any time; the consumer ``take`` s either one batch or, when it
has fallen behind, all buffered batches coalesced into one.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.graph.mutation import MutationBatch

__all__ = [
    "MutationStream",
    "coalesce_batches",
    "hotspot_community",
    "hotspot_storm",
    "hotspot_storm_stream",
]


def coalesce_batches(batches: Iterable[MutationBatch]) -> MutationBatch:
    """Merge consecutive batches into a single equivalent batch.

    The n-ary fold of :meth:`~repro.graph.mutation.MutationBatch.merge`
    (which holds the edge-level state machine and its semantics): the
    result applies to *any* base graph exactly as the sequence would,
    accounting for the stream semantics that a re-addition of a present
    edge is skipped and a deletion of an absent edge is skipped.
    """
    merged: Optional[MutationBatch] = None
    for batch in batches:
        merged = batch if merged is None else merged.merge(batch)
    return merged if merged is not None else MutationBatch.empty()


class MutationStream:
    """A FIFO of mutation batches with refinement-aware buffering."""

    def __init__(self, batches: Iterable[MutationBatch] = ()) -> None:
        self._queue: Deque[MutationBatch] = deque(batches)
        self._refining = False
        self.pushed = len(self._queue)
        self.taken = 0

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def push(self, batch: MutationBatch) -> None:
        """Enqueue a batch; always legal, even mid-refinement."""
        self._queue.append(batch)
        self.pushed += 1

    def push_edges(self, additions=(), deletions=()) -> None:
        self.push(MutationBatch.from_edges(additions, deletions))

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def begin_refinement(self) -> None:
        """Mark the start of a refinement step (buffer-only mode)."""
        self._refining = True

    def end_refinement(self) -> None:
        self._refining = False

    @property
    def refining(self) -> bool:
        return self._refining

    def take(self) -> Optional[MutationBatch]:
        """Dequeue the next batch, or None when empty or mid-refinement."""
        if self._refining or not self._queue:
            return None
        self.taken += 1
        return self._queue.popleft()

    def take_all(self) -> Optional[MutationBatch]:
        """Dequeue *all* buffered batches coalesced into one."""
        if self._refining or not self._queue:
            return None
        batches: List[MutationBatch] = list(self._queue)
        self._queue.clear()
        self.taken += len(batches)
        if len(batches) == 1:
            return batches[0]
        return coalesce_batches(batches)

    def __iter__(self) -> Iterator[MutationBatch]:
        while True:
            batch = self.take()
            if batch is None:
                return
            yield batch


def hotspot_community(num_vertices: int, fraction: float = 0.0625,
                      seed: int = 0) -> Tuple[int, int]:
    """Pick one RMAT community as a half-open vertex-id range.

    RMAT's recursive quadrant construction makes communities contiguous
    id blocks whose boundaries are power-of-two prefixes, so a community
    of relative size ``fraction`` is an aligned block of
    ``~fraction * num_vertices`` ids.  Returns ``(lo, hi)``.
    """
    if num_vertices < 1:
        raise ValueError("num_vertices must be >= 1")
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    block = max(1, int(num_vertices * fraction))
    num_blocks = max(1, num_vertices // block)
    rng = np.random.default_rng(seed)
    index = int(rng.integers(0, num_blocks))
    lo = index * block
    return lo, min(lo + block, num_vertices)


def hotspot_storm(
    graph,
    num_batches: int,
    batch_size: int,
    fraction: float = 0.0625,
    delete_fraction: float = 0.3,
    seed: int = 0,
) -> List[MutationBatch]:
    """A hot-spot storm: every mutation lands in one RMAT community.

    The adversarial regime for dependency-driven refinement (ROADMAP
    item 5): instead of spreading mutations uniformly, all additions
    connect vertices *within* a single community block and all deletions
    remove live edges whose endpoints both lie inside it, so the blast
    radius of consecutive batches overlaps maximally.  Deletions are
    sampled from the evolving edge set (an edge added by an earlier
    batch can be deleted by a later one).  Deterministic given ``seed``.
    """
    lo, hi = hotspot_community(graph.num_vertices, fraction, seed)
    rng = np.random.default_rng(seed + 1)
    src, dst, _ = graph.all_edges()
    inside = (src >= lo) & (src < hi) & (dst >= lo) & (dst < hi)
    live = {
        (int(u), int(v))
        for u, v in zip(src[inside].tolist(), dst[inside].tolist())
    }
    batches: List[MutationBatch] = []
    for _ in range(num_batches):
        num_deletes = int(batch_size * delete_fraction)
        num_adds = batch_size - num_deletes
        adds = list(
            zip(
                rng.integers(lo, hi, size=num_adds).tolist(),
                rng.integers(lo, hi, size=num_adds).tolist(),
            )
        )
        candidates = sorted(live)
        num_deletes = min(num_deletes, len(candidates))
        deletes = [
            candidates[i]
            for i in rng.choice(len(candidates), size=num_deletes,
                                replace=False)
        ] if num_deletes else []
        weights = (rng.random(len(adds)) + 0.5).tolist()
        for edge in adds:
            if edge[0] != edge[1]:
                live.add(edge)
        for edge in deletes:
            live.discard(edge)
        batches.append(
            MutationBatch.from_edges(additions=adds, deletions=deletes,
                                     add_weights=weights)
        )
    return batches


def hotspot_storm_stream(graph, num_batches: int, batch_size: int,
                         **kwargs) -> MutationStream:
    """:func:`hotspot_storm` wrapped as a :class:`MutationStream`."""
    return MutationStream(
        hotspot_storm(graph, num_batches, batch_size, **kwargs)
    )


def random_stream(
    graph_edges: np.ndarray,
    num_batches: int,
    batch_size: int,
    seed: int = 0,
) -> MutationStream:
    """Convenience: a stream of random deletion-free batches (testing)."""
    rng = np.random.default_rng(seed)
    stream = MutationStream()
    num_vertices = int(graph_edges.max()) + 1 if graph_edges.size else 1
    for _ in range(num_batches):
        src = rng.integers(0, num_vertices, size=batch_size)
        dst = rng.integers(0, num_vertices, size=batch_size)
        stream.push(MutationBatch(add_src=src, add_dst=dst))
    return stream
