"""The dynamic streaming graph.

:class:`StreamingGraph` owns the current :class:`~repro.graph.csr.CSRGraph`
snapshot and applies :class:`~repro.graph.mutation.MutationBatch` objects,
mirroring the paper's structure-adjustment scheme (section 4.1): one pass
over vertices computing offset adjustments, one pass over edges shifting
and inserting/deleting them.  After each batch both the previous and the
new snapshot are available, because dependency-driven refinement must
evaluate *old* contribution functions (old values, old degrees) against
the old structure and new contributions against the new one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.mutation import MutationBatch

__all__ = ["MutationResult", "StreamingGraph"]


@dataclass
class MutationResult:
    """Everything an incremental engine needs to know about one batch.

    The ``add_*``/``del_*`` arrays contain only mutations that actually
    changed the structure: additions of already-present edges and deletions
    of absent edges are dropped (and reported via ``skipped_additions`` /
    ``skipped_deletions``).
    """

    old_graph: CSRGraph
    new_graph: CSRGraph
    add_src: np.ndarray
    add_dst: np.ndarray
    add_weight: np.ndarray
    del_src: np.ndarray
    del_dst: np.ndarray
    del_weight: np.ndarray
    skipped_additions: int = 0
    skipped_deletions: int = 0
    _out_changed: Optional[np.ndarray] = field(default=None, repr=False)
    _in_changed: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def num_applied(self) -> int:
        return int(self.add_src.size + self.del_src.size)

    def out_changed_vertices(self) -> np.ndarray:
        """Vertices whose out-edge set changed (sorted, unique).

        These are exactly the vertices whose contribution *parameters*
        (e.g. out-degree in PageRank) may have changed, plus any brand-new
        vertices in the grown id range.
        """
        if self._out_changed is None:
            old_v = self.old_graph.num_vertices
            new_ids = np.arange(old_v, self.new_graph.num_vertices, dtype=np.int64)
            self._out_changed = np.unique(
                np.concatenate([self.add_src, self.del_src, new_ids])
            )
        return self._out_changed

    def in_changed_vertices(self) -> np.ndarray:
        """Vertices whose in-edge set changed (sorted, unique)."""
        if self._in_changed is None:
            old_v = self.old_graph.num_vertices
            new_ids = np.arange(old_v, self.new_graph.num_vertices, dtype=np.int64)
            self._in_changed = np.unique(
                np.concatenate([self.add_dst, self.del_dst, new_ids])
            )
        return self._in_changed

    def grew(self) -> bool:
        return self.new_graph.num_vertices > self.old_graph.num_vertices

    def added_edge_mask(self) -> np.ndarray:
        """Boolean mask over the *new* graph's CSR edge slots marking the
        edges this batch added.

        Dependency-driven refinement uses this to exclude newly-added
        edges from the transitive ⋃△ pass (they have no old contribution
        to retract; their whole contribution was already added by the
        direct-impact ⊎ pass).
        """
        if not hasattr(self, "_added_mask"):
            mask = np.zeros(self.new_graph.num_edges, dtype=bool)
            if self.add_src.size:
                positions = StreamingGraph._edge_positions(
                    self.new_graph, self.add_src, self.add_dst
                )
                mask[positions] = True
            self._added_mask = mask
        return self._added_mask


class StreamingGraph:
    """A dynamic graph mutated by a stream of mutation batches."""

    def __init__(self, initial: CSRGraph) -> None:
        self._graph = initial
        self._previous: Optional[CSRGraph] = None
        self.batches_applied = 0

    @property
    def graph(self) -> CSRGraph:
        """The latest snapshot."""
        return self._graph

    @property
    def previous(self) -> Optional[CSRGraph]:
        """The snapshot before the most recent batch (None initially)."""
        return self._previous

    @property
    def num_vertices(self) -> int:
        return self._graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self._graph.num_edges

    # ------------------------------------------------------------------
    def apply_batch(self, batch: MutationBatch) -> MutationResult:
        """Apply one mutation batch and return the applied delta.

        Follows the paper's two-pass adjustment: the first pass computes
        per-vertex edge-count adjustments (offsets), the second shifts the
        edge array and splices additions in.  Deletion of an absent edge or
        re-addition of a present edge is skipped, not an error, matching
        the stream semantics of real systems where update feeds can carry
        stale operations.
        """
        old = self._graph
        num_vertices = max(old.num_vertices, batch.max_vertex() + 1)

        del_src, del_dst, del_weight, skipped_del = self._resolve_deletions(
            old, batch.del_src, batch.del_dst
        )
        add_src, add_dst, add_weight, skipped_add = self._resolve_additions(
            old, batch.add_src, batch.add_dst, batch.add_weight,
            del_src, del_dst,
        )

        new_graph = self._rebuild(
            old, num_vertices, add_src, add_dst, add_weight, del_src, del_dst
        )

        retired = self._previous
        self._previous = old
        self._graph = new_graph
        self.batches_applied += 1
        if retired is not None and getattr(retired, "store", None) is not None:
            # The snapshot two batches back has no consumer left;
            # dropping its live reference lets the store tombstone and
            # compact its generation (open memmap views stay valid).
            retired.store.release(retired)
        return MutationResult(
            old_graph=old,
            new_graph=new_graph,
            add_src=add_src,
            add_dst=add_dst,
            add_weight=add_weight,
            del_src=del_src,
            del_dst=del_dst,
            del_weight=del_weight,
            skipped_additions=skipped_add,
            skipped_deletions=skipped_del,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _edge_positions(
        graph: CSRGraph, src: np.ndarray, dst: np.ndarray
    ) -> np.ndarray:
        """CSR slot of each (src, dst) pair, or -1 where the edge is absent.

        One batched ``searchsorted`` over the graph's sorted scalar edge
        keys (``src * V + dst``) replaces the per-edge binary-search
        loop.  Pairs with either endpoint outside the vertex range are
        reported absent up front -- an out-of-range ``dst`` would
        otherwise collide with the key of a different in-range pair.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        positions = np.full(src.size, -1, dtype=np.int64)
        if src.size == 0 or graph.num_edges == 0:
            return positions
        num_vertices = graph.num_vertices
        valid = (
            (src >= 0) & (src < num_vertices)
            & (dst >= 0) & (dst < num_vertices)
        )
        if not valid.any():
            return positions
        store = getattr(graph, "store", None)
        if store is not None and store.kind == "mmap":
            # Out-of-core snapshot: ``edge_keys`` would materialize
            # two O(E) heap arrays; per-row binary search over the
            # memmapped CSR rows touches only the queried rows.
            offsets = graph.out_offsets
            targets = graph.out_targets
            for index in np.flatnonzero(valid):
                lo = int(offsets[src[index]])
                hi = int(offsets[src[index] + 1])
                row = targets[lo:hi]
                slot = int(np.searchsorted(row, dst[index]))
                if slot < row.size and row[slot] == dst[index]:
                    positions[index] = lo + slot
            return positions
        keys = graph.edge_keys()
        stride = np.int64(max(num_vertices, 1))
        probe = src[valid] * stride + dst[valid]
        slots = np.searchsorted(keys, probe)
        # A probe beyond every key clips to the last slot, which then
        # fails the equality check (probe > keys[-1] by construction).
        found = keys[np.minimum(slots, keys.size - 1)] == probe
        positions[valid] = np.where(found, slots, -1)
        return positions

    def _resolve_deletions(self, old, del_src, del_dst):
        positions = self._edge_positions(old, del_src, del_dst)
        present = positions >= 0
        skipped = int((~present).sum())
        del_weight = old.out_weights[positions[present]]
        return del_src[present], del_dst[present], del_weight, skipped

    def _resolve_additions(self, old, add_src, add_dst, add_weight,
                           del_src, del_dst):
        positions = self._edge_positions(old, add_src, add_dst)
        absent = positions < 0
        # An edge being deleted in the same batch may be re-added with a new
        # weight; MutationBatch already cancelled exact add/delete pairs, so
        # here "present and also deleted" means replace (delete then add).
        if del_src.size:
            deleted = set(zip(del_src.tolist(), del_dst.tolist()))
            replaced = np.array(
                [
                    (s, d) in deleted
                    for s, d in zip(add_src.tolist(), add_dst.tolist())
                ],
                dtype=bool,
            )
            absent = absent | replaced
        skipped = int((~absent).sum())
        return add_src[absent], add_dst[absent], add_weight[absent], skipped

    @staticmethod
    def _rebuild(old, num_vertices, add_src, add_dst, add_weight,
                 del_src, del_dst):
        store = getattr(old, "store", None)
        if store is not None and store.kind == "mmap":
            # Segment-wise out-of-core adjustment: only dirty vertex
            # ranges are rebuilt in heap, clean ranges are block
            # copied file-to-file (see MmapStore.adjust).
            return store.adjust(
                old, num_vertices, add_src, add_dst, add_weight,
                del_src, del_dst,
            )
        src, dst, weight = old.all_edges()
        if del_src.size:
            positions = StreamingGraph._edge_positions(old, del_src, del_dst)
            keep = np.ones(src.size, dtype=bool)
            keep[positions] = False
            src, dst, weight = src[keep], dst[keep], weight[keep]
        if add_src.size:
            src = np.concatenate([src, add_src])
            dst = np.concatenate([dst, add_dst])
            weight = np.concatenate([weight, add_weight])
        return CSRGraph(num_vertices, src, dst, weight)

    def __repr__(self) -> str:
        return (
            f"StreamingGraph(V={self.num_vertices}, E={self.num_edges}, "
            f"batches={self.batches_applied})"
        )
